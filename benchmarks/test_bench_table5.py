"""Table 5: examples of configuration files modified by Mulini (III.C).

Paper line counts: workers2.properties 22, C-JDBC RAIDb-1 XML 16,
monitor properties 6 — the regenerated counterparts land in the same
ranges.
"""

from repro.experiments.figures import table5


def test_bench_table5(once, emit):
    fig = once(table5)
    emit(fig)
    entries = dict((name, lines) for name, lines, _c in
                   fig.data["entries"])
    assert 10 <= entries["config/APACHE1_workers2.properties"] <= 35
    assert 10 <= entries["config/CJDBC1_mysqldb-raidb1-elba.xml"] <= 25
    assert entries["config/JONAS1_monitor-local.properties"] <= 8
