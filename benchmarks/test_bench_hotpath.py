"""Hot-path caching benchmark: trials/sec with caches off vs on.

Runs the same overhead-dominated smoke campaign twice — once under
``hotpath.caches_disabled()`` and once with the caches warm-started
cold — and records both rates to ``benchmarks/output/BENCH_hotpath.json``.
The campaign is deliberately dominated by apparatus cost (generation,
parsing, archive rendering) rather than simulated trial time, because
that is the cost the caching plane exists to amortize.

Two assertions gate the result:

* **Identity** — every persistent table (trials, host_cpu,
  state_metrics, spans, failures) is byte-identical between the legs.
  A deterministic tracer clock makes the span trees comparable.
* **Speedup** — the cached leg sustains at least twice the trials/sec
  of the cache-free leg.

CI additionally diffs the measured rate against the committed baseline
(``benchmarks/BENCH_hotpath.baseline.json``) and fails on a >20%
regression.
"""

import json
import pathlib
import time

from repro import Tracer, hotpath, run_campaign

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Short phases, low workloads, many points: apparatus-bound on purpose.
SMOKE_TBL = """
benchmark rubis; platform emulab;
experiment "hotpath-smoke" {
    topology 1-1-1, 1-2-1;
    workload 10, 20;
    write_ratio 10%, 20%;
    repetitions 8;
    trial { warmup 1s; run 2s; cooldown 1s; }
}
"""

ALL_TABLES = ("trials", "host_cpu", "state_metrics", "spans", "failures")


def _run_leg():
    # A frozen clock keeps span timings identical across legs; span
    # *structure* must already match, cache hit or miss.
    report = run_campaign(SMOKE_TBL, tracer=Tracer(clock=lambda: 0.0))
    return {table: report.database.dump_rows(table) for table in ALL_TABLES}


def test_bench_hotpath():
    with hotpath.caches_disabled():
        start = time.perf_counter()
        reference = _run_leg()
        off_s = time.perf_counter() - start

    hotpath.clear()                     # cached leg starts cold
    start = time.perf_counter()
    cached = _run_leg()
    on_s = time.perf_counter() - start

    trials = len(reference["trials"])
    byte_identical = cached == reference
    off_rate = trials / off_s
    on_rate = trials / on_s
    speedup = off_rate and on_rate / off_rate

    payload = {
        "campaign": "hotpath-smoke",
        "trials": trials,
        "caches_off": {"wall_s": round(off_s, 3),
                       "trials_per_sec": round(off_rate, 3)},
        "caches_on": {"wall_s": round(on_s, 3),
                      "trials_per_sec": round(on_rate, 3)},
        "speedup": round(speedup, 2),
        "byte_identical": byte_identical,
        "cache_stats": hotpath.stats(),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_hotpath.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    assert byte_identical, "cached campaign diverged from cache-free run"
    assert trials == 64
    assert speedup >= 2.0, (
        f"hot-path caches bought only {speedup:.2f}x "
        f"({off_rate:.2f} -> {on_rate:.2f} trials/sec)"
    )
