"""Table 4: examples of generated scripts for the 1-2-2 bundle (III.C)."""

from repro.experiments.figures import table4


def test_bench_table4(once, emit):
    fig = once(table4)
    emit(fig)
    entries = dict((name, lines) for name, lines, _c in
                   fig.data["entries"])
    # Same family as the paper's Table 4, with install > stop in size.
    assert entries["run.sh"] > 30
    assert entries["scripts/TOMCAT1_install.sh"] > \
        entries["scripts/TOMCAT1_stop.sh"]
    bundle = fig.data["bundle"]
    assert bundle.script_line_total() > 400
