"""Shellvm compiler benchmark: the DES trial's shell hot loop, timed.

Since the hot-path caching plane made parsing effectively free, the
tree-walking shell interpreter is the hot loop of every DES trial —
each trial replays the generated deployment chassis (install,
configure, ignition, stop) command by command.  The compiler
(``repro.shellvm.compiler``) removes that walk: scripts become
partially-evaluated closures specialized on the point-invariant
chassis.  This benchmark measures exactly the cost the compiler
exists to remove, following ``test_bench_hotpath.py``'s precedent of
isolating the subsystem's own plane rather than diluting it with
unrelated apparatus.

Three gates:

* **Identity** — the 64-trial smoke campaign stores byte-identical
  tables (trials, host_cpu, state_metrics, spans, failures) under the
  compiled engine and the ``REPRO_SHELLVM=interp`` oracle.  A frozen
  tracer clock makes the span trees comparable.
* **Speedup** — one *shell cycle* is the smoke bundle's full
  ``run.sh`` + ``teardown.sh`` replay on a live virtual cluster: the
  shell work of one trial, with the DES floor (simulation, collection,
  row insertion) that the compiler does not own factored out.  The
  compiled engine must sustain at least twice the interpreted
  cycles/sec, measured as the median of ABBA-paired rounds so clock
  drift cancels.
* **Context** — full-campaign trials/sec for both engines is recorded
  (not gated at 2x: the campaign wall includes the simulation and
  collection floor, which dilutes the shell speedup to ~1.5x).  CI
  diffs the compiled rates against the committed baseline
  (``benchmarks/BENCH_shellvm.baseline.json``) and fails on a >20%
  regression.
"""

import gc
import json
import os
import pathlib
import statistics
import time

from repro import Tracer, hotpath, run_campaign
from repro.generator.artifacts import HostPlan
from repro.generator.mulini import Mulini
from repro.shellvm.interpreter import ShellInterpreter
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse
from repro.vcluster.cluster import VirtualCluster

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Short phases, a real chassis (8 and 12 app servers), many
#: repetitions: 64 trials whose per-trial shell work is the paper's
#: actual deployment script volume.
SMOKE_TBL = """
benchmark rubis; platform emulab;
experiment "shellvm-smoke" {
    topology 1-8-1, 1-12-1;
    workload 5;
    write_ratio 5%, 10%, 15%, 20%;
    repetitions 8;
    trial { warmup 1s; run 1s; cooldown 1s; }
}
"""

ALL_TABLES = ("trials", "host_cpu", "state_metrics", "spans", "failures")

#: Shell cycles per measured leg; small enough to stay cache-warm,
#: large enough to average out allocator jitter.
CYCLES = 50

#: ABBA-paired measurement rounds; the reported speedup is the median.
ROUNDS = 5


def _engine(name):
    """Set the engine for interpreters constructed from here on."""
    os.environ["REPRO_SHELLVM"] = name


def _campaign_leg(engine):
    """Run the 64-trial smoke under *engine*; tables + wall seconds."""
    _engine(engine)
    start = time.perf_counter()
    # The frozen clock keeps span timings identical across legs; span
    # *structure* must already match, compiled or interpreted.
    report = run_campaign(SMOKE_TBL, tracer=Tracer(clock=lambda: 0.0))
    wall = time.perf_counter() - start
    tables = {table: report.database.dump_rows(table)
              for table in ALL_TABLES}
    return tables, wall


def _smoke_bundle():
    """The generated chassis for the smoke's first experiment point."""
    spec = parse(SMOKE_TBL)
    experiment = spec.experiments[0]
    mulini = Mulini(load_resource_model(
        render_resource_mof(experiment.benchmark, experiment.platform)))
    topology = experiment.topologies[0]
    return mulini.generate(experiment, topology,
                           experiment.workloads[0],
                           experiment.write_ratios[0],
                           host_plan=HostPlan.synthetic(topology))


def _cycle_seconds(bundle, engine, cycles=CYCLES):
    """Mean seconds per run.sh + teardown.sh replay under *engine*.

    A fresh cluster per leg keeps state accumulation (process tables,
    result files) from drifting the measurement across legs.
    """
    _engine(engine)
    cluster = VirtualCluster("emulab", node_count=36)
    control = cluster.host("control")
    run_path = bundle.install_to(control)
    teardown = bundle.path_of("teardown.sh")
    interp = ShellInterpreter(cluster.network)

    def cycle():
        status, _output = interp.run_script_file(control, run_path)
        assert status == 0, f"run.sh exited {status}"
        interp.run_script_file(control, teardown)

    cycle()                             # warm parse/compile caches
    # A collector pause inside a 50-cycle leg is the largest single
    # noise source on a loaded machine; collect up front, then keep
    # the collector out of the timed window.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(cycles):
            cycle()
        return (time.perf_counter() - start) / cycles
    finally:
        gc.enable()


def test_bench_shellvm():
    previous = os.environ.get("REPRO_SHELLVM")
    hotpath.clear()
    try:
        # -- identity: the compiled engine must be unobservable --------
        reference, interp_wall = _campaign_leg("interp")
        compiled, compiled_wall = _campaign_leg("compiled")
        trials = len(reference["trials"])
        byte_identical = compiled == reference

        # -- speedup: the shell hot loop, ABBA-paired ------------------
        bundle = _smoke_bundle()
        ratios = []
        for _ in range(ROUNDS):
            c1 = _cycle_seconds(bundle, "compiled")
            i1 = _cycle_seconds(bundle, "interp")
            i2 = _cycle_seconds(bundle, "interp")
            c2 = _cycle_seconds(bundle, "compiled")
            ratios.append((i1 + i2) / (c1 + c2))
        speedup = statistics.median(ratios)
        interp_cycle = _cycle_seconds(bundle, "interp")
        compiled_cycle = _cycle_seconds(bundle, "compiled")
    finally:
        if previous is None:
            os.environ.pop("REPRO_SHELLVM", None)
        else:
            os.environ["REPRO_SHELLVM"] = previous

    payload = {
        "campaign": "shellvm-smoke",
        "trials": trials,
        "byte_identical": byte_identical,
        "shell_cycle": {
            "interp_ms": round(interp_cycle * 1e3, 3),
            "compiled_ms": round(compiled_cycle * 1e3, 3),
            "cycles_per_sec": round(1.0 / compiled_cycle, 1),
            "speedup": round(speedup, 2),
            "rounds": [round(r, 3) for r in ratios],
        },
        "campaign_wall": {
            "interp": {"wall_s": round(interp_wall, 3),
                       "trials_per_sec": round(trials / interp_wall, 3)},
            "compiled": {"wall_s": round(compiled_wall, 3),
                         "trials_per_sec": round(trials / compiled_wall,
                                                 3)},
            "speedup": round(interp_wall / compiled_wall, 2),
        },
        "cache_stats": hotpath.stats(),
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_shellvm.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    assert byte_identical, \
        "compiled campaign diverged from the interpreter oracle"
    assert trials == 64
    assert speedup >= 2.0, (
        f"compiled shell hot loop bought only {speedup:.2f}x "
        f"(cycle {interp_cycle * 1e3:.2f}ms -> "
        f"{compiled_cycle * 1e3:.2f}ms)"
    )
