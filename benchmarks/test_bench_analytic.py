"""Analytic fast-path benchmark: million-user characterization cost.

Two legs, both recorded to ``benchmarks/output/BENCH_analytic.json``:

* **million-user exploration** — a tiered (``fidelity="auto"``)
  knee exploration of the 4-16-8 topology over a workload ladder
  reaching 1,000,000 users.  The analytic tier does the climbing; DES
  confirms the knee.  The whole characterization must finish in
  seconds — the same grid at DES fidelity would be simulation-hours.
* **analytic grid rate** — a fixed 8-point grid at
  ``fidelity="analytic"``, run at one and at four workers, timed for
  trials/sec and byte-compared across worker counts.

Three assertions gate the result:

* **Wall clock** — the million-user exploration completes in under
  10 seconds.
* **Agreement** — the DES-confirmed knee lands on the ladder rung the
  calibration predicts (u=4000 for 4-16-8 at 15% writes).
* **Identity** — the analytic grid's persistent tables are
  byte-identical between the 1-worker and 4-worker runs.

CI additionally diffs the measured rates against the committed
baseline (``benchmarks/BENCH_analytic.baseline.json``) and fails on a
>20% regression, exactly like the hot-path bench.
"""

import json
import pathlib
import time

from repro.api import run_adaptive, run_campaign
from repro.planner.policy import KNEE

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

MILLION_TBL = """
benchmark rubis; platform emulab;
experiment "analytic-million" {
    topology 4-16-8;
    workload 1000, 2000, 4000, 8000, 16000, 32000, 64000, 125000,
             250000, 500000, 1000000;
    write_ratio 15%;
    trial { warmup 2s; run 10s; cooldown 2s; }
    slo { response_time 1.0s; error_ratio 10%; }
}
"""

GRID_TBL = """
benchmark rubis; platform emulab;
experiment "analytic-grid" {
    topology 1-1-1;
    workload 100, 200, 300, 400, 500, 600, 700, 800;
    write_ratio 15%;
    trial { warmup 2s; run 10s; cooldown 2s; }
}
"""

TABLES = ("trials", "host_cpu", "state_metrics", "planner_decisions")


def _grid_leg(jobs):
    start = time.perf_counter()
    report = run_campaign(GRID_TBL, jobs=jobs,
                          backend="thread" if jobs > 1 else None,
                          fidelity="analytic")
    wall = time.perf_counter() - start
    dump = {table: report.database.dump_rows(table) for table in TABLES}
    return wall, report.trials, dump


def test_bench_analytic():
    start = time.perf_counter()
    explored = run_adaptive(MILLION_TBL, policy="knee", fidelity="auto",
                            node_count=40)
    explore_s = time.perf_counter() - start
    knees = [d for d in explored.outcome.knees if d.action == KNEE]
    knee_workload = knees[0].workload if knees else None
    analytic_trials = len(
        explored.database.query(fidelity="analytic"))
    des_trials = len(explored.database.query(fidelity="des"))

    seq_s, trials, sequential = _grid_leg(jobs=1)
    par_s, _, parallel = _grid_leg(jobs=4)
    byte_identical = sequential == parallel

    payload = {
        "campaign": "analytic-million",
        "explore": {
            "wall_s": round(explore_s, 3),
            "executed": explored.outcome.executed,
            "knee_workload": knee_workload,
            "analytic_trials": analytic_trials,
            "des_trials": des_trials,
        },
        "analytic_grid": {
            "trials": trials,
            "wall_s": round(seq_s, 3),
            "trials_per_sec": round(trials / seq_s, 3),
            "parallel_wall_s": round(par_s, 3),
        },
        "byte_identical": byte_identical,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_analytic.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    assert explore_s < 10.0, (
        f"million-user characterization took {explore_s:.1f}s; "
        f"the analytic tier must keep it under 10s"
    )
    assert knee_workload == 4000, (
        f"DES-confirmed knee at u={knee_workload}, expected the "
        f"calibrated 4-16-8 saturation rung u=4000"
    )
    assert des_trials and des_trials <= 4, (
        f"{des_trials} DES confirmations; the tiered policy should "
        f"need only the knee neighborhood"
    )
    assert byte_identical, (
        "analytic grid diverged between 1-worker and 4-worker runs"
    )
