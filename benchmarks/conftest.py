"""Shared helpers for the figure/table benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench regenerates one of the paper's figures or tables end to end
(generation -> deployment -> simulated trial -> collection -> analysis)
and writes its rendering to ``benchmarks/output/<id>.txt`` so the rows/
series can be compared against the paper (see EXPERIMENTS.md).
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def emit():
    """Persist and echo a FigureResult's rendering."""

    def _emit(figure_result):
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / f"{figure_result.figure_id}.txt"
        path.write_text(figure_result.rendered + "\n")
        print()
        print(figure_result.rendered)
        return path

    return _emit


@pytest.fixture
def once(benchmark):
    """Run a figure reproduction exactly once under pytest-benchmark."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once
