"""Wall-clock benchmark: sequential vs parallel Figure 5 campaign.

Runs the Figure 5 scale-out sweep (2-8 app x 1-3 DB servers) twice —
``jobs=1`` and ``jobs=4`` on the process backend — records both
wall-clocks to ``benchmarks/output/parallel_campaign.txt``, and proves
the parallel run reproduces the sequential observations exactly.

The speedup assertion is gated on the CPUs actually available: the
scheduler's process workers can only beat one worker when the host has
cores to run them on.
"""

import os
import pathlib
import time

from repro.experiments.figures import figure5

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def _fingerprint(results):
    return sorted(
        (r.experiment_name, r.topology_label, r.workload, r.write_ratio,
         r.seed, r.status, r.metrics.completed, r.metrics.mean_response_s,
         r.metrics.throughput)
        for r in results
    )


def _available_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:                      # non-Linux
        return os.cpu_count() or 1


def test_bench_parallel_campaign():
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "4"))

    start = time.perf_counter()
    sequential = figure5()
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = figure5(jobs=jobs)
    parallel_s = time.perf_counter() - start

    speedup = sequential_s / parallel_s if parallel_s else float("inf")
    cpus = _available_cpus()
    trials = len(sequential.results)
    report = (
        f"Parallel campaign benchmark: Figure 5 sweep "
        f"({trials} trials, {cpus} CPU(s) available)\n"
        f"  jobs=1        {sequential_s:8.1f} s wall-clock\n"
        f"  jobs={jobs:<8} {parallel_s:8.1f} s wall-clock\n"
        f"  speedup       {speedup:8.2f} x\n"
    )
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "parallel_campaign.txt").write_text(report)
    print()
    print(report)

    # The determinism guarantee: same sweep, same observations.
    assert _fingerprint(parallel.results) == _fingerprint(sequential.results)
    assert parallel.data == sequential.data

    # Speedup scales with the cores that exist to run the workers.
    if cpus >= 4 and jobs >= 4:
        assert speedup >= 2.0, report
    elif cpus >= 2 and jobs >= 2:
        assert speedup >= 1.2, report
