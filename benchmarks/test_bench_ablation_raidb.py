"""Ablation: RAIDb-1 write replication vs idealized linear DB scaling.

The paper's 1700 -> ~2900 user crossover from one to two databases is
sublinear because RAIDb-1 executes every write on every replica.  This
bench measures actual throughput against both the RAIDb-1 analytical
capacity and the idealized linear capacity.
"""

from repro.experiments.ablations import (
    deployed_rubis_system,
    raidb_scaling,
    render_rows,
)
from repro.experiments.figures import FigureResult


def _factory(dbs, users, write_ratio):
    return deployed_rubis_system(apps=12, dbs=dbs, users=users,
                                 write_ratio=write_ratio)


def run_ablation():
    rows = raidb_scaling(_factory, workload=2600, replica_counts=(1, 2, 3))
    rendered = render_rows(
        "Ablation: RAIDb-1 scaling at 2600 users, wr=15% "
        "(throughput req/s vs capacities)",
        rows,
        ["replicas", "throughput", "raidb_capacity", "linear_capacity",
         "error_ratio"],
    )
    return FigureResult("ablation_raidb", "RAIDb-1 vs linear scaling",
                        rows, rendered)


def test_bench_ablation_raidb(once, emit):
    fig = once(run_ablation)
    emit(fig)
    rows = {row["replicas"]: row for row in fig.data}
    # RAIDb-1 capacity is clearly sublinear at two replicas...
    assert rows[2]["raidb_capacity"] < 0.9 * rows[2]["linear_capacity"]
    # ...and the measured throughput tracks the RAIDb-1 capacity, not
    # the linear one: one DB saturates (~245/s), two carry the load.
    assert rows[1]["throughput"] < 260
    assert rows[2]["throughput"] > 320
