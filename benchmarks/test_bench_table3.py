"""Table 3: scale of experiments run (III.C).

Regenerates every bundle of the four experiment sets and sums the
script/config line counts, machine counts and (estimated) collected
data volume.  Paper shape: generated scripts reach hundreds of
thousands of lines; data collected is on the order of gigabytes per
set; the scale-out sets dwarf the baselines.
"""

from repro.experiments.figures import table3


def test_bench_table3(once, emit):
    fig = once(table3, paper_scale=True)
    emit(fig)
    rows = {row["set"]: row for row in fig.data}
    scaleout = rows["Scale-out RUBiS on JOnAS"]
    baseline = rows["Baseline RUBiS on JOnAS"]
    assert scaleout["script_lines"] > 300_000        # "hundreds of KLOC"
    assert scaleout["machine_count"] > 2000
    assert scaleout["collected_mb"] > 1000           # gigabytes
    assert baseline["script_lines"] < scaleout["script_lines"] / 5
