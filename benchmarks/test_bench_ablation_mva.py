"""Ablation: observation vs the analytical (MVA) baseline.

The paper argues that queueing models struggle with n-tier systems'
saturation behaviour (Sections I/VI).  This bench runs exact MVA with
the same calibrated demands against simulated observations: the two
agree below the knee, then diverge as the real system sheds load via
timeouts — behaviour outside the product-form assumptions.
"""

from repro.experiments.ablations import (
    deployed_rubis_system,
    mva_vs_observation,
    render_rows,
)
from repro.experiments.figures import FigureResult


def _factory(users):
    return deployed_rubis_system(apps=1, dbs=1, users=users)


def run_ablation():
    rows = mva_vs_observation(_factory, [50, 150, 250, 400, 700])
    rendered = render_rows(
        "Ablation: observed (simulated) vs exact MVA, RUBiS 1-1-1 wr=15%",
        rows,
        ["users", "observed_rt_ms", "mva_rt_ms", "observed_x", "mva_x",
         "observed_errors"],
    )
    return FigureResult("ablation_mva", "Observation vs MVA", rows,
                        rendered)


def test_bench_ablation_mva(once, emit):
    fig = once(run_ablation)
    emit(fig)
    rows = {row["users"]: row for row in fig.data}
    # Agreement below the knee.
    assert abs(rows[150]["observed_x"] - rows[150]["mva_x"]) \
        < 0.1 * rows[150]["mva_x"]
    # Divergence past it: the observed system times requests out, which
    # MVA cannot represent at all.
    assert rows[700]["observed_errors"] > 0.1
    assert rows[700]["mva_rt_ms"] > rows[700]["observed_rt_ms"]
