"""Figure 2: RUBiS on JOnAS app-server CPU utilization surface (IV.A).

Paper shape: CPU peaks correlate with Figure 1's response-time peaks —
the application server is the baseline bottleneck.
"""

from repro.experiments.figures import figure2


def test_bench_figure2(once, emit):
    fig = once(figure2)
    emit(fig)
    surface = fig.data
    assert surface[(250, 0.0)] > 85.0       # saturated corner
    assert surface[(50, 0.9)] < 35.0        # idle corner
