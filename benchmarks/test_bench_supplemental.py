"""Supplemental experiment sets the paper ran without plotting.

1. RUBBoS DB-tier scale-out (mentioned in the conclusion).
2. RUBiS-on-Weblogic scale-out (Table 3's fourth experiment set,
   "Figure omitted").
"""

from repro.experiments.figures import (
    supplemental_rubbos_scaleout,
    supplemental_weblogic_scaleout,
)


def test_bench_rubbos_db_scaleout(once, emit):
    fig = once(supplemental_rubbos_scaleout)
    emit(fig)
    one = dict(fig.data["1-1-1"])
    two = dict(fig.data["1-1-2"])
    three = dict(fig.data["1-1-3"])
    # Pure reads: RAIDb-1 scales nearly linearly; 3000 users swamp one
    # DB (knee ~2000) but sit inside two DBs' ~4000-user capacity.
    assert two[3000] < one[3000] / 4
    # Past ~3500 users a *different* bottleneck appears (the single
    # Tomcat, knee Z/D_app = 3500): the 2-DB and 3-DB curves overlap
    # there — the paper's bottleneck-migration phenomenon again.
    assert abs(two[4000] - three[4000]) < 0.2 * two[4000]
    assert two[4000] < one[4000] / 4


def test_bench_weblogic_scaleout(once, emit):
    fig = once(supplemental_weblogic_scaleout)
    emit(fig)
    two = dict(fig.data["1-2-1"])
    four = dict(fig.data["1-4-1"])
    six = dict(fig.data["1-6-1"])
    # ~490 users per dual-CPU Weblogic server: knees near 1000/2000/2900.
    assert two[1500] > 4 * two[600]
    assert four[1500] < two[1500] / 3
    assert six[2400] < 1000.0
