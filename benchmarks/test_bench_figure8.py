"""Figure 8: DB-tier CPU utilization for 1-8-1, 1-8-2, 1-12-2 (V.B).

Paper shape: gradual CPU saturation at ~1700 users (1 DB) and ~2700
users (2 DBs); the 1-12-2 configuration's DBs stay below saturation
until the top of the measured range.
"""

from repro.experiments.figures import figure8


def test_bench_figure8(once, emit):
    fig = once(figure8)
    emit(fig)
    one_db = dict(fig.data["1-8-1"])
    two_db = dict(fig.data["1-12-2"])
    three_db = dict(fig.data["1-12-3"])
    # Single DB saturates by 2000 users (paper: 1700).
    assert one_db[2000] > 85.0
    # Two DBs approach saturation near the top of the range (~2700).
    assert two_db[2000] < 85.0
    assert two_db[2900] > 85.0
    # Three DBs never saturate in the measured range.
    assert three_db[2900] < 80.0
