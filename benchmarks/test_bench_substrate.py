"""Microbenchmarks of the substrate itself (proper multi-round timing).

These quantify the costs the figure reproductions are built on: raw
event throughput of the discrete-event core, the processor-sharing
station, Mulini generation, MVA solving, and a full deploy cycle.
Regressions here multiply directly into figure-bench wall time.
"""

from repro.generator import Mulini
from repro.sim import ProcessorSharingStation, Simulator, mva
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.topology import Topology


def test_bench_event_loop_throughput(benchmark):
    """Schedule+fire cost of the bare event loop (100k events)."""

    def run():
        sim = Simulator()
        count = 100_000

        def chain():
            nonlocal count
            count -= 1
            if count > 0:
                sim.schedule(0.001, chain)

        sim.schedule(0.001, chain)
        sim.run_all()
        return sim.events_processed

    events = benchmark(run)
    assert events == 100_000


def test_bench_ps_station_throughput(benchmark):
    """Arrival/departure cost with 200 resident PS jobs (20k jobs)."""

    def run():
        sim = Simulator()
        station = ProcessorSharingStation(sim, "s", cores=2)
        remaining = [20_000]

        def feed():
            if remaining[0] > 0:
                remaining[0] -= 1
                station.submit(0.01, feed)

        for _ in range(200):
            feed()
        sim.run_all()
        return station.completed

    completed = benchmark(run)
    assert completed == 20_000


def test_bench_mva_solve(benchmark):
    """Exact MVA across 3 stations for 3000 customers."""
    stations = [mva.MvaStation("web", 0.0015),
                mva.MvaStation("app", 0.0285, servers=12),
                mva.MvaStation("db", 0.00415, servers=2)]

    result = benchmark(mva.solve, stations, 7.0, 3000)
    assert result.throughput > 0


def test_bench_bundle_generation(benchmark):
    """Mulini generation cost for a 1-8-2 bundle (~90 artifacts)."""
    from repro.experiments.sweep import build_experiment

    model = load_resource_model(render_resource_mof("rubis", "emulab"))
    mulini = Mulini(model)
    experiment, _tbl = build_experiment(
        name="bench", benchmark="rubis", platform="emulab",
        topologies=[Topology(1, 8, 2)], workloads=(1700,),
    )

    bundle = benchmark(mulini.generate, experiment, Topology(1, 8, 2),
                       1700, 0.15)
    assert bundle.file_count() > 80


def test_bench_full_deploy_cycle(benchmark):
    """Generate + execute run.sh + extract + verify for 1-2-1."""
    from repro.experiments.ablations import deployed_rubis_system

    system = benchmark.pedantic(
        deployed_rubis_system, args=(2, 1, 300), rounds=3, iterations=1,
    )
    assert system.topology() == Topology(1, 2, 1)


def test_bench_trial_simulation(benchmark):
    """One 300-user RUBiS trial (34 s simulated) end to end."""
    from repro.sim import NTierSimulation
    from repro.experiments.ablations import deployed_rubis_system

    system = deployed_rubis_system(2, 1, 300, trial=(14.0, 15.0, 5.0))

    def run():
        harness = NTierSimulation(system)
        return len(harness.run())

    requests = benchmark.pedantic(run, rounds=3, iterations=1)
    assert requests > 500
