"""Ablation: disk-spindle speed across hardware platforms (Table 2).

Rohan's 10000 RPM disks vs Warp's 5400 RPM disks under the same
write-heavy RUBiS load: the slow spindle runs ~1.85x busier, yet the
database CPU remains the bottleneck at the calibrated demands — the
reproduction's CPU-located knees do not hinge on ignoring the disks.
"""

from repro.experiments.ablations import disk_sensitivity, render_rows
from repro.experiments.figures import FigureResult


def run_ablation():
    rows = disk_sensitivity(users=250, write_ratio=0.5)
    rendered = render_rows(
        "Ablation: DB disk sensitivity (250 users, wr=50%)",
        rows,
        ["platform", "disk_rpm", "disk_util", "db_cpu_util",
         "mean_response_s", "throughput"],
        formats={"disk_rpm": "{:.0f}", "platform": "{}"},
    )
    return FigureResult("ablation_disk", "DB disk sensitivity", rows,
                        rendered)


def test_bench_ablation_disk(once, emit):
    fig = once(run_ablation)
    emit(fig)
    rows = {row["platform"]: row for row in fig.data}
    rohan, warp = rows["rohan"], rows["warp"]
    # The slow spindle is proportionally busier...
    assert warp["disk_util"] > 1.4 * rohan["disk_util"]
    # ...but stays far from saturation on both platforms,
    assert warp["disk_util"] < 0.3
    assert rohan["db_cpu_util"] > rohan["disk_util"]
    # ...and throughput is unaffected at this load.
    assert abs(warp["throughput"] - rohan["throughput"]) \
        < 0.1 * rohan["throughput"]
