"""Figure 4: RUBBoS baseline response time, 100% read vs 85/15 (IV.C).

Paper shape: the database is the bottleneck and the read-only setting
reaches it at a much lower workload than the read/write mix.
"""

from repro.experiments.figures import figure4


def test_bench_figure4(once, emit):
    fig = once(figure4)
    emit(fig)
    readonly = dict(fig.data["100% read"])
    mixed = dict(fig.data["85% read / 15% write"])
    # Read-only knee ~2000 users; the mix is fine until ~3200.
    assert readonly[3000] > 3 * mixed[3000]
    assert readonly[1000] < 400.0
