"""Table 6: % response-time improvement from 1-1-1 at 500 users (V.B).

Paper shape: adding one application server yields 84.3% improvement;
adding one database server only 13% — app servers are where the money
goes for this workload.
"""

from repro.experiments.figures import table6


def test_bench_table6(once, emit):
    fig = once(table6)
    emit(fig)
    table = fig.data
    assert table["app"][2] > 60.0
    assert table["db"][2] < 30.0
    assert table["app"][2] > 3 * max(table["db"][2], 1.0)
