"""Wall-clock benchmark: the flight recorder's tracing overhead.

Runs a reduced Figure 5 sweep twice — tracing off and tracing on — and
records both wall-clocks to ``benchmarks/output/trace_overhead.txt``.
The target is <5% overhead: spans are cheap (one ``perf_counter`` pair
plus a dict per phase), and the trial outcome must be bit-identical
either way, so tracing can stay on for real campaigns.

The hard assertion is deliberately looser than the target (shared CI
runners jitter); the measured number is what the report tracks.
"""

import pathlib
import time

from repro.experiments.figures import figure5
from repro.obs import Tracer

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Reduced sweep: full topology grid, shorter trials and fewer loads.
SWEEP = dict(scale=0.05, max_workload=900, workload_step=300)


def _fingerprint(results):
    return [
        (r.experiment_name, r.topology_label, r.workload, r.write_ratio,
         r.seed, r.status, r.metrics.completed, r.metrics.mean_response_s,
         r.metrics.throughput)
        for r in results
    ]


def test_bench_trace_overhead():
    start = time.perf_counter()
    plain = figure5(**SWEEP)
    plain_s = time.perf_counter() - start

    tracer = Tracer()
    start = time.perf_counter()
    traced = figure5(tracer=tracer, **SWEEP)
    traced_s = time.perf_counter() - start

    overhead = (traced_s - plain_s) / plain_s if plain_s else 0.0
    trials = len(traced.results)
    spans = sum(len(r.spans) for r in traced.results)
    report = (
        f"Trace overhead benchmark: Figure 5 reduced sweep "
        f"({trials} trials)\n"
        f"  tracing off   {plain_s:8.2f} s wall-clock\n"
        f"  tracing on    {traced_s:8.2f} s wall-clock "
        f"({spans} spans recorded)\n"
        f"  overhead      {overhead:8.1%}   (target < 5%)\n"
    )
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "trace_overhead.txt").write_text(report)
    print()
    print(report)

    # Tracing must observe, never perturb: identical observations.
    assert _fingerprint(plain.results) == _fingerprint(traced.results)
    assert plain.data == traced.data
    assert all(r.spans for r in traced.results)
    assert all(not r.spans for r in plain.results)

    # Generous ceiling for noisy runners; the 5% target is the report's.
    assert overhead < 0.25, report
