"""Figure 1: RUBiS on JOnAS baseline response-time surface (IV.A).

Paper shape: response time grows monotonically with users, a bottleneck
appears past ~250 users for write ratios below 30%, and high write
ratios keep response time short (the inversion).
"""

from repro.experiments.figures import figure1


def test_bench_figure1(once, emit):
    fig = once(figure1)
    emit(fig)
    surface = fig.data
    assert surface[(250, 0.0)] > 4 * surface[(50, 0.0)]
    assert surface[(250, 0.9)] < surface[(250, 0.0)] / 3
