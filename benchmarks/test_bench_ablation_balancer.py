"""Ablation: app-tier balancer policy (round-robin vs least-connections).

mod_jk's round-robin is the deployed default; with homogeneous app
servers and exponential demands, least-connections buys little — which
is why the paper's scale-out results don't hinge on the policy.
"""

from repro.experiments.ablations import (
    balancer_policies,
    deployed_rubis_system,
    render_rows,
)
from repro.experiments.figures import FigureResult


def _factory(users):
    return deployed_rubis_system(apps=4, dbs=1, users=users)


def run_ablation():
    rows = balancer_policies(_factory, [400, 800, 950])
    rendered = render_rows(
        "Ablation: balancer policy at the app tier (4 JOnAS servers)",
        rows,
        ["users", "rr_rt_ms", "least_rt_ms", "rr_x", "least_x"],
    )
    return FigureResult("ablation_balancer", "Balancer policy", rows,
                        rendered)


def test_bench_ablation_balancer(once, emit):
    fig = once(run_ablation)
    emit(fig)
    rows = {row["users"]: row for row in fig.data}
    # Equivalent throughput at every load level.
    for users, row in rows.items():
        assert abs(row["rr_x"] - row["least_x"]) < 0.1 * row["rr_x"]
