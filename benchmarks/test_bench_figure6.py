"""Figure 6: RUBiS scale-out response time, 8-12 app x 1-3 db (V.B).

Paper shape: past 1700 users the single-DB configurations saturate; the
1-8-Y, 1-9-Y, 1-10-Y curves (Y >= 2) overlap because with two or three
DBs the database is no longer the bottleneck.
"""

from repro.experiments.figures import figure6
from repro.results import analysis


def test_bench_figure6(once, emit):
    fig = once(figure6)
    emit(fig)
    results = fig.results
    # With 12 app servers the app tier (capacity ~2940) is out of the
    # way: the single-DB knee at ~1700 users shows cleanly.
    rt_12_1 = dict(analysis.response_time_series(results, "1-12-1"))
    rt_12_2 = dict(analysis.response_time_series(results, "1-12-2"))
    assert rt_12_2[2500] < rt_12_1[2500] / 4
    # Two vs three DBs overlap below the ~2950-user two-DB knee.
    rt_182 = dict(analysis.response_time_series(results, "1-8-2"))
    rt_183 = dict(analysis.response_time_series(results, "1-8-3"))
    assert abs(rt_182[2100] - rt_183[2100]) < max(150.0, 0.5 * rt_182[2100])
