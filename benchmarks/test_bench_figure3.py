"""Figure 3: RUBiS on Weblogic baseline response-time surface (IV.B).

Paper shape: same bottleneck structure as Figure 1, but the Weblogic/
Warp configuration supports about twice as many users at saturation
(carried by the dual-CPU Warp nodes).
"""

from repro.experiments.figures import figure3


def test_bench_figure3(once, emit):
    fig = once(figure3, workload_step=100)
    emit(fig)
    surface = fig.data
    # Still comfortable at 400 users / wr 15% where JOnAS saturated at 250.
    assert surface[(400, 0.2)] < 500.0
    # Saturation appears toward 600 users at low write ratios.
    assert surface[(600, 0.0)] > 3 * surface[(300, 0.0)]
