"""Table 7: measured average throughput per configuration/load (V.B).

Paper shape: throughput at low loads is identical across configurations
(software scale-out works); the 1-2-1 configuration fails to complete
loads beyond ~700 users (missing squares).
"""

from repro.experiments.figures import table7


def test_bench_table7(once, emit):
    fig = once(table7)
    emit(fig)
    table = fig.data
    # Uniform throughput across configs at 300 users.
    row = {t: table[t][300] for t in table}
    values = [v for v in row.values() if v is not None]
    assert len(values) == len(row)
    assert max(values) - min(values) < 0.15 * max(values)
    # Missing squares for the small config at high load.
    assert table["1-2-1"][1000] is None
    assert table["1-4-3"][1000] is not None
