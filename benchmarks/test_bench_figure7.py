"""Figure 7: response-time differences between DB configurations (V.B).

Paper shape: the 1DB-2DB (8 app) curve is flat on the left with a
sudden jump at ~1700 users; 2DB-3DB stays small until ~2900 users.
"""

from repro.experiments.figures import figure7


def test_bench_figure7(once, emit):
    fig = once(figure7)
    emit(fig)
    one_two = dict(fig.data["1DB-2DB (8 app)"])
    two_three_8 = dict(fig.data["2DB-3DB (8 app)"])
    # Flat before the single-DB knee, jump after it.
    assert abs(one_two[1100]) < 200.0
    assert one_two[2000] > 500.0
    # A third DB buys almost nothing at 8 app servers.
    assert abs(two_three_8[2000]) < 400.0
