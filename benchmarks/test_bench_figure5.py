"""Figure 5: RUBiS scale-out response time, 2-8 app x 1-3 db (V.B).

Paper shape: the 1-2-1/1-2-2/1-2-3 lines overlap (the DB is not the
bottleneck below 1700 users); each added app server buys roughly 250
users of capacity.
"""

from repro.experiments.figures import figure5
from repro.results import analysis


def test_bench_figure5(once, emit):
    fig = once(figure5)
    emit(fig)
    results = fig.results
    # DB replicas are near-irrelevant here: 1-2-1 vs 1-2-3 overlap.
    rt_121 = dict(analysis.response_time_series(results, "1-2-1"))
    rt_123 = dict(analysis.response_time_series(results, "1-2-3"))
    assert abs(rt_121[300] - rt_123[300]) < 0.3 * max(rt_121[300], 50)
    # Adding app servers moves the knee: 1-5-1 handles 1200 users that
    # swamp 1-3-1 (capacities ~1225 vs ~735).
    rt_131 = dict(analysis.response_time_series(results, "1-3-1"))
    rt_151 = dict(analysis.response_time_series(results, "1-5-1"))
    assert rt_151[1200] < rt_131[1200] / 3
