"""Adaptive planner benchmark: knee bisection vs the exhaustive grid.

The acceptance claims of the planner plane, measured end to end on a
16-rung workload ladder:

- the knee policy finds the same SLO knee — and yields the same
  capacity plan — as the exhaustive grid with >= 50% fewer trials;
- the decision log and the executed-trial tables are byte-identical at
  jobs=1 and jobs=4;
- a killed adaptive exploration completes via ``resume_campaign`` to
  the same database as an uninterrupted run.

The wall-clock/trial-count report lands in
``benchmarks/output/planner_adaptive.txt``.
"""

import pathlib
import time

import pytest

from repro import CapacityPlanner, ObservationCampaign, PerformanceMap
from repro.api import resume_campaign
from repro.core.bottleneck import slo_violated
from repro.planner.policy import KNEE

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

TBL = """
benchmark rubis;
platform emulab;

experiment "ladder" {
    topology 1-1-1;
    workload 50 to 800 step 50;
    write_ratio 15%;
    trial { warmup 2s; run 10s; cooldown 2s; }
    slo { response_time 1.0s; error_ratio 10%; }
}
"""

NODES = 8


def _dump(database):
    assert database.integrity_check() == []
    return {
        table: database.dump_rows(table)
        for table in ("trials", "host_cpu", "state_metrics",
                      "planner_decisions")
    }


def _plans(database, slo, targets):
    planner = CapacityPlanner(PerformanceMap.from_database(database),
                              write_ratio=0.15)
    return {users: planner.plan(users, slo).describe()
            for users in targets}


def test_bench_planner_adaptive():
    # -- the reference: the exhaustive grid ---------------------------
    grid = ObservationCampaign(TBL, node_count=NODES)
    start = time.perf_counter()
    grid.run()
    grid_s = time.perf_counter() - start
    experiment = grid.spec.experiments[0]
    slo = experiment.slo
    grid_trials = grid.database.count()
    assert grid_trials == 16

    violating = sorted(r.workload for r in grid.database.query()
                       if slo_violated(r, slo))
    assert violating, "ladder never breaks the SLO; benchmark is vacuous"
    grid_knee = violating[0]
    passing = sorted(r.workload for r in grid.database.query()
                     if not slo_violated(r, slo))

    # -- the adaptive exploration, sequentially -----------------------
    adaptive = ObservationCampaign(TBL, node_count=NODES)
    start = time.perf_counter()
    report = adaptive.run_adaptive(policy="knee")
    adaptive_s = time.perf_counter() - start
    outcome = report.outcome
    knees = [d for d in outcome.knees if d.action == KNEE]
    assert len(knees) == 1

    # Same knee...
    assert knees[0].workload == grid_knee
    # ...with >= 50% fewer trials.
    assert outcome.executed <= grid_trials // 2, (
        f"knee policy ran {outcome.executed} of {grid_trials} trials")
    assert outcome.savings_ratio() >= 0.5

    # Same capacity plan: the bisection measured the SLO crossing, so
    # the planner answers identically at every target the grid can
    # serve — and is identically infeasible past the ladder.
    targets = (passing[0], passing[-1], 5000)
    assert _plans(adaptive.database, slo, targets) == \
        _plans(grid.database, slo, targets)

    # -- worker-count invariance --------------------------------------
    parallel = ObservationCampaign(TBL, node_count=NODES)
    parallel.run_adaptive(policy="knee", jobs=4, backend="thread")
    assert _dump(parallel.database) == _dump(adaptive.database)

    # -- kill mid-exploration, then resume ----------------------------
    class Kill(Exception):
        pass

    killed = ObservationCampaign(TBL, node_count=NODES)
    seen = []

    def killer(result):
        seen.append(result)
        if len(seen) == 2:
            raise Kill()

    with pytest.raises(Kill):
        killed.run_adaptive(policy="knee", on_result=killer)
    assert killed.database.count() == 2
    resumed = resume_campaign(killed.database)
    assert resumed.skipped == 2
    assert _dump(killed.database) == _dump(adaptive.database)

    report_text = (
        f"Adaptive planner benchmark: 1-1-1 x 16-rung ladder "
        f"(SLO knee at u={grid_knee})\n"
        f"  grid      {grid_trials:3d} trials  {grid_s:6.1f} s wall-clock\n"
        f"  knee      {outcome.executed:3d} trials  {adaptive_s:6.1f} s "
        f"wall-clock  ({outcome.savings_ratio():.0%} trials saved)\n"
        f"  rounds    {outcome.rounds}\n"
        f"  finding   {knees[0].reason}\n"
        f"  invariant jobs=4 and resumed runs byte-identical to jobs=1\n"
    )
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "planner_adaptive.txt").write_text(report_text)
    print()
    print(report_text)
