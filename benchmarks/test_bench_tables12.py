"""Tables 1 and 2: software and hardware configuration summaries."""

from repro.experiments.figures import table1, table2


def test_bench_table1(once, emit):
    fig = once(table1)
    emit(fig)
    assert "mysql" in fig.rendered
    assert "jonas" in fig.rendered


def test_bench_table2(once, emit):
    fig = once(table2)
    emit(fig)
    assert "emulab" in fig.rendered
    assert "warp" in fig.rendered
