"""Command-line interface: ``python -m repro <command>``.

The CLI is the operator's surface over the library: validate a spec
pair, materialize a generated bundle to disk, run a campaign into a
SQLite file, query/export the observations, regenerate a paper figure,
or inspect the catalogs.

Commands::

    validate  --tbl FILE [--mof FILE]
    generate  --tbl FILE [--mof FILE] --experiment NAME
              [--topology W-A-D] [--workload N] [--write-ratio F]
              [--backend shell|smartfrog] --out DIR
    run       --tbl FILE [--mof FILE] [--db FILE] [--nodes N]
              [--jobs N|auto] [--faults FILE] [--retries N]
              [--fidelity des|analytic] [--resume] [--trace] [--quiet]
    explore   --tbl FILE [--mof FILE] [--db FILE] [--nodes N]
              [--jobs N|auto]
              [--faults FILE] [--retries N]
              [--policy grid|knee|promote|tiered] [--budget N]
              [--fidelity des|analytic|auto]
              [--experiment NAME] [--dry-run] [--resume] [--trace]
              [--quiet]
    resume    DB [--jobs N] [--trace] [--quiet] [--url URL]
    heal      DB [--jobs N] [--budget N] [--rounds N] [--target N]
              [--experiment NAME] [--trace] [--quiet] [--url URL]
    serve     [--host H] [--port N] [--jobs N] [--max-active N]
    submit    --tbl FILE [--mof FILE] --db FILE [--nodes N] [--jobs N]
              [--faults FILE] [--retries N] [--policy P] [--budget N]
              [--fidelity F] [--experiment NAME] [--resume] [--wait]
              [--url URL]
    status    [ID] [--url URL]
    cancel    ID [--url URL]
    shutdown  [--abort] [--url URL]
    report    --db FILE [--experiment NAME] [--topology W-A-D]
              [--format text|csv|json] [--out FILE]
    figure    --id ID [--scale F] [--jobs N] [--trace] [--db FILE]
              [--fidelity des|analytic] [--out DIR]
                                                 (figure1..8, table1..7)
    scenarios list
    scenarios run NAME [--db FILE] [--jobs N|auto] [--nodes N]
              [--fidelity F] [--resume] [--no-check] [--trace] [--quiet]
    trace     DB [--experiment NAME] [--limit N]
    card      DB [--verify]
    catalog   [--platforms] [--software]

The run/figure/report/trace handlers are thin wrappers over the
:mod:`repro.api` facade; ``--trace`` turns on the lifecycle flight
recorder, whose spans land in the database next to the trials and are
rendered by ``repro trace <db>``.

serve/submit/status/cancel/shutdown are the campaign-service surface:
``repro serve`` runs the controller/worker daemon and the others speak
to it over its local HTTP API (see :mod:`repro.service`).  Shared flags
(--tbl/--mof, --db, --jobs, --faults/--retries, --trace/--quiet) are
defined once as argparse parent parsers, so ``repro run`` and ``repro
submit`` stay flag-compatible by construction.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.errors import ReproError


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    if not hasattr(args, "handler"):
        parser.print_help()
        return 2
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; the POSIX
        # convention is a silent exit, not a traceback.
        sys.stderr.close()
        return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Observation-based performance characterization of "
                    "n-tier applications (IISWC 2007 reproduction)",
    )
    commands = parser.add_subparsers(metavar="command")

    # The flag families shared across subcommands are each defined once
    # as a parent parser, so `repro run` and `repro submit` (and every
    # other command touching the same concern) cannot drift apart.
    spec = _spec_parent()
    db = _db_parent()
    jobs = _jobs_parent()
    faults = _faults_parent()
    output = _output_parent()
    fidelity = _fidelity_parent()

    validate = commands.add_parser(
        "validate", parents=[spec],
        help="check a TBL (and optional MOF) spec pair")
    validate.set_defaults(handler=cmd_validate)

    generate = commands.add_parser(
        "generate", parents=[spec],
        help="write a Mulini bundle for one experiment point")
    generate.add_argument("--experiment", required=True)
    generate.add_argument("--topology", default=None,
                          help="w-a-d (default: the experiment's first)")
    generate.add_argument("--workload", type=int, default=None)
    generate.add_argument("--write-ratio", type=float, default=None)
    generate.add_argument("--backend", choices=("shell", "smartfrog"),
                          default="shell")
    generate.add_argument("--out", required=True,
                          help="directory to write the bundle into")
    generate.set_defaults(handler=cmd_generate)

    run = commands.add_parser(
        "run", parents=[spec, db, jobs, faults, output, fidelity],
        help="run every experiment of a TBL spec into a database")
    run.add_argument("--nodes", type=int, default=36,
                     help="virtual cluster size (default 36)")
    run.add_argument("--resume", action="store_true",
                     help="skip trials already stored in --db")
    run.set_defaults(handler=cmd_run)

    explore = commands.add_parser(
        "explore", parents=[spec, db, jobs, faults, output, fidelity],
        help="adaptive exploration: a planner policy picks "
             "trials from the observations so far")
    _planner_arguments(explore)
    explore.add_argument("--nodes", type=int, default=36,
                         help="virtual cluster size (default 36)")
    explore.add_argument("--dry-run", action="store_true",
                         help="print the policy's first round and exit "
                              "without running trials")
    explore.add_argument("--resume", action="store_true",
                         help="feed trials already stored in --db back "
                              "into the planner instead of re-running")
    explore.set_defaults(handler=cmd_explore)

    resume = commands.add_parser(
        "resume", parents=[jobs, output],
        help="finish an interrupted campaign from its database")
    resume.add_argument("db", help="results database of a prior run "
                                   "(with --url: the interrupted "
                                   "campaign's --db path)")
    resume.add_argument("--url", default=None, metavar="URL",
                        help="resume on a running campaign daemon "
                             "instead of in-process")
    resume.set_defaults(handler=cmd_resume)

    heal = commands.add_parser(
        "heal", parents=[jobs, output],
        help="auto-remediate a campaign from its own observations")
    heal.add_argument("db", help="results database to diagnose and heal")
    heal.add_argument("--budget", type=int, default=None, metavar="N",
                      help="shadow-trial budget for verification "
                           "(default 32; persisted for resume)")
    heal.add_argument("--rounds", type=int, default=None, metavar="N",
                      help="max detect/verify/apply rounds (default 3)")
    heal.add_argument("--target", type=int, default=None, metavar="N",
                      help="workload the healed system must support "
                           "(default: the ladder's top rung)")
    heal.add_argument("--experiment", default=None,
                      help="experiment to heal (default: the "
                           "campaign's only one)")
    heal.add_argument("--url", default=None, metavar="URL",
                      help="heal on a running campaign daemon "
                           "instead of in-process")
    heal.set_defaults(handler=cmd_heal)

    serve = commands.add_parser(
        "serve", parents=[_jobs_parent(default=4)],
        help="run the campaign daemon: one worker fleet, many campaigns")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--max-active", type=int, default=8, metavar="N",
                       help="campaigns in flight before submits get "
                            "backpressure (default 8)")
    serve.set_defaults(handler=cmd_serve)

    submit = commands.add_parser(
        "submit",
        parents=[_spec_parent(required=False), db, jobs, faults,
                 _url_parent(), _fidelity_parent()],
        help="submit a campaign to a running daemon")
    _planner_arguments(submit, optional=True)
    submit.add_argument("--nodes", type=int, default=36,
                        help="virtual cluster size (default 36)")
    submit.add_argument("--resume", action="store_true",
                        help="continue from the campaign's checkpoint "
                             "(shard or merged database) at --db")
    submit.add_argument("--wait", action="store_true",
                        help="block until the campaign settles and "
                             "print its summary")
    submit.set_defaults(handler=cmd_submit)

    status = commands.add_parser(
        "status", parents=[_url_parent()],
        help="show the daemon's campaigns, fleet, and aggregate")
    status.add_argument("id", nargs="?", default=None,
                        help="one campaign's id (default: everything)")
    status.set_defaults(handler=cmd_status)

    cancel = commands.add_parser(
        "cancel", parents=[_url_parent()],
        help="cancel a running campaign, keeping its shard checkpoint")
    cancel.add_argument("id", help="the campaign id to cancel")
    cancel.set_defaults(handler=cmd_cancel)

    shutdown = commands.add_parser(
        "shutdown", parents=[_url_parent()],
        help="stop the campaign daemon")
    shutdown.add_argument("--abort", action="store_true",
                          help="kill instead of draining; running "
                               "campaigns survive as shard checkpoints")
    shutdown.set_defaults(handler=cmd_shutdown)

    report = commands.add_parser(
        "report", help="render or export observations from a database")
    report.add_argument("--db", required=True)
    report.add_argument("--experiment", default=None)
    report.add_argument("--topology", default=None)
    report.add_argument("--format", choices=("text", "csv", "json"),
                        default="text")
    report.add_argument("--chart", action="store_true",
                        help="render an ASCII chart of the RT series")
    report.add_argument("--by-interaction", action="store_true",
                        help="per-interaction breakdown instead of series")
    report.add_argument("--out", default=None,
                        help="write to a file instead of stdout")
    report.set_defaults(handler=cmd_report)

    figure = commands.add_parser(
        "figure", help="regenerate one paper figure/table")
    figure.add_argument("--id", required=True, dest="figure_id",
                        help="figure1..figure8, table1..table7")
    figure.add_argument("--scale", type=float, default=None,
                        help="trial-phase scale (default: bench scale)")
    figure.add_argument("--jobs", type=int, default=1,
                        help="parallel trial workers (default 1; results "
                             "are identical for any value)")
    figure.add_argument("--trace", action="store_true",
                        help="record lifecycle spans while reproducing "
                             "(stored in --db)")
    figure.add_argument("--db", default=None,
                        help="store the figure's trials (and spans) in "
                             "this SQLite file (default with --trace: "
                             "trace.sqlite)")
    figure.add_argument("--fidelity", choices=("des", "analytic"),
                        default="des",
                        help="solver tier for the figure's trials "
                             "(default des; analytic solves each point "
                             "in milliseconds)")
    figure.add_argument("--out", default=None,
                        help="directory for the rendering")
    figure.set_defaults(handler=cmd_figure)

    trace = commands.add_parser(
        "trace", help="render the flight-recorder report of a traced run")
    trace.add_argument("db", help="results database of a --trace run")
    trace.add_argument("--experiment", default=None,
                       help="restrict to one experiment's trials")
    trace.add_argument("--limit", type=int, default=20,
                       help="trials shown in the breakdown (default 20)")
    trace.set_defaults(handler=cmd_trace)

    card = commands.add_parser(
        "card", help="print a campaign database's run card (provenance)")
    card.add_argument("db", help="results database of a campaign run")
    card.add_argument("--verify", action="store_true",
                      help="recompute the table digests and fail if the "
                           "database no longer matches the card")
    card.set_defaults(handler=cmd_card)

    scenarios = commands.add_parser(
        "scenarios",
        help="the declarative scenario matrix: consolidation x arrivals")
    scenario_actions = scenarios.add_subparsers(metavar="action")
    scenarios_list = scenario_actions.add_parser(
        "list", help="show every scenario and its expected ranges")
    scenarios_list.set_defaults(handler=cmd_scenarios_list)
    scenarios_run = scenario_actions.add_parser(
        "run", parents=[db, jobs, output, fidelity],
        help="compile one scenario to TBL, run it, check its ranges")
    scenarios_run.add_argument("name", help="scenario name (see: repro "
                                            "scenarios list)")
    scenarios_run.add_argument("--nodes", type=int, default=36,
                               help="virtual cluster size (default 36)")
    scenarios_run.add_argument("--resume", action="store_true",
                               help="skip trials already stored in --db")
    scenarios_run.add_argument("--no-check", action="store_true",
                               help="skip the expected-range assertions")
    scenarios_run.set_defaults(handler=cmd_scenarios_run)

    catalog = commands.add_parser(
        "catalog", help="print the hardware/software catalogs")
    catalog.add_argument("--platforms", action="store_true")
    catalog.add_argument("--software", action="store_true")
    catalog.set_defaults(handler=cmd_catalog)

    return parser


# -- shared flag families (argparse parent parsers) ----------------------
#
# Each family is defined in exactly one place and attached via
# ``parents=[...]``; a new subcommand that needs, say, the fault flags
# inherits them wholesale instead of re-declaring (and mistyping) them.

def _parent():
    return argparse.ArgumentParser(add_help=False)


def _spec_parent(required=True):
    parent = _parent()
    parent.add_argument("--tbl", required=required,
                        help="Testbed Language specification file")
    parent.add_argument("--mof", default=None,
                        help="CIM/MOF resource model file "
                             "(default: derived from the TBL header)")
    return parent


def _db_parent():
    parent = _parent()
    parent.add_argument("--db", default="observations.sqlite",
                        help="SQLite file for the results "
                             "(default: observations.sqlite)")
    return parent


def _jobs_value(text):
    """``--jobs`` accepts a worker count or ``auto`` (CPU-topology
    sizing via :func:`repro.experiments.scheduler.calc_parallel_jobs`)."""
    if text == "auto":
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'auto', got {text!r}")


def _jobs_parent(default=1):
    parent = _parent()
    parent.add_argument("--jobs", type=_jobs_value, default=default,
                        metavar="N|auto",
                        help=f"parallel trial workers (default {default}; "
                             f"'auto' sizes from the CPU count; results "
                             f"are identical for any value)")
    return parent


def _resolve_jobs(args, node_count=None):
    """Resolve ``--jobs auto`` to a concrete worker count in place.

    Resolution happens at the CLI boundary so every downstream consumer
    (the remedy pipeline, the service fleet, wait math) sees an int;
    *node_count* makes the sizing topology-aware where ``--nodes`` is
    known.
    """
    if args.jobs == "auto":
        from repro.experiments.scheduler import calc_parallel_jobs

        args.jobs = calc_parallel_jobs(node_count=node_count)
        print(f"--jobs auto: sized to {args.jobs} worker(s)")
    return args.jobs


def _faults_parent():
    parent = _parent()
    parent.add_argument("--faults", default=None, metavar="FILE",
                        help="JSON fault plan to arm during the campaign "
                             "(chaos mode; see repro.faults.FaultPlan)")
    parent.add_argument("--retries", type=int, default=None, metavar="N",
                        help="max attempts per trial (enables retry, "
                             "quarantine and enriched DNF recording)")
    return parent


def _output_parent():
    parent = _parent()
    parent.add_argument("--trace", action="store_true",
                        help="record lifecycle spans into the database "
                             "(inspect with: repro trace <db>)")
    parent.add_argument("--quiet", action="store_true")
    return parent


def _url_parent():
    parent = _parent()
    parent.add_argument("--url", default="http://127.0.0.1:8642",
                        metavar="URL",
                        help="the campaign daemon's address "
                             "(default http://127.0.0.1:8642)")
    return parent


def _fidelity_parent():
    parent = _parent()
    parent.add_argument("--fidelity",
                        choices=("des", "analytic", "auto"),
                        default="des",
                        help="solver tier: des (default, per-request "
                             "simulation), analytic (fluid fast path), "
                             "or auto (explore analytically, confirm "
                             "the knee with DES — explore/submit only)")
    return parent


def _planner_arguments(subparser, optional=False):
    subparser.add_argument("--policy",
                          choices=("grid", "knee", "promote", "tiered"),
                          default=None if optional else "knee",
                          help="experiment-selection policy"
                               + (" (submits an adaptive exploration "
                                  "instead of the fixed grid)" if optional
                                  else " (default knee: bisect each "
                                       "workload ladder to its SLO knee)"))
    subparser.add_argument("--budget", type=int, default=None, metavar="N",
                          help="hard cap on executed trials")
    subparser.add_argument("--experiment", default=None,
                          help="experiment to explore (default: the "
                               "spec's only one)")


def _load_specs(args):
    from repro.spec.mof import load_resource_model, render_resource_mof
    from repro.spec.tbl import parse as parse_tbl

    tbl_path = pathlib.Path(args.tbl)
    tbl_text = tbl_path.read_text()
    spec = parse_tbl(tbl_text, source=str(tbl_path))
    if args.mof is not None:
        mof_text = pathlib.Path(args.mof).read_text()
        mof_source = args.mof
    else:
        mof_text = render_resource_mof(spec.benchmark, spec.platform,
                                       app_server=spec.app_server)
        mof_source = "<derived>"
    model = load_resource_model(mof_text, source=mof_source)
    return spec, model, tbl_text, mof_text


def cmd_validate(args):
    from repro.spec.validation import validate

    spec, model, _tbl, _mof = _load_specs(args)
    warnings = validate(model, spec)
    points = sum(e.point_count() for e in spec.experiments)
    print(f"ok: {len(spec.experiments)} experiment(s), {points} sweep "
          f"point(s) on platform {model.platform.name!r}")
    for experiment in spec.experiments:
        print(f"  {experiment.name}: {len(experiment.topologies)} "
              f"topologies x {len(experiment.workloads)} workloads x "
              f"{len(experiment.write_ratios)} write ratios, up to "
              f"{experiment.max_machine_count()} machines")
    for warning in warnings:
        print(f"warning: {warning}")
    return 0


def cmd_generate(args):
    from repro.generator import Mulini
    from repro.spec.topology import Topology

    spec, model, _tbl, _mof = _load_specs(args)
    experiment = spec.experiment(args.experiment)
    topology = Topology.parse(args.topology) if args.topology \
        else experiment.topologies[0]
    workload = args.workload if args.workload is not None \
        else experiment.workloads[0]
    write_ratio = args.write_ratio if args.write_ratio is not None \
        else experiment.write_ratios[0]
    mulini = Mulini(model, spec)
    out_dir = pathlib.Path(args.out)
    if args.backend == "smartfrog":
        text = mulini.generate(experiment, topology, workload, write_ratio,
                               backend="smartfrog")
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / "deployment.sf"
        path.write_text(text)
        print(f"wrote {path}")
        return 0
    bundle = mulini.generate(experiment, topology, workload, write_ratio)
    root = out_dir / bundle.experiment_id
    for relative, content in sorted(bundle.files.items()):
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    (root / "manifest.txt").write_text(bundle.manifest())
    print(f"wrote {bundle.file_count() + 1} files under {root}")
    print(f"  {bundle.script_line_total()} script lines, "
          f"{bundle.config_line_total()} config lines")
    return 0


def _trial_progress(args):
    def progress(result):
        if not args.quiet:
            retries = f" ({result.attempts} attempts)" \
                if result.retried else ""
            print(f"  {result.experiment_name} "
                  f"{result.topology_label} "
                  f"u={result.workload} wr={result.write_ratio:.0%} -> "
                  f"{result.status}{retries} "
                  f"rt={result.response_time_ms():.1f}ms "
                  f"x={result.throughput():.1f}/s")
    return progress


def _print_report(report):
    for warning in report.warnings:
        print(f"warning: {warning}")
    for host, reason in sorted(report.quarantined.items()):
        print(f"quarantined: {reason}")
    print(report.summary())


def cmd_run(args):
    from repro.api import open_results, run_campaign
    from repro.obs import Tracer

    _spec, _model, tbl_text, mof_text = _load_specs(args)
    faults = _load_fault_plan(args)
    _resolve_jobs(args, node_count=args.nodes)
    with open_results(args.db) as database:
        report = run_campaign(tbl_text, mof_text=mof_text,
                              database=database, node_count=args.nodes,
                              jobs=args.jobs,
                              tracer=Tracer() if args.trace else None,
                              on_result=_trial_progress(args),
                              tbl_source=args.tbl,
                              faults=faults, retry=args.retries,
                              resume=args.resume,
                              fidelity=args.fidelity)
        _print_report(report)
    print(f"observations stored in {args.db}")
    if args.trace:
        print(f"lifecycle spans recorded; inspect with: "
              f"repro trace {args.db}")
    return 0


def _load_fault_plan(args):
    from repro.faults import FaultPlan

    if args.faults is None:
        return None
    return FaultPlan.from_json(
        pathlib.Path(args.faults).read_text(), source=args.faults)


def cmd_explore(args):
    from repro.api import open_results, plan_campaign, run_adaptive
    from repro.obs import Tracer

    _spec, _model, tbl_text, mof_text = _load_specs(args)
    if args.dry_run:
        preview = plan_campaign(tbl_text, policy=args.policy,
                                budget=args.budget,
                                experiment=args.experiment,
                                tbl_source=args.tbl,
                                fidelity=args.fidelity)
        print(preview.describe())
        return 0
    _resolve_jobs(args, node_count=args.nodes)
    with open_results(args.db) as database:
        report = run_adaptive(tbl_text, policy=args.policy,
                              budget=args.budget,
                              experiment=args.experiment,
                              mof_text=mof_text, database=database,
                              node_count=args.nodes, jobs=args.jobs,
                              tracer=Tracer() if args.trace else None,
                              on_result=_trial_progress(args),
                              tbl_source=args.tbl,
                              faults=_load_fault_plan(args),
                              retry=args.retries, resume=args.resume,
                              fidelity=args.fidelity)
        _print_report(report)
        outcome = report.outcome
        if outcome is not None:
            for knee in outcome.knees:
                print(f"finding: {knee.reason}")
            print(f"explored {outcome.executed} of "
                  f"{outcome.universe_size() * outcome.experiment.repetitions} "
                  f"grid trial(s) ({outcome.savings_ratio():.0%} saved)")
    print(f"observations stored in {args.db}")
    if args.trace:
        print(f"lifecycle spans recorded; inspect with: "
              f"repro trace {args.db}")
    return 0


def cmd_resume(args):
    from repro.api import open_results, resume_campaign
    from repro.obs import Tracer

    _resolve_jobs(args)
    if args.url is not None:
        from repro.api import campaign_client

        client = campaign_client(args.url)
        campaign_id = client.resume(db_path=args.db, jobs=args.jobs)
        print(f"resumed as campaign {campaign_id} on {args.url}")
        return _wait_and_report(client, campaign_id, quiet=args.quiet)
    with open_results(args.db, create=False) as database:
        report = resume_campaign(database, jobs=args.jobs,
                                 tracer=Tracer() if args.trace else None,
                                 on_result=_trial_progress(args))
        _print_report(report)
    print(f"observations stored in {args.db}")
    return 0


def cmd_heal(args):
    from repro.api import heal_campaign, open_results
    from repro.obs import Tracer

    _resolve_jobs(args)
    if args.url is not None:
        from repro.api import campaign_client

        client = campaign_client(args.url)
        heal_id = client.heal(db_path=args.db, jobs=args.jobs,
                              budget=args.budget, rounds=args.rounds,
                              target=args.target,
                              experiment=args.experiment)
        print(f"healing as {heal_id} on {args.url}")
        return _wait_and_report(client, heal_id, quiet=args.quiet)
    with open_results(args.db, create=False) as database:
        report = heal_campaign(
            database, jobs=args.jobs, budget=args.budget,
            rounds=args.rounds, target=args.target,
            experiment=args.experiment,
            tracer=Tracer() if args.trace else None,
            on_progress=None if args.quiet else lambda line:
                print(f"  {line}"))
        print(report.describe())
    print(f"remediation log stored in {args.db}")
    return 0 if report.healthy else 1


# -- the campaign-service surface -----------------------------------------

def cmd_serve(args):
    from repro.service import serve

    _resolve_jobs(args)
    print(f"campaign daemon: fleet of {args.jobs} worker(s), up to "
          f"{args.max_active} campaign(s) in flight")
    serve(host=args.host, port=args.port, jobs=args.jobs,
          max_active=args.max_active,
          on_ready=lambda url: print(f"listening on {url}", flush=True))
    return 0


def cmd_submit(args):
    from repro.api import campaign_client

    tbl_text = None
    mof_text = None
    if args.tbl is not None:
        _spec, _model, tbl_text, mof_text = _load_specs(args)
    elif not args.resume:
        print("error: submit needs --tbl (or --resume with a "
              "checkpointed --db)", file=sys.stderr)
        return 2
    _resolve_jobs(args, node_count=args.nodes)
    client = campaign_client(args.url)
    campaign_id = client.submit(
        tbl_text, db_path=args.db, jobs=args.jobs, mof_text=mof_text,
        node_count=args.nodes, policy=args.policy, budget=args.budget,
        experiment=args.experiment,
        faults=_load_fault_plan(args), retry=args.retries,
        resume=args.resume, fidelity=args.fidelity)
    print(f"submitted campaign {campaign_id} on {args.url} "
          f"(db: {args.db})")
    if not args.wait:
        return 0
    return _wait_and_report(client, campaign_id, quiet=False)


def _wait_and_report(client, campaign_id, *, quiet):
    record = client.wait(campaign_id, timeout=3600)
    if record is None:
        print(f"campaign {campaign_id} still running after timeout",
              file=sys.stderr)
        return 1
    if not quiet and record.get("summary"):
        print(record["summary"])
    if record["state"] != "done":
        print(f"campaign {campaign_id} {record['state']}: "
              f"{record.get('error')}", file=sys.stderr)
        return 1
    print(f"observations stored in {record['db_path']}")
    return 0


def cmd_status(args):
    from repro.api import campaign_client

    client = campaign_client(args.url)
    if args.id is not None:
        record = client.status(args.id)
        print(f"{record['id']}: {record['state']} "
              f"({record['trials']} trial(s), "
              f"{record['skipped']} skipped) -> {record['db_path']}")
        if record.get("summary"):
            print(f"  {record['summary']}")
        if record.get("error"):
            print(f"  error: {record['error']}")
        return 0
    state = client.status()
    fleet = state["fleet"]
    print(f"fleet: {fleet['workers']} worker(s), "
          f"{fleet['in_flight']} in flight, "
          f"{fleet['dispatched']} dispatched")
    if not state["campaigns"]:
        print("no campaigns")
    for cid in sorted(state["campaigns"]):
        record = state["campaigns"][cid]
        print(f"  {cid}: {record['state']} "
              f"({record['trials']} trial(s)) -> {record['db_path']}")
    return 0


def cmd_cancel(args):
    from repro.api import campaign_client

    campaign_client(args.url).cancel(args.id)
    print(f"cancelled campaign {args.id}; its shard checkpoint stays "
          f"for resume")
    return 0


def cmd_shutdown(args):
    from repro.api import campaign_client

    campaign_client(args.url).shutdown(abort=args.abort)
    print("daemon stopping"
          + (" (aborted; shards keep the checkpoints)" if args.abort
             else ""))
    return 0


def cmd_report(args):
    from repro.api import open_results
    from repro.results import analysis, report
    from repro.results.export import to_csv, to_json

    with open_results(args.db, create=False) as database:
        results = database.query(experiment_name=args.experiment,
                                 topology=args.topology)
        if not results:
            print("no matching trials", file=sys.stderr)
            return 1
        if args.format == "csv":
            output = to_csv(results)
        elif args.format == "json":
            output = to_json(results)
        elif args.by_interaction:
            sections = []
            for result in results:
                if not result.per_state:
                    continue
                sections.append(report.render_state_table(
                    f"{result.topology_label} @ {result.workload} users, "
                    f"wr={result.write_ratio:.0%} — by interaction",
                    result.per_state, limit=10,
                ))
            if not sections:
                print("no per-interaction data stored", file=sys.stderr)
                return 1
            output = "\n\n".join(sections) + "\n"
        elif args.chart:
            series = {
                topology: analysis.response_time_series(results, topology)
                for topology in sorted({r.topology_label
                                        for r in results})
            }
            output = report.render_ascii_chart(
                "mean response time (ms) vs workload", series,
            ) + "\n"
        else:
            sections = []
            for topology in sorted({r.topology_label for r in results}):
                for ratio in sorted({round(r.write_ratio, 6)
                                     for r in results
                                     if r.topology_label == topology}):
                    series = analysis.response_time_series(
                        results, topology, write_ratio=ratio)
                    sections.append(report.render_series(
                        f"{topology} @ wr={ratio:.0%} "
                        f"(mean response time, ms)",
                        series, y_label="rt_ms",
                    ))
            output = "\n\n".join(sections) + "\n"
    if args.out:
        pathlib.Path(args.out).write_text(output)
        print(f"wrote {args.out}")
    else:
        print(output, end="")
    return 0


def cmd_figure(args):
    from repro.api import reproduce_figure
    from repro.experiments.papersuite import FIGURE_IDS, reproduce_all
    from repro.obs import Tracer

    _resolve_jobs(args)
    db_path = args.db
    if args.trace and db_path is None:
        db_path = "trace.sqlite"
    tracer = Tracer() if args.trace else None
    if args.figure_id == "all":
        with _maybe_database(db_path) as database:
            results = reproduce_all(output_dir=args.out, scale=args.scale,
                                    database=database, on_progress=print,
                                    jobs=args.jobs, tracer=tracer,
                                    fidelity=args.fidelity)
        print(f"reproduced {len(results)} figures/tables"
              + (f" into {args.out}" if args.out else ""))
        if db_path:
            print(f"trials stored in {db_path}")
        return 0
    try:
        with _maybe_database(db_path) as database:
            result = reproduce_figure(args.figure_id, scale=args.scale,
                                      jobs=args.jobs, tracer=tracer,
                                      database=database,
                                      output_dir=args.out,
                                      fidelity=args.fidelity)
    except KeyError:
        print(f"error: unknown figure id {args.figure_id!r}; known: "
              f"all, {', '.join(FIGURE_IDS)}", file=sys.stderr)
        return 1
    print(result.rendered)
    if args.out:
        path = pathlib.Path(args.out) / f"{result.figure_id}.txt"
        print(f"\nwrote {path}")
    if db_path:
        print(f"trials stored in {db_path}"
              + (f"; inspect spans with: repro trace {db_path}"
                 if args.trace else ""))
    return 0


class _NoDatabase:
    """Context manager standing in for 'no --db given'."""

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


def _maybe_database(db_path):
    from repro.api import open_results

    return open_results(db_path) if db_path else _NoDatabase()


def cmd_trace(args):
    from repro.api import trace_report

    print(trace_report(args.db, experiment=args.experiment,
                       limit=args.limit))
    return 0


def cmd_card(args):
    from repro.api import open_results
    from repro.provenance import canonical_json, verify_run_card

    with open_results(args.db, create=False) as database:
        cards = database.run_cards()
        if not cards:
            print(f"no run cards in {args.db} (produced before the "
                  f"provenance plane, or not by run_campaign)",
                  file=sys.stderr)
            return 1
        latest = cards[-1]
        print(canonical_json(latest))
        if len(cards) > 1:
            print(f"({len(cards)} run cards recorded; showing the "
                  f"latest)", file=sys.stderr)
        if args.verify:
            problems = verify_run_card(latest, database)
            if problems:
                for problem in problems:
                    print(f"mismatch: {problem}", file=sys.stderr)
                return 1
            print("table digests verified: database matches the card",
                  file=sys.stderr)
    return 0


def cmd_scenarios_list(args):
    from repro.api import list_scenarios

    for scenario in list_scenarios():
        shape = scenario.topology
        if scenario.consolidation > 1:
            shape += f" @{scenario.consolidation}x"
        arrival = "closed-loop" if scenario.arrival is None \
            else scenario.arrival["kind"]
        expects = ", ".join(f"{key}={value}" for key, value
                            in sorted(scenario.expects.items())) or "-"
        print(f"{scenario.name:20} {shape:12} {arrival:12} {expects}")
        print(f"{'':20} {scenario.description}")
    return 0


def cmd_scenarios_run(args):
    from repro.api import open_results, run_scenario
    from repro.obs import Tracer

    _resolve_jobs(args, node_count=args.nodes)
    with open_results(args.db) as database:
        outcome = run_scenario(args.name, database=database,
                               node_count=args.nodes, jobs=args.jobs,
                               tracer=Tracer() if args.trace else None,
                               on_result=_trial_progress(args),
                               resume=args.resume,
                               fidelity=args.fidelity,
                               check=not args.no_check)
        _print_report(outcome.report)
        if not args.no_check:
            print(outcome.describe())
    print(f"observations stored in {args.db}")
    if args.trace:
        print(f"lifecycle spans recorded; inspect with: "
              f"repro trace {args.db}")
    return 0 if outcome.ok else 1


def cmd_catalog(args):
    from repro.experiments.figures import table1, table2

    show_all = not (args.platforms or args.software)
    if args.software or show_all:
        print(table1().rendered)
    if (args.platforms or show_all):
        if args.software or show_all:
            print()
        print(table2().rendered)
    return 0
