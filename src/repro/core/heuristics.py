"""The paper's scale-out exploration strategy (Section V.A).

"As the workload increases ... if we are able to see a system component
bottleneck (e.g., application server in RUBiS), we increase the number
of the bottleneck resource to alleviate the bottleneck.  ...  This loop
continues until the system response time is not improved by the
addition of another server.  This is an indication of a different
bottleneck in the system.  Then we add other system resources."

The strategy drives real trials through the ExperimentRunner; every
decision is recorded so the exploration itself is an observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bottleneck import detect_bottleneck, slo_violated
from repro.errors import AllocationError, ExperimentError
from repro.experiments.sweep import build_experiment
from repro.spec.topology import Topology


@dataclass
class ScaleOutStep:
    """One decision the strategy took, and the trial that prompted it."""

    topology: str
    workload: int
    action: str            # "workload+", "scale app", "scale db", "stop"
    reason: str
    result: object = None


@dataclass
class ScaleOutOutcome:
    steps: list = field(default_factory=list)
    results: list = field(default_factory=list)

    def final_topology(self):
        for step in reversed(self.steps):
            if step.result is not None:
                return step.topology
        raise ExperimentError("strategy ran no trials")

    def max_supported_workload(self, slo):
        good = [r.workload for r in self.results
                if not slo_violated(r, slo) and r.completed]
        return max(good) if good else None


class ScaleOutStrategy:
    """Bottleneck-driven exploration bound to a runner and a benchmark."""

    def __init__(self, runner, benchmark, platform, scale=0.1,
                 write_ratio=0.15, seed=42, app_server=None,
                 cpu_threshold=85.0, min_improvement=0.10):
        self.runner = runner
        self.benchmark = benchmark
        self.platform = platform
        self.scale = scale
        self.write_ratio = write_ratio
        self.seed = seed
        self.app_server = app_server
        self.cpu_threshold = cpu_threshold
        self.min_improvement = min_improvement

    def _run(self, topology, workload, slo):
        experiment, _tbl = build_experiment(
            name="scaleout-strategy", benchmark=self.benchmark,
            platform=self.platform, topologies=[topology],
            workloads=(workload,), write_ratios=(self.write_ratio,),
            scale=self.scale, seed=self.seed, app_server=self.app_server,
            slo=slo,
        )
        return self.runner.run_point(experiment, topology, workload,
                                     self.write_ratio)

    def explore(self, slo, start=Topology(1, 1, 1), workload_start=100,
                workload_step=100, max_workload=3000, max_app=12,
                max_db=3, max_trials=60):
        """Run the exploration loop; returns a :class:`ScaleOutOutcome`."""
        outcome = ScaleOutOutcome()
        topology = start
        workload = workload_start
        last_rt_at_violation = None
        trials = 0
        while workload <= max_workload and trials < max_trials:
            try:
                result = self._run(topology, workload, slo)
            except AllocationError as error:
                outcome.steps.append(ScaleOutStep(
                    topology.label(), workload, "stop",
                    f"cluster exhausted: {error}"))
                break
            trials += 1
            outcome.results.append(result)
            if not slo_violated(result, slo):
                outcome.steps.append(ScaleOutStep(
                    topology.label(), workload, "workload+",
                    "SLO met; increasing workload", result))
                workload += workload_step
                last_rt_at_violation = None
                continue
            # SLO violated: find the bottleneck and scale it.
            bottleneck = detect_bottleneck(result, self.cpu_threshold)
            if bottleneck is None:
                # No tier saturated: errors/latency without a CPU
                # bottleneck; scaling will not help.
                outcome.steps.append(ScaleOutStep(
                    topology.label(), workload, "stop",
                    "SLO violated with no saturated tier", result))
                break
            rt = result.metrics.mean_response_s
            if last_rt_at_violation is not None:
                improvement = (last_rt_at_violation - rt) \
                    / last_rt_at_violation
                if improvement < self.min_improvement:
                    outcome.steps.append(ScaleOutStep(
                        topology.label(), workload, "stop",
                        f"adding a server improved response time only "
                        f"{improvement:.0%}; different bottleneck",
                        result))
                    break
            limit = {"app": max_app, "db": max_db, "web": 3}[bottleneck]
            if topology.count(bottleneck) >= limit:
                outcome.steps.append(ScaleOutStep(
                    topology.label(), workload, "stop",
                    f"{bottleneck} tier at its {limit}-server limit",
                    result))
                break
            grown = topology.scaled(bottleneck)
            outcome.steps.append(ScaleOutStep(
                topology.label(), workload, f"scale {bottleneck}",
                f"{bottleneck} tier saturated "
                f"({result.tier_cpu(bottleneck):.0f}% CPU); growing to "
                f"{grown.label()}", result))
            topology = grown
            last_rt_at_violation = rt
        else:
            outcome.steps.append(ScaleOutStep(
                topology.label(), workload, "stop",
                "reached exploration budget"))
        return outcome
