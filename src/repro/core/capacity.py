"""Capacity planning over observed performance maps (Section V.C).

"Given a concrete set of service level objectives and workload levels,
one can use the numbers in Figure 5 through Figure 8 to choose the
appropriate system resource level."  The planner answers exactly that
question against a :class:`PerformanceMap`, minimizing server count
first (avoiding over-provisioning, the paper's stated concern).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResultsError
from repro.spec.topology import Topology


@dataclass(frozen=True)
class CapacityPlan:
    """The planner's answer for one workload target."""

    users: int
    topology: str
    total_servers: int
    expected_response_s: float
    headroom_users: int        # largest observed workload still in SLO

    #: Plans are feasible by construction; test ``plan.feasible``
    #: before using one — :meth:`CapacityPlanner.plan` returns an
    #: :class:`InfeasiblePlan` when no measured configuration
    #: qualifies.
    feasible = True

    def describe(self):
        return (f"{self.users} users -> {self.topology} "
                f"({self.total_servers} servers, expected RT "
                f"{self.expected_response_s * 1000:.0f} ms, good to "
                f"{self.headroom_users} users)")


@dataclass(frozen=True)
class InfeasiblePlan:
    """The planner's explicit "measure bigger configurations" answer.

    Returned (never raised) when no *measured* configuration serves the
    target within the SLO — the observational stance forbids
    extrapolating one.  Carries the nearest measured topology (the one
    supporting the most users within the SLO) so the operator knows
    where the observations ran out.
    """

    users: int
    reason: str
    nearest_topology: str = None
    nearest_supported_users: int = None

    feasible = False

    def describe(self):
        text = f"{self.users} users -> infeasible: {self.reason}"
        if self.nearest_topology is not None:
            text += (f" (nearest measured: {self.nearest_topology}, "
                     f"good to {self.nearest_supported_users} users)")
        return text


class CapacityPlanner:
    """Chooses minimal observed configurations for workload targets."""

    def __init__(self, performance_map, write_ratio=0.15):
        self.map = performance_map
        self.write_ratio = write_ratio

    def plan(self, users, slo):
        """The smallest observed topology serving *users* within *slo*.

        Ties on server count break toward lower expected response time.
        Returns an :class:`InfeasiblePlan` (check ``plan.feasible``)
        when no observed configuration qualifies — the observational
        answer is "measure bigger configurations", never an
        extrapolation and never a silently violating topology.
        """
        candidates = []
        nearest = None            # (supported users, label)
        for label in self.map.topologies():
            supported = self.map.supported_users(label, slo,
                                                 self.write_ratio)
            if supported is None:
                continue
            if nearest is None or supported > nearest[0]:
                nearest = (supported, label)
            if supported < users:
                continue
            topology = Topology.parse(label)
            response = self.map.response_time(label, users,
                                              self.write_ratio)
            candidates.append(CapacityPlan(
                users=users,
                topology=label,
                total_servers=topology.total_servers(),
                expected_response_s=response,
                headroom_users=supported,
            ))
        if not candidates:
            return InfeasiblePlan(
                users=users,
                reason=f"no observed configuration supports {users} "
                       f"users within the SLO; extend the observation "
                       f"campaign",
                nearest_topology=nearest[1] if nearest else None,
                nearest_supported_users=nearest[0] if nearest else None,
            )
        candidates.sort(key=lambda plan: (plan.total_servers,
                                          plan.expected_response_s))
        return candidates[0]

    def plan_range(self, user_levels, slo):
        """Plans for several target levels.

        Returns ``{users: CapacityPlan-or-InfeasiblePlan}`` — the
        provisioning table an operator would pin next to the paper's
        Figure 5, with every unsatisfiable level carrying its reason
        and the nearest measured topology instead of a silent gap.
        """
        return {users: self.plan(users, slo) for users in user_levels}

    def over_provisioning(self, users, slo, topology_label):
        """How many servers *topology_label* wastes against the minimal
        plan for *users* (the V.B capacity-planning discussion)."""
        minimal = self.plan(users, slo)
        if not minimal.feasible:
            raise ResultsError(minimal.describe())
        chosen = Topology.parse(topology_label)
        return chosen.total_servers() - minimal.total_servers
