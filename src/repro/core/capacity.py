"""Capacity planning over observed performance maps (Section V.C).

"Given a concrete set of service level objectives and workload levels,
one can use the numbers in Figure 5 through Figure 8 to choose the
appropriate system resource level."  The planner answers exactly that
question against a :class:`PerformanceMap`, minimizing server count
first (avoiding over-provisioning, the paper's stated concern).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResultsError
from repro.spec.topology import Topology


@dataclass(frozen=True)
class CapacityPlan:
    """The planner's answer for one workload target."""

    users: int
    topology: str
    total_servers: int
    expected_response_s: float
    headroom_users: int        # largest observed workload still in SLO

    def describe(self):
        return (f"{self.users} users -> {self.topology} "
                f"({self.total_servers} servers, expected RT "
                f"{self.expected_response_s * 1000:.0f} ms, good to "
                f"{self.headroom_users} users)")


class CapacityPlanner:
    """Chooses minimal observed configurations for workload targets."""

    def __init__(self, performance_map, write_ratio=0.15):
        self.map = performance_map
        self.write_ratio = write_ratio

    def plan(self, users, slo):
        """The smallest observed topology serving *users* within *slo*.

        Ties on server count break toward lower expected response time.
        Raises :class:`ResultsError` when no observed configuration
        qualifies — the observational answer is "measure bigger
        configurations", never an extrapolation.
        """
        candidates = []
        for label in self.map.topologies():
            supported = self.map.supported_users(label, slo,
                                                 self.write_ratio)
            if supported is None or supported < users:
                continue
            topology = Topology.parse(label)
            response = self.map.response_time(label, users,
                                              self.write_ratio)
            candidates.append(CapacityPlan(
                users=users,
                topology=label,
                total_servers=topology.total_servers(),
                expected_response_s=response,
                headroom_users=supported,
            ))
        if not candidates:
            raise ResultsError(
                f"no observed configuration supports {users} users within "
                f"the SLO; extend the observation campaign"
            )
        candidates.sort(key=lambda plan: (plan.total_servers,
                                          plan.expected_response_s))
        return candidates[0]

    def plan_range(self, user_levels, slo):
        """Plans for several target levels; skips unsatisfiable ones.

        Returns ``{users: CapacityPlan-or-None}`` — the provisioning
        table an operator would pin next to the paper's Figure 5.
        """
        plans = {}
        for users in user_levels:
            try:
                plans[users] = self.plan(users, slo)
            except ResultsError:
                plans[users] = None
        return plans

    def over_provisioning(self, users, slo, topology_label):
        """How many servers *topology_label* wastes against the minimal
        plan for *users* (the V.B capacity-planning discussion)."""
        minimal = self.plan(users, slo)
        chosen = Topology.parse(topology_label)
        return chosen.total_servers() - minimal.total_servers
