"""Observation-based performance characterization (the paper's goal).

"Measuring and plotting performance of n-tier applications covering a
sufficiently large set of parameters ... can help system analysts make
informed decisions at configuration design time" (Section I).  A
:class:`PerformanceMap` is that plot as a queryable object: built from
observed trials, it answers response-time/throughput/capacity questions
by interpolating *between observations* — never from a model.
"""

from __future__ import annotations

from repro.errors import ResultsError
from repro.experiments.trial import DNF


class PerformanceMap:
    """Queryable map over observed (topology, workload, write-ratio)
    points."""

    def __init__(self, results):
        self._by_point = {}
        for result in results:
            self._by_point[result.key()] = result
        if not self._by_point:
            raise ResultsError("performance map needs at least one trial")

    @classmethod
    def from_database(cls, database, experiment_name=None, benchmark=None):
        return cls(database.query(experiment_name=experiment_name,
                                  benchmark=benchmark))

    # -- inventory ----------------------------------------------------------

    def topologies(self):
        return sorted({t for t, _w, _r in self._by_point})

    def workloads(self, topology, write_ratio=None):
        return sorted({w for t, w, r in self._by_point
                       if t == topology
                       and (write_ratio is None
                            or abs(r - write_ratio) < 1e-9)})

    def write_ratios(self, topology):
        return sorted({r for t, _w, r in self._by_point if t == topology})

    def point(self, topology, workload, write_ratio):
        key = (topology, workload, round(write_ratio, 6))
        try:
            return self._by_point[key]
        except KeyError:
            raise ResultsError(f"no observation at {key}")

    # -- interpolating queries -------------------------------------------------

    def response_time(self, topology, workload, write_ratio=0.15):
        """Mean response time (s) at *workload*, interpolated linearly
        between the two nearest observed workloads."""
        return self._interpolate(topology, workload, write_ratio,
                                 lambda r: r.metrics.mean_response_s)

    def throughput(self, topology, workload, write_ratio=0.15):
        return self._interpolate(topology, workload, write_ratio,
                                 lambda r: r.metrics.throughput)

    def _interpolate(self, topology, workload, write_ratio, extract):
        ratio = round(write_ratio, 6)
        points = sorted(
            (w, extract(result))
            for (t, w, r), result in self._by_point.items()
            if t == topology and abs(r - ratio) < 1e-9
        )
        if not points:
            raise ResultsError(
                f"no observations for {topology} at write ratio "
                f"{write_ratio}"
            )
        if workload <= points[0][0]:
            return points[0][1]
        if workload >= points[-1][0]:
            return points[-1][1]
        for (w0, v0), (w1, v1) in zip(points, points[1:]):
            if w0 <= workload <= w1:
                if w1 == w0:
                    return v0
                fraction = (workload - w0) / (w1 - w0)
                return v0 + fraction * (v1 - v0)
        raise ResultsError("interpolation fell through")   # unreachable

    # -- capacity queries ---------------------------------------------------------

    def supported_users(self, topology, slo, write_ratio=0.15):
        """Largest observed workload meeting *slo* on *topology*, or None.

        DNF trials never qualify; the answer is conservative in that it
        only speaks to measured workloads (the observational stance).
        """
        ratio = round(write_ratio, 6)
        good = [
            result.workload
            for (t, _w, r), result in self._by_point.items()
            if t == topology and abs(r - ratio) < 1e-9
            and result.status != DNF
            and result.metrics.mean_response_s <= slo.response_time
            and result.metrics.error_ratio <= slo.error_ratio
        ]
        return max(good) if good else None

    def knee(self, topology, write_ratio=0.15, factor=3.0):
        """The observed saturation knee: the first workload whose RT
        exceeds *factor* x the lightest-load RT."""
        workloads = self.workloads(topology, write_ratio)
        if len(workloads) < 2:
            raise ResultsError(
                f"need at least two workloads to find a knee on {topology}"
            )
        base = self.response_time(topology, workloads[0], write_ratio)
        if base <= 0:
            base = 1e-6
        for workload in workloads[1:]:
            if self.response_time(topology, workload, write_ratio) \
                    > factor * base:
                return workload
        return None
