"""Core API: campaigns, characterization, capacity planning, scale-out."""

from repro.core.bottleneck import (
    SATURATION_CPU_PERCENT,
    detect_bottleneck,
    diagnose,
    slo_violated,
    tier_utilizations,
)
from repro.core.campaign import CampaignReport, ObservationCampaign
from repro.core.capacity import CapacityPlan, CapacityPlanner, InfeasiblePlan
from repro.core.characterization import PerformanceMap
from repro.core.heuristics import (
    ScaleOutOutcome,
    ScaleOutStep,
    ScaleOutStrategy,
)

__all__ = [
    "SATURATION_CPU_PERCENT",
    "detect_bottleneck",
    "diagnose",
    "slo_violated",
    "tier_utilizations",
    "CampaignReport",
    "ObservationCampaign",
    "CapacityPlan",
    "CapacityPlanner",
    "InfeasiblePlan",
    "PerformanceMap",
    "ScaleOutOutcome",
    "ScaleOutStep",
    "ScaleOutStrategy",
]
