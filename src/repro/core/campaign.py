"""Observation campaigns: the package's top-level façade.

An :class:`ObservationCampaign` owns the whole pipeline for one TBL
document: resource MOF -> validation -> per-point generation ->
deployment -> trial -> results database.  It is the programmatic form of
the paper's workflow ("we modify Mulini's input specification once, and
the necessary modifications are propagated automatically").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.characterization import PerformanceMap
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentRunner
from repro.results.database import ResultsDatabase
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse as parse_tbl
from repro.spec.validation import validate
from repro.vcluster import VirtualCluster


@dataclass
class CampaignReport:
    """What one campaign run produced."""

    trials: int = 0
    completed: int = 0
    dnf: int = 0
    experiments: list = field(default_factory=list)
    warnings: list = field(default_factory=list)

    def summary(self):
        return (f"{self.trials} trials ({self.completed} completed, "
                f"{self.dnf} DNF) across {len(self.experiments)} "
                f"experiments")


class ObservationCampaign:
    """End-to-end campaign bound to one TBL spec and one cluster."""

    def __init__(self, tbl_text, mof_text=None, database=None,
                 node_count=36, tbl_source="<campaign>"):
        self.spec = parse_tbl(tbl_text, source=tbl_source)
        if mof_text is None:
            mof_text = render_resource_mof(
                self.spec.benchmark, self.spec.platform,
                app_server=self.spec.app_server,
            )
        self.resource_model = load_resource_model(mof_text)
        self.validation_warnings = validate(self.resource_model, self.spec)
        needed = max(e.max_machine_count() for e in self.spec.experiments)
        if needed > node_count:
            raise ExperimentError(
                f"spec needs up to {needed} machines but the campaign "
                f"cluster has only {node_count} nodes"
            )
        self.cluster = VirtualCluster(self.spec.platform,
                                      node_count=node_count)
        self.runner = ExperimentRunner(self.cluster, self.resource_model)
        self.database = database if database is not None \
            else ResultsDatabase()

    def run(self, experiment_names=None, on_result=None, replace=True):
        """Run the spec's experiments, storing every trial.

        *experiment_names* restricts to a subset; *on_result* is a
        progress callback receiving each :class:`TrialResult`.
        """
        report = CampaignReport(warnings=list(self.validation_warnings))
        experiments = self.spec.experiments
        if experiment_names is not None:
            experiments = [self.spec.experiment(name)
                           for name in experiment_names]
        if not experiments:
            raise ExperimentError("campaign selects no experiments")
        for experiment in experiments:
            report.experiments.append(experiment.name)

            def store(result):
                self.database.insert(result, replace=replace)
                report.trials += 1
                if result.completed:
                    report.completed += 1
                else:
                    report.dnf += 1
                if on_result is not None:
                    on_result(result)

            self.runner.run_experiment(experiment, on_result=store)
        return report

    def performance_map(self, experiment_name=None):
        """A :class:`PerformanceMap` over this campaign's observations."""
        return PerformanceMap.from_database(
            self.database, experiment_name=experiment_name,
        )
