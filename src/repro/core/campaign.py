"""Observation campaigns: the package's top-level façade.

An :class:`ObservationCampaign` owns the whole pipeline for one TBL
document: resource MOF -> validation -> per-point generation ->
deployment -> trial -> results database.  It is the programmatic form of
the paper's workflow ("we modify Mulini's input specification once, and
the necessary modifications are propagated automatically").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.characterization import PerformanceMap
from repro.deprecation import absorb_positional
from repro.errors import ExperimentError
from repro.obs.tracer import as_tracer
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scheduler import TrialScheduler, enumerate_tasks
from repro.results.database import ResultsDatabase
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse as parse_tbl
from repro.spec.validation import validate
from repro.vcluster import VirtualCluster


@dataclass
class CampaignReport:
    """What one campaign run produced."""

    trials: int = 0
    completed: int = 0
    dnf: int = 0
    experiments: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    #: experiment name -> number of trials stored for it
    by_experiment: dict = field(default_factory=dict)
    #: the ResultsDatabase the trials were stored in
    database: object = None

    def summary(self):
        return (f"{self.trials} trials ({self.completed} completed, "
                f"{self.dnf} DNF) across {len(self.experiments)} "
                f"experiments")


class ObservationCampaign:
    """End-to-end campaign bound to one TBL spec and one cluster.

    Everything after *tbl_text* is keyword-only (the legacy positional
    form is deprecated); a *tracer* makes every trial of the campaign
    record its lifecycle span tree into the database's ``spans`` table.
    """

    def __init__(self, tbl_text, *args, mof_text=None, database=None,
                 node_count=36, tbl_source="<campaign>", tracer=None):
        merged = absorb_positional(
            "ObservationCampaign",
            ("mof_text", "database", "node_count", "tbl_source"), args,
            {"mof_text": mof_text, "database": database,
             "node_count": node_count, "tbl_source": tbl_source})
        mof_text = merged["mof_text"]
        database = merged["database"]
        node_count = merged["node_count"]
        tbl_source = merged["tbl_source"]
        self.tracer = as_tracer(tracer)
        self.spec = parse_tbl(tbl_text, source=tbl_source)
        if mof_text is None:
            mof_text = render_resource_mof(
                self.spec.benchmark, self.spec.platform,
                app_server=self.spec.app_server,
            )
        self.resource_model = load_resource_model(mof_text)
        self.validation_warnings = validate(self.resource_model, self.spec)
        needed = max(e.max_machine_count() for e in self.spec.experiments)
        if needed > node_count:
            raise ExperimentError(
                f"spec needs up to {needed} machines but the campaign "
                f"cluster has only {node_count} nodes"
            )
        self.cluster = VirtualCluster(self.spec.platform,
                                      node_count=node_count)
        self.runner = ExperimentRunner(cluster=self.cluster,
                                       resource_model=self.resource_model,
                                       tracer=self.tracer)
        self.database = database if database is not None \
            else ResultsDatabase()

    def run(self, experiment_names=None, *, on_result=None, replace=True,
            jobs=1, backend=None, on_progress=None):
        """Run the spec's experiments, storing every trial.

        *experiment_names* restricts to a subset; *on_result* is a
        progress callback receiving each :class:`TrialResult` (its
        ``experiment_name`` identifies the producing experiment, since
        with ``jobs>1`` trials from different experiments interleave on
        the pool); *on_progress* receives human-readable one-liners,
        each tagged with the producing experiment's name.

        ``jobs=N`` executes the whole campaign's trial tasks — across
        all selected experiments — on a worker pool; results are stored
        in enumeration order, so the resulting database rows match a
        ``jobs=1`` run exactly.
        """
        report = CampaignReport(warnings=list(self.validation_warnings),
                                database=self.database)
        experiments = self.spec.experiments
        if experiment_names is not None:
            experiments = [self.spec.experiment(name)
                           for name in experiment_names]
        if not experiments:
            raise ExperimentError("campaign selects no experiments")
        tasks = []
        for experiment in experiments:
            report.experiments.append(experiment.name)
            tasks.extend(enumerate_tasks(experiment,
                                         start_index=len(tasks)))
        total = len(tasks)
        # One store closure shared by every experiment; counts are
        # aggregated under a lock because scheduler configurations may
        # invoke it from worker threads.
        lock = threading.Lock()

        def store(result):
            with lock:
                self.database.insert(result, replace=replace)
                report.trials += 1
                report.by_experiment[result.experiment_name] = \
                    report.by_experiment.get(result.experiment_name, 0) + 1
                if result.completed:
                    report.completed += 1
                else:
                    report.dnf += 1
                stored = report.trials
            if on_result is not None:
                on_result(result)
            if on_progress is not None:
                on_progress(
                    f"[{result.experiment_name}] trial {stored}/{total}: "
                    f"{result.topology_label} u={result.workload} "
                    f"wr={result.write_ratio:.0%} -> {result.status}"
                )

        if jobs == 1:
            for task in tasks:
                store(self.runner.run_task(task))
        else:
            scheduler = TrialScheduler(self._worker_runner, jobs=jobs,
                                       backend=backend,
                                       tracer=self.tracer)
            scheduler.run(tasks, on_result=store)
        return report

    def _worker_runner(self):
        """A fresh runner on a fresh cluster for one scheduler worker."""
        return self.runner.clone()

    def performance_map(self, experiment_name=None):
        """A :class:`PerformanceMap` over this campaign's observations."""
        return PerformanceMap.from_database(
            self.database, experiment_name=experiment_name,
        )
