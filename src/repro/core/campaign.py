"""Observation campaigns: the package's top-level façade.

An :class:`ObservationCampaign` owns the whole pipeline for one TBL
document: resource MOF -> validation -> per-point generation ->
deployment -> trial -> results database.  It is the programmatic form of
the paper's workflow ("we modify Mulini's input specification once, and
the necessary modifications are propagated automatically").

A campaign is resilient by construction: give it a
:class:`~repro.faults.FaultPlan` and a :class:`~repro.faults.RetryPolicy`
and transient failures are retried (and recorded) instead of aborting
the sweep; give :meth:`run` ``resume=True`` and trials already in the
database are skipped, so an interrupted campaign finishes from its
checkpoint — the database itself — running exactly the missing trials.

Since the campaign service plane landed, a campaign is explicitly two
halves:

- :class:`CampaignState` — the *state*: parsed spec, resource model,
  validation warnings, fault/retry identity, the task frontier and the
  ``campaign_meta`` checkpoint.  A controller can hold hundreds of
  these for queued campaigns; none of them owns a cluster or a worker.
- :class:`ObservationCampaign` — the *execution*: a cluster, a runner,
  and the run loops.  Execution may be delegated wholesale to an
  *executor* (anything with ``run_tasks(tasks, on_result)`` returning
  results in task order) — the seam the ``repro serve`` daemon uses to
  run many campaigns' trials on one shared worker fleet.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from dataclasses import dataclass, field

import time

from repro import hotpath, provenance
from repro.core.characterization import PerformanceMap
from repro.deprecation import absorb_positional
from repro.errors import ExperimentError
from repro.faults.plan import FaultPlan
from repro.faults.retry import QUARANTINED, RetryPolicy, as_policy
from repro.obs.tracer import as_tracer
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scheduler import (
    TrialScheduler,
    calc_parallel_jobs,
    enumerate_tasks,
)
from repro.results.database import ResultsDatabase
from repro.sim import ANALYTIC, AUTO, DES, check_fidelity
from repro.sim.analytic import require_analytic_support
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import parse as parse_tbl
from repro.spec.validation import validate
from repro.vcluster import VirtualCluster
from repro.workloads.arrivals import analytic_supported

#: Trials buffered before the write-behind store flushes them to the
#: database in one transaction (one commit, one fsync when file-backed).
#: Results always flush in submission order — the scheduler already
#: delivers them that way — so jobs=N rows stay byte-identical to a
#: jobs=1 run; the campaign flushes the tail on every exit path, so an
#: interrupted run still checkpoints everything it was handed.
INGEST_BATCH = 16

#: campaign_meta keys a campaign persists for `repro resume`.
META_TBL = "tbl_text"
META_MOF = "mof_text"
META_NODE_COUNT = "node_count"
META_FAULT_PLAN = "fault_plan"
META_RETRY = "retry_policy"
#: ... plus the planner plane's identity, so `repro resume` knows an
#: adaptive exploration (policy, budget, target experiment) is what it
#: is resuming, and the trace report can show cache effectiveness.
META_PLANNER_POLICY = "planner_policy"
META_PLANNER_BUDGET = "planner_budget"
META_PLANNER_EXPERIMENT = "planner_experiment"
META_CACHE_STATS = "hotpath_stats"
#: ... and the fidelity tier the campaign ran at, so `repro resume`
#: re-runs an analytic or tiered campaign at the tier it started with.
META_FIDELITY = "fidelity"


@dataclass
class CampaignReport:
    """What one campaign run produced."""

    trials: int = 0
    completed: int = 0
    dnf: int = 0
    experiments: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    #: experiment name -> number of trials stored for it
    by_experiment: dict = field(default_factory=dict)
    #: the ResultsDatabase the trials were stored in
    database: object = None
    #: trials skipped by resume (already in the database)
    skipped: int = 0
    #: trials that needed more than one attempt but completed
    retried: int = 0
    #: failed attempts recorded across the whole campaign
    failed_attempts: int = 0
    #: host name -> quarantine reason, aggregated across workers
    quarantined: dict = field(default_factory=dict)
    #: planner plane (run_adaptive only): policy name, rounds walked,
    #: points pruned as inferable, and the full AdaptiveOutcome
    policy: str = None
    rounds: int = 0
    pruned: int = 0
    outcome: object = None
    #: hot-path cache hit/miss counters captured at campaign end
    #: (``repro.hotpath.stats()`` shape: name -> entries/hits/misses;
    #: a daemon-hosted campaign records its own tenant's attribution)
    cache_stats: dict = field(default_factory=dict)

    def cache_totals(self):
        """Aggregate (hits, misses) across every hot-path cache."""
        hits = sum(c.get("hits", 0) for c in self.cache_stats.values())
        misses = sum(c.get("misses", 0) for c in self.cache_stats.values())
        return hits, misses

    def summary(self):
        text = (f"{self.trials} trials ({self.completed} completed, "
                f"{self.dnf} DNF) across {len(self.experiments)} "
                f"experiments")
        extras = []
        if self.skipped:
            extras.append(f"{self.skipped} resumed-skipped")
        if self.retried:
            extras.append(f"{self.retried} recovered by retry")
        if self.quarantined:
            extras.append(
                f"{len(self.quarantined)} host(s) quarantined"
            )
        if self.policy:
            extras.append(
                f"policy {self.policy}: {self.rounds} round(s), "
                f"{self.pruned} point(s) pruned"
            )
        hits, misses = self.cache_totals()
        if hits or misses:
            extras.append(f"caches: {hits} hit / {misses} miss")
        if extras:
            text += "; " + ", ".join(extras)
        return text


class _AnalyticExploration:
    """Policy adapter pinning every proposal to the analytic tier.

    ``run_adaptive(fidelity="analytic")`` explores with whatever policy
    the caller chose, but every trial (and every logged decision) runs
    on the fluid fast path — the no-confirmation mode for when the
    caller wants the millisecond sweep and will validate elsewhere.
    """

    def __init__(self, policy):
        self._policy = policy

    @property
    def name(self):
        return self._policy.name

    def propose(self, frontier):
        return [dataclasses.replace(decision, fidelity=ANALYTIC)
                for decision in self._policy.propose(frontier)]


class CampaignState:
    """The separable state of one campaign — no cluster, no workers.

    Everything a controller must hold for a queued, running or
    interrupted campaign: the parsed spec and resource model, the
    validation warnings, the fault/retry identity, and the operations
    over them — experiment selection, task enumeration, resume
    filtering, and the ``campaign_meta`` checkpoint.  Execution state
    (worker leases, clusters, runners) deliberately lives elsewhere;
    see :class:`ObservationCampaign`.
    """

    def __init__(self, tbl_text, *, mof_text=None, node_count=36,
                 tbl_source="<campaign>", faults=None, retry=None):
        self.tbl_text = tbl_text
        self.spec = parse_tbl(tbl_text, source=tbl_source)
        if mof_text is None:
            mof_text = render_resource_mof(
                self.spec.benchmark, self.spec.platform,
                app_server=self.spec.app_server,
            )
        self.mof_text = mof_text
        self.node_count = node_count
        self.fault_plan = faults
        self.retry_policy = as_policy(retry) if retry is not None else None
        self.resource_model = load_resource_model(mof_text)
        self.validation_warnings = validate(self.resource_model, self.spec)
        needed = max(e.max_machine_count() for e in self.spec.experiments)
        if needed > node_count:
            raise ExperimentError(
                f"spec needs up to {needed} machines but the campaign "
                f"cluster has only {node_count} nodes"
            )

    def select_experiments(self, experiment_names=None):
        """The experiments a fixed-grid run covers (all by default)."""
        experiments = self.spec.experiments
        if experiment_names is not None:
            experiments = [self.spec.experiment(name)
                           for name in experiment_names]
        if not experiments:
            raise ExperimentError("campaign selects no experiments")
        return experiments

    def select_experiment(self, name=None):
        """The one experiment an adaptive exploration targets."""
        if name is not None:
            return self.spec.experiment(name)
        if len(self.spec.experiments) == 1:
            return self.spec.experiments[0]
        names = ", ".join(e.name for e in self.spec.experiments)
        raise ExperimentError(
            f"spec declares {len(self.spec.experiments)} experiments "
            f"({names}); an adaptive exploration targets one — pass "
            f"experiment_name"
        )

    def enumerate_plan(self, experiments, fidelity=DES):
        """Every trial of *experiments* as TrialTasks, in sweep order."""
        tasks = []
        for experiment in experiments:
            tasks.extend(enumerate_tasks(experiment,
                                         start_index=len(tasks),
                                         fidelity=fidelity))
        return tasks

    def pending(self, tasks, database):
        """``(remaining, skipped)`` after resume-filtering *tasks*
        against what *database* already stores."""
        done = set(database.trial_keys())
        remaining = [t for t in tasks if t.key() not in done]
        return remaining, len(tasks) - len(remaining)

    def record_meta(self, database):
        """Persist the campaign's identity so ``repro resume <db>`` (or
        a daemon restart) can rebuild it from the database alone."""
        database.set_meta(META_TBL, self.tbl_text)
        database.set_meta(META_MOF, self.mof_text)
        database.set_meta(META_NODE_COUNT, self.node_count)
        if isinstance(self.fault_plan, FaultPlan):
            database.set_meta(META_FAULT_PLAN, self.fault_plan.to_json())
        if isinstance(self.retry_policy, RetryPolicy):
            database.set_meta(META_RETRY,
                              json.dumps(self.retry_policy.to_dict(),
                                         sort_keys=True))

    @classmethod
    def from_database(cls, database):
        """Rebuild campaign state from a database's persisted meta."""
        tbl_text = database.get_meta(META_TBL)
        if tbl_text is None:
            raise ExperimentError(
                "database carries no campaign meta; it predates the "
                "fault plane or was not produced by run_campaign"
            )
        plan_json = database.get_meta(META_FAULT_PLAN)
        retry_json = database.get_meta(META_RETRY)
        return cls(
            tbl_text,
            mof_text=database.get_meta(META_MOF),
            node_count=int(database.get_meta(META_NODE_COUNT, 36)),
            tbl_source="<resume>",
            faults=FaultPlan.from_json(plan_json) if plan_json else None,
            retry=RetryPolicy.from_dict(json.loads(retry_json))
            if retry_json else None,
        )


class ObservationCampaign:
    """End-to-end campaign bound to one TBL spec and one cluster.

    Everything after *tbl_text* is keyword-only (the legacy positional
    form is deprecated); a *tracer* makes every trial of the campaign
    record its lifecycle span tree into the database's ``spans`` table.

    *faults* arms a :class:`~repro.faults.FaultPlan` on every runner of
    the campaign (the chaos mode); *retry* sets the
    :class:`~repro.faults.RetryPolicy` governing failed attempts — an
    int is shorthand for "this many attempts".  Without *retry*, any
    trial failure propagates exactly as before the fault plane existed.

    *tenant* names the campaign on a shared cache plane (the daemon
    sets it to the campaign id): hot-path statistics recorded at the
    end of a run are then the campaign's own attribution, not the
    plane-wide totals.
    """

    def __init__(self, tbl_text, *args, mof_text=None, database=None,
                 node_count=36, tbl_source="<campaign>", tracer=None,
                 faults=None, retry=None, state=None, tenant=None):
        merged = absorb_positional(
            "ObservationCampaign",
            ("mof_text", "database", "node_count", "tbl_source"), args,
            {"mof_text": mof_text, "database": database,
             "node_count": node_count, "tbl_source": tbl_source})
        database = merged["database"]
        self.tracer = as_tracer(tracer)
        self.tenant = tenant
        if state is None:
            state = CampaignState(tbl_text,
                                  mof_text=merged["mof_text"],
                                  node_count=merged["node_count"],
                                  tbl_source=merged["tbl_source"],
                                  faults=faults, retry=retry)
        self.state = state
        self.cluster = VirtualCluster(self.spec.platform,
                                      node_count=self.node_count)
        self.runner = ExperimentRunner(cluster=self.cluster,
                                       resource_model=self.resource_model,
                                       tracer=self.tracer,
                                       faults=self.fault_plan,
                                       retry=self.retry_policy,
                                       tenant=tenant)
        self.database = database if database is not None \
            else ResultsDatabase()

    # The state half is the source of truth for campaign identity;
    # these properties keep the historical attribute surface intact.

    @property
    def tbl_text(self):
        return self.state.tbl_text

    @property
    def mof_text(self):
        return self.state.mof_text

    @property
    def spec(self):
        return self.state.spec

    @property
    def node_count(self):
        return self.state.node_count

    @property
    def fault_plan(self):
        return self.state.fault_plan

    @property
    def retry_policy(self):
        return self.state.retry_policy

    @property
    def resource_model(self):
        return self.state.resource_model

    @property
    def validation_warnings(self):
        return self.state.validation_warnings

    def run(self, experiment_names=None, *, on_result=None, replace=True,
            jobs=1, backend=None, on_progress=None, resume=False,
            executor=None, fidelity=DES):
        """Run the spec's experiments, storing every trial.

        *experiment_names* restricts to a subset; *on_result* is a
        progress callback receiving each :class:`TrialResult` (its
        ``experiment_name`` identifies the producing experiment, since
        with ``jobs>1`` trials from different experiments interleave on
        the pool); *on_progress* receives human-readable one-liners,
        each tagged with the producing experiment's name.

        ``jobs=N`` executes the whole campaign's trial tasks — across
        all selected experiments — on a worker pool; results are stored
        in enumeration order, so the resulting database rows match a
        ``jobs=1`` run exactly.  An *executor* overrides the worker
        plane entirely: anything with ``run_tasks(tasks, on_result)``
        delivering results in task order (the daemon passes a fleet
        lease here, so many campaigns share one pool).

        ``resume=True`` skips every task whose trial key is already in
        the database, so an interrupted campaign completes exactly its
        missing trials — no duplicate rows, no re-runs.  (The skipped
        count lands in the report.)  With resume the stored rows keep
        their original positions; only the remainder is executed.
        """
        check_fidelity(fidelity)
        if fidelity == AUTO:
            raise ExperimentError(
                "fidelity 'auto' is an adaptive-exploration mode; a "
                "fixed-grid run takes 'des' or 'analytic' — use "
                "run_adaptive (repro explore) for tiered exploration")
        started = time.perf_counter()
        report = CampaignReport(warnings=list(self.validation_warnings),
                                database=self.database)
        experiments = self.state.select_experiments(experiment_names)
        if fidelity == ANALYTIC:
            # Fail before any trial runs: a time-varying arrival makes
            # the whole grid DES-only, and the typed refusal belongs to
            # the campaign, not to whichever task hits it first.
            for experiment in experiments:
                require_analytic_support(
                    getattr(experiment, "arrival", None))
        report.experiments.extend(e.name for e in experiments)
        tasks = self.state.enumerate_plan(experiments, fidelity=fidelity)
        jobs = self._resolve_jobs(jobs, trial_count=len(tasks))
        self._preflight(jobs)
        if resume:
            tasks, report.skipped = self.state.pending(tasks,
                                                       self.database)
            self.tracer.count("campaign.trials_skipped", report.skipped)
        self.state.record_meta(self.database)
        self.database.set_meta(META_FIDELITY, fidelity)
        store, flush_tail = self._ingest(report, replace=replace,
                                         on_result=on_result,
                                         on_progress=on_progress,
                                         total=len(tasks))
        try:
            if executor is not None:
                executor.run_tasks(tasks, store)
            elif jobs == 1:
                for task in tasks:
                    store(self.runner.run_task(task))
            else:
                scheduler = TrialScheduler(self._worker_runner, jobs=jobs,
                                           backend=backend,
                                           tracer=self.tracer)
                scheduler.run(tasks, on_result=store)
        finally:
            # The tail batch — and, on an aborted campaign, everything
            # delivered so far, so resume finds every stored trial.
            flush_tail()
        self._record_cache_stats(report)
        self._record_run_card(report, jobs=jobs, fidelity=fidelity,
                              wall_s=time.perf_counter() - started)
        return report

    def _ingest(self, report, *, replace, on_result, on_progress, total):
        """The write-behind store shared by :meth:`run` and
        :meth:`run_adaptive`: a ``store(result)`` closure plus the
        ``flush_tail()`` the caller must invoke on every exit path.

        Counts are aggregated under a lock because scheduler
        configurations may invoke ``store`` from worker threads.
        Results buffer in arrival (= submission) order and flush to the
        database in single-transaction batches of :data:`INGEST_BATCH`.
        *total* may be None (adaptive campaigns don't know theirs up
        front); progress lines then show the running count alone.
        """
        lock = threading.Lock()
        pending = []

        def flush_pending():
            # Caller holds `lock`.
            if pending:
                self.database.insert_many(pending, replace=replace)
                del pending[:]

        def flush_tail():
            with lock:
                flush_pending()

        def store(result):
            with lock:
                pending.append(result)
                if len(pending) >= INGEST_BATCH:
                    flush_pending()
                report.trials += 1
                report.by_experiment[result.experiment_name] = \
                    report.by_experiment.get(result.experiment_name, 0) + 1
                if result.completed:
                    report.completed += 1
                else:
                    report.dnf += 1
                if result.retried and result.completed:
                    report.retried += 1
                for failure in result.failures:
                    if failure.resolution == QUARANTINED:
                        report.quarantined[failure.host] = failure.cause
                    else:
                        report.failed_attempts += 1
                stored = report.trials
            if on_result is not None:
                on_result(result)
            if on_progress is not None:
                progress = f"trial {stored}/{total}" if total is not None \
                    else f"trial {stored}"
                on_progress(
                    f"[{result.experiment_name}] {progress}: "
                    f"{result.topology_label} u={result.workload} "
                    f"wr={result.write_ratio:.0%} -> {result.status}"
                    + (f" ({result.attempts} attempts)"
                       if result.retried else "")
                )

        return store, flush_tail

    def _resolve_jobs(self, jobs, trial_count=None):
        """``"auto"`` -> a topology-aware worker count; ints pass
        through.  Resolution happens here (not in the CLI) so every
        entry point — api, daemon, service submits — gets the same
        sizing."""
        if jobs == "auto":
            return calc_parallel_jobs(node_count=self.node_count,
                                      trial_count=trial_count)
        return jobs

    def _preflight(self, jobs):
        """Fail fast on misconfigurations no trial should pay for —
        most notably a mistyped ``REPRO_SHELLVM``, which the engine
        selector would otherwise silently resolve to the compiled
        default."""
        problems = provenance.preflight(
            self.state, jobs=jobs, database_path=self.database.path)
        if problems:
            raise ExperimentError(
                "campaign preflight failed: " + "; ".join(problems))

    def _record_run_card(self, report, *, jobs, fidelity, wall_s):
        """Persist this run's provenance record.

        The card lands in the database's ``run_cards`` table and — for
        file-backed databases — beside the file as
        ``<db>.run_card.json``, making every campaign database a
        self-describing reproducibility bundle: campaign_meta holds the
        inputs to re-run, the card certifies what one run produced.
        """
        from repro.shellvm.interpreter import engine_mode

        card = provenance.build_run_card(
            report=report, state=self.state, engine=engine_mode(),
            jobs=jobs, fidelity=fidelity, wall_s=wall_s)
        self.database.insert_run_card(card)
        provenance.export_run_card(card, self.database.path)

    def _record_cache_stats(self, report):
        """Capture hot-path cache counters into the report and the
        database meta, so cache effectiveness is observable per run.
        A tenant-scoped campaign records its own attribution — on a
        shared daemon the plane-wide totals belong to no one campaign.
        """
        report.cache_stats = hotpath.stats(tenant=self.tenant)
        self.database.set_meta(
            META_CACHE_STATS,
            json.dumps(report.cache_stats, sort_keys=True))

    def run_adaptive(self, policy="knee", *, experiment_name=None,
                     budget=None, jobs=1, backend=None, on_result=None,
                     on_progress=None, replace=True, resume=False,
                     executor=None, fidelity=DES):
        """Run one experiment family as a closed exploration loop.

        Instead of the fixed grid :meth:`run` executes, a planner
        *policy* (a name from ``repro.planner.POLICY_NAMES`` or a
        :class:`~repro.planner.Policy` instance) proposes trial batches
        round by round, observing each round's results before choosing
        the next — the paper's "observations steer the next
        configuration" methodology.  *budget* caps executed trials.

        Every decision lands in the ``planner_decisions`` table and the
        policy/budget/experiment identity in ``campaign_meta``, so
        ``repro resume`` on a killed exploration replays the loop: the
        decisions are pure functions of recorded observations, trials
        already stored are fed back from the database instead of
        re-running (``resume=True``), and the finished database is
        byte-identical to an uninterrupted run's at any worker count.

        An *executor* (see :meth:`run`) replaces the private scheduler
        session: each planner round's batch runs on it instead.
        """
        from repro.planner import AdaptivePlanner, BudgetedExplorer, \
            make_policy

        check_fidelity(fidelity)
        started = time.perf_counter()
        jobs = self._resolve_jobs(jobs)
        self._preflight(jobs)
        report = CampaignReport(warnings=list(self.validation_warnings),
                                database=self.database)
        experiment = self.state.select_experiment(experiment_name)
        report.experiments.append(experiment.name)
        if fidelity == AUTO and not analytic_supported(
                getattr(experiment, "arrival", None)):
            # Time-varying arrivals are DES-only: the tiered
            # composition's analytic exploration pass cannot model
            # them, so "auto" degrades to a pure-DES exploration
            # rather than crashing mid-campaign.
            if isinstance(policy, str):
                fidelity = DES
                if on_progress is not None:
                    on_progress(
                        f"[{experiment.name}] arrival "
                        f"{experiment.arrival.kind!r} is DES-only; "
                        f"fidelity auto degrades to des")
            else:
                require_analytic_support(experiment.arrival)
        if fidelity == AUTO and isinstance(policy, str):
            # "auto" is the tiered composition: explore analytically,
            # confirm at the knee with DES.
            if policy not in ("knee", "tiered"):
                raise ExperimentError(
                    f"fidelity 'auto' explores with the tiered knee "
                    f"policy; policy {policy!r} does not support it — "
                    f"pass fidelity 'des' or 'analytic'")
            policy = "tiered"
        if isinstance(policy, str):
            policy_obj = make_policy(policy, budget=budget)
        else:
            policy_obj = policy if budget is None \
                else BudgetedExplorer(policy, budget)
        if fidelity == AUTO and policy_obj.name != "tiered":
            raise ExperimentError(
                f"fidelity 'auto' needs a tiered policy; "
                f"{policy_obj.name!r} proposes a single tier")
        if fidelity == ANALYTIC:
            policy_obj = _AnalyticExploration(policy_obj)
        self.state.record_meta(self.database)
        db = self.database
        db.set_meta(META_PLANNER_POLICY, policy_obj.name)
        db.set_meta(META_PLANNER_EXPERIMENT, experiment.name)
        db.set_meta(META_FIDELITY, fidelity)
        if budget is not None:
            db.set_meta(META_PLANNER_BUDGET, budget)
        # The loop replays from scratch on resume (decisions are pure
        # functions of observations), so the log is rewritten wholesale
        # — a resumed exploration's log matches an uninterrupted one.
        db.clear_planner_decisions()
        done = {}
        if resume:
            for result in db.query(experiment_name=experiment.name):
                done[(experiment.name, result.topology_label,
                      result.workload, result.write_ratio,
                      result.seed, result.fidelity,
                      result.scenario)] = result
        store, flush_tail = self._ingest(report, replace=replace,
                                         on_result=on_result,
                                         on_progress=on_progress,
                                         total=None)
        session = None
        if executor is None and jobs != 1:
            scheduler = TrialScheduler(self._worker_runner, jobs=jobs,
                                       backend=backend,
                                       tracer=self.tracer)
            session = scheduler.session()

        def execute(tasks):
            missing = [task for task in tasks if task.key() not in done]
            skipped = len(tasks) - len(missing)
            if skipped:
                report.skipped += skipped
                self.tracer.count("campaign.trials_skipped", skipped)
            delivered = {}
            if missing:
                if executor is not None:
                    for task, result in zip(
                            missing,
                            executor.run_tasks(missing, store)):
                        delivered[task.key()] = result
                elif session is None:
                    for task in missing:
                        result = self.runner.run_task(task)
                        delivered[task.key()] = result
                        store(result)
                else:
                    for task, result in zip(
                            missing,
                            session.run_batch(missing, on_result=store)):
                        delivered[task.key()] = result
            return [done[task.key()] if task.key() in done
                    else delivered[task.key()] for task in tasks]

        def record_round(round_no, decisions):
            db.insert_decisions(
                (round_no, seq, policy_obj.name, experiment.name,
                 decision.action, decision.topology, decision.workload,
                 decision.write_ratio, decision.reason,
                 decision.fidelity)
                for seq, decision in enumerate(decisions))
            if on_progress is not None:
                measures = sum(1 for d in decisions
                               if d.action == "measure")
                on_progress(
                    f"[{experiment.name}] planner round {round_no}: "
                    f"{measures} point(s) proposed, "
                    f"{len(decisions) - measures} other decision(s)")

        planner = AdaptivePlanner(experiment, policy_obj,
                                  tracer=self.tracer)
        try:
            outcome = planner.run(execute, on_round=record_round)
        finally:
            flush_tail()
            if session is not None:
                session.close()
        report.policy = policy_obj.name
        report.rounds = outcome.rounds
        report.pruned = outcome.pruned_points
        report.outcome = outcome
        self._record_cache_stats(report)
        self._record_run_card(report, jobs=jobs, fidelity=fidelity,
                              wall_s=time.perf_counter() - started)
        return report

    def _select_experiment(self, name):
        """The one experiment an adaptive exploration targets."""
        return self.state.select_experiment(name)

    def _record_meta(self):
        """Persist the campaign's identity so ``repro resume <db>`` can
        rebuild it from the database alone."""
        self.state.record_meta(self.database)

    @classmethod
    def from_database(cls, database, *, tracer=None, tenant=None):
        """Rebuild a campaign from a database's persisted meta — the
        engine behind ``repro resume <db>`` and the daemon's resume."""
        return cls(
            None,
            state=CampaignState.from_database(database),
            database=database,
            tracer=tracer,
            tenant=tenant,
        )

    def _worker_runner(self):
        """A fresh runner on a fresh cluster for one scheduler worker."""
        return self.runner.clone()

    def performance_map(self, experiment_name=None):
        """A :class:`PerformanceMap` over this campaign's observations."""
        return PerformanceMap.from_database(
            self.database, experiment_name=experiment_name,
        )
