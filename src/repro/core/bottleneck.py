"""Bottleneck detection from observed monitor data.

"When a bottleneck is found (e.g., by the observation of response times
longer than specified by service level objectives), we use Mulini to
generate new experiments with larger configurations" (Section II).  The
detector reads the same per-tier CPU figures the sysstat pipeline
collected — observation, not modelling.
"""

from __future__ import annotations

from repro.errors import ExperimentError

#: A tier is considered saturated above this mean CPU utilization.
SATURATION_CPU_PERCENT = 85.0

#: Tiers eligible for scale-out (clients are not a system resource).
SCALABLE_TIERS = ("web", "app", "db")


def tier_utilizations(result):
    """{tier: mean CPU %} for the scalable tiers of one trial."""
    return {tier: result.tier_cpu(tier) for tier in SCALABLE_TIERS
            if any(t == tier for t in result.tier_of_host.values())}


def detect_bottleneck(result, threshold=SATURATION_CPU_PERCENT):
    """The saturated tier of one trial, or None.

    When several tiers exceed the threshold the most utilized one is
    reported — it is the one whose scale-out moves the knee.
    """
    utilizations = tier_utilizations(result)
    saturated = {tier: cpu for tier, cpu in utilizations.items()
                 if cpu >= threshold}
    if not saturated:
        return None
    return max(saturated, key=saturated.get)


def colocation_of(result):
    """``{vm host: (physical, [cotenants])}`` parsed back out of a
    trial's observation rows.

    Consolidated trials record one synthetic ``host_cpu`` row per
    tenant, named ``<physical>/<member>`` with tier ``physical`` (see
    the runner's ``_surface_colocation``) — membership rides the
    observation tables, so attribution works on a loaded database with
    no access to the cluster that ran the trial.  Dedicated trials
    return ``{}``.
    """
    members = {}                      # physical -> [member, ...]
    for host, tier in sorted(result.tier_of_host.items()):
        if tier != "physical" or "/" not in host:
            continue
        physical, member = host.split("/", 1)
        members.setdefault(physical, []).append(member)
    placement = {}
    for physical, tenants in members.items():
        for member in tenants:
            placement[member] = (
                physical, [m for m in tenants if m != member])
    return placement


def interference_attribution(result, threshold=SATURATION_CPU_PERCENT):
    """Saturated hosts whose pressure is (partly) a cotenant's fault.

    Returns ``[{host, physical, cotenants, cpu}, ...]`` for every
    consolidated host at or above *threshold* — the scenario plane's
    answer to "is this tier slow, or is its neighbour loud?".
    """
    placement = colocation_of(result)
    attributions = []
    for host, (physical, cotenants) in placement.items():
        cpu = result.host_cpu.get(host)
        if cpu is None or cpu < threshold or not cotenants:
            continue
        attributions.append({
            "host": host,
            "physical": physical,
            "cotenants": cotenants,
            "cpu": cpu,
        })
    return attributions


def slo_violated(result, slo):
    """SLO check on a trial: response time or error budget exceeded.

    A trial that did not finish (DNF) violates by definition: its
    metrics are empty or partial — an empty
    :func:`~repro.experiments.trial.empty_metrics` record would
    otherwise read as a 0 ms response time and *pass* — and a
    configuration that cannot complete the benchmark certainly does not
    meet its service level objective.
    """
    if not result.completed:
        return True
    return (result.metrics.mean_response_s > slo.response_time
            or result.metrics.error_ratio > slo.error_ratio)


def diagnose(result, slo, threshold=SATURATION_CPU_PERCENT):
    """A structured observation for one trial.

    Returns a dict with the SLO verdict, the saturated tier (if any)
    and per-tier utilizations — the record the scale-out strategy acts
    on.
    """
    bottleneck = detect_bottleneck(result, threshold)
    violated = slo_violated(result, slo)
    verdict = {
        "topology": result.topology_label,
        "workload": result.workload,
        "status": result.status,
        "slo_violated": violated,
        "bottleneck": bottleneck,
        "utilizations": tier_utilizations(result),
        "response_time_ms": result.response_time_ms(),
        "error_ratio": result.metrics.error_ratio,
    }
    interference = interference_attribution(result, threshold)
    if interference:
        verdict["interference"] = interference
    return verdict


def bottleneck_progression(results, slo, threshold=SATURATION_CPU_PERCENT):
    """Diagnose an increasing-workload series; returns the first
    violating diagnosis (with its bottleneck) or None if the whole
    series met the SLO.
    """
    ordered = sorted(results, key=lambda r: r.workload)
    if not ordered:
        raise ExperimentError("no results to diagnose")
    for result in ordered:
        verdict = diagnose(result, slo, threshold)
        if verdict["slo_violated"]:
            return verdict
    return None
