"""Results: observation database, analysis and report rendering."""

from repro.results import analysis, export, report
from repro.results.database import ResultsDatabase

__all__ = ["analysis", "export", "report", "ResultsDatabase"]
