"""Results: observation database, analysis and report rendering."""

from repro.results import analysis, export, report
from repro.results.database import ResultsDatabase, merge_shards, shard_path

__all__ = ["analysis", "export", "report", "ResultsDatabase",
           "merge_shards", "shard_path"]
