"""Text rendering of figures and tables.

The benchmark harness prints the same rows/series the paper reports;
these renderers produce aligned, diff-friendly ASCII so EXPERIMENTS.md
can quote them directly.
"""

from __future__ import annotations


def render_series(title, series, x_label="workload", y_label="value",
                  y_format="{:.1f}"):
    """Render one [(x, y)] line."""
    lines = [title, f"{x_label:>10}  {y_label}"]
    for x, y in series:
        lines.append(f"{x:>10}  {y_format.format(y)}")
    return "\n".join(lines)


def render_multi_series(title, named_series, x_label="workload",
                        y_format="{:>10.1f}"):
    """Render several lines sharing an x axis (Figures 4-8)."""
    all_x = sorted({x for series in named_series.values() for x, _y in
                    series})
    header = f"{x_label:>10}" + "".join(f"{name:>14}"
                                        for name in named_series)
    lines = [title, header]
    as_dicts = {name: dict(series) for name, series in named_series.items()}
    for x in all_x:
        row = f"{x:>10}"
        for name in named_series:
            value = as_dicts[name].get(x)
            row += f"{'-':>14}" if value is None else \
                f"{y_format.format(value):>14}"
        lines.append(row)
    return "\n".join(lines)


def render_surface(title, surface, y_format="{:.0f}"):
    """Render a {(workload, write_ratio): value} surface (Figures 1-3):
    write ratios as columns, workloads as rows."""
    workloads = sorted({w for w, _r in surface})
    ratios = sorted({r for _w, r in surface})
    header = f"{'users':>8} |" + "".join(
        f"{f'{int(round(r * 100))}%':>9}" for r in ratios)
    lines = [title, header, "-" * len(header)]
    for workload in workloads:
        row = f"{workload:>8} |"
        for ratio in ratios:
            value = surface.get((workload, ratio))
            row += f"{'-':>9}" if value is None else \
                f"{y_format.format(value):>9}"
        lines.append(row)
    return "\n".join(lines)


def render_improvement_table(title, table):
    """Render Table 6: % RT improvement when growing app vs db tier."""
    counts = sorted(set(table["app"]) | set(table["db"]))
    lines = [title,
             f"{'servers':>8} {'app tier (%)':>14} {'db tier (%)':>14}"]
    for count in counts:
        app = table["app"].get(count)
        db = table["db"].get(count)
        lines.append(
            f"{count:>8} "
            f"{('%.1f' % app) if app is not None else '-':>14} "
            f"{('%.1f' % db) if db is not None else '-':>14}"
        )
    return "\n".join(lines)


def render_throughput_table(title, table):
    """Render Table 7; '-' marks a DNF trial (paper's missing squares)."""
    topologies = list(table)
    workloads = sorted({w for row in table.values() for w in row})
    header = f"{'load':>8} |" + "".join(f"{t:>10}" for t in topologies)
    lines = [title, header, "-" * len(header)]
    for workload in workloads:
        row = f"{workload:>8} |"
        for topology in topologies:
            value = table[topology].get(workload)
            row += f"{'-':>10}" if value is None else f"{value:>10.1f}"
        lines.append(row)
    return "\n".join(lines)


def render_management_scale(title, rows):
    """Render Table 3's management-scale accounting."""
    lines = [
        title,
        f"{'experiment set':<34} {'trials':>7} {'script KLOC':>12} "
        f"{'config lines':>13} {'machines':>9} {'data MB':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['set']:<34} {row['experiments']:>7} "
            f"{row['script_lines'] / 1000:>12.1f} "
            f"{row['config_lines']:>13} {row['machine_count']:>9} "
            f"{row['collected_mb']:>9.1f}"
        )
    return "\n".join(lines)


def render_state_table(title, per_state, limit=None):
    """Render a per-interaction breakdown (count/errors/mean RT).

    Rows are sorted by mean response time, heaviest first; *limit*
    truncates to the top N.
    """
    ranked = sorted(per_state.items(),
                    key=lambda item: item[1]["mean_response_s"],
                    reverse=True)
    if limit is not None:
        ranked = ranked[:limit]
    width = max([len(state) for state, _s in ranked] + [11])
    lines = [title,
             f"{'interaction':<{width}} {'count':>8} {'errors':>8} "
             f"{'mean rt (ms)':>13}"]
    for state, stats in ranked:
        lines.append(
            f"{state:<{width}} {stats['count']:>8} "
            f"{stats['errors']:>8} "
            f"{stats['mean_response_s'] * 1000:>13.1f}"
        )
    return "\n".join(lines)


def render_ascii_chart(title, named_series, width=64, height=16,
                       y_label="ms"):
    """Plot one or more [(x, y)] series as an ASCII chart.

    Each series gets a distinct glyph; the y axis is linear from 0 to
    the maximum observed value.  Used by the CLI report so scale-out
    knees are visible without leaving the terminal.
    """
    points = [(x, y) for series in named_series.values()
              for x, y in series]
    if not points:
        return title + "\n(no data)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_min, x_max = min(xs), max(xs)
    y_max = max(ys) or 1.0
    x_span = (x_max - x_min) or 1
    glyphs = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]
    for index, (name, series) in enumerate(named_series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in series:
            column = round((x - x_min) / x_span * (width - 1))
            row = round(y / y_max * (height - 1))
            grid[height - 1 - row][column] = glyph
    lines = [title]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:10.0f} |"
        elif row_index == height - 1:
            label = f"{0:10.0f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':>11}{x_min:<10g}{'':^{max(0, width - 20)}}"
                 f"{x_max:>10g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}"
        for i, name in enumerate(named_series)
    )
    lines.append(f"  [{y_label}]  {legend}")
    return "\n".join(lines)


def render_bundle_table(title, entries):
    """Render Table 4/5-style artifact listings: (name, lines, comment)."""
    width = max(len(name) for name, _l, _c in entries)
    lines = [title, f"{'file':<{width}}  {'lines':>6}  description"]
    for name, count, comment in entries:
        lines.append(f"{name:<{width}}  {count:>6}  {comment}")
    return "\n".join(lines)
