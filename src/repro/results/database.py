"""SQLite-backed observation database.

"After each set of experiments, performance data collected from the
participating hosts is put into a database for analysis" (Section II).
Every trial lands here; the characterization and capacity-planning APIs
and the figure/table reproductions all query this database rather than
holding results in ad-hoc lists.
"""

from __future__ import annotations

import json
import sqlite3
import threading

from repro.errors import ResultsError
from repro.experiments.trial import AttemptFailure, TrialResult
from repro.faults.retry import GAVE_UP, QUARANTINED
from repro.monitoring.metrics import TrialMetrics
from repro.obs.tracer import SpanRecord

# The trials table's own DDL is split out because schema migrations
# must recreate it verbatim (SQLite cannot ALTER a UNIQUE constraint in
# place).  Columns added after the seed schema (``fidelity``, then the
# scenario plane's ``backlog``/``scenario``) are deliberately the LAST
# columns, in the order their planes landed, so a migrated older
# database and a freshly created one share the same column order —
# dump_rows comparisons stay meaningful across both.
_TRIALS_TABLE = """
CREATE TABLE IF NOT EXISTS trials (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_name TEXT NOT NULL,
    benchmark TEXT NOT NULL,
    platform TEXT NOT NULL,
    topology TEXT NOT NULL,
    workload INTEGER NOT NULL,
    write_ratio REAL NOT NULL,
    seed INTEGER NOT NULL,
    status TEXT NOT NULL,
    completed_requests INTEGER NOT NULL,
    errors INTEGER NOT NULL,
    timeouts INTEGER NOT NULL,
    rejections INTEGER NOT NULL,
    duration_s REAL NOT NULL,
    throughput REAL NOT NULL,
    mean_response_s REAL NOT NULL,
    p50_response_s REAL NOT NULL,
    p90_response_s REAL NOT NULL,
    p99_response_s REAL NOT NULL,
    collected_bytes INTEGER NOT NULL,
    script_lines INTEGER NOT NULL,
    config_lines INTEGER NOT NULL,
    generated_files INTEGER NOT NULL,
    machine_count INTEGER NOT NULL,
    fidelity TEXT NOT NULL DEFAULT 'des',
    backlog INTEGER NOT NULL DEFAULT 0,
    scenario TEXT NOT NULL DEFAULT '',
    UNIQUE (experiment_name, topology, workload, write_ratio, seed,
            fidelity, scenario)
)
"""

#: Columns appended to ``trials`` after the seed schema, in landing
#: order, with the SQL literal a migrated row takes.  A database from
#: any earlier era is missing a *suffix* of this list — the migration
#: appends exactly the missing defaults.
_TRIAL_SUFFIX = (("fidelity", "'des'"), ("backlog", "0"),
                 ("scenario", "''"))

_SCHEMA = _TRIALS_TABLE + """;
CREATE TABLE IF NOT EXISTS host_cpu (
    trial_id INTEGER NOT NULL REFERENCES trials(id) ON DELETE CASCADE,
    host TEXT NOT NULL,
    tier TEXT,
    cpu_percent REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS state_metrics (
    trial_id INTEGER NOT NULL REFERENCES trials(id) ON DELETE CASCADE,
    state TEXT NOT NULL,
    count INTEGER NOT NULL,
    errors INTEGER NOT NULL,
    mean_response_s REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS spans (
    trial_id INTEGER NOT NULL REFERENCES trials(id) ON DELETE CASCADE,
    span_id INTEGER NOT NULL,
    parent_id INTEGER NOT NULL,
    name TEXT NOT NULL,
    start_s REAL NOT NULL,
    duration_s REAL NOT NULL,
    status TEXT NOT NULL,
    attributes TEXT NOT NULL
);
-- The fault plane's failure record: one row per failed attempt (plus
-- one synthetic row per host quarantine).  Deliberately a separate
-- table so the observation tables (trials/host_cpu/state_metrics)
-- stay byte-identical between a fault-free campaign and one that
-- recovered from transient faults.
CREATE TABLE IF NOT EXISTS failures (
    trial_id INTEGER NOT NULL REFERENCES trials(id) ON DELETE CASCADE,
    attempt INTEGER NOT NULL,
    phase TEXT NOT NULL,
    cause TEXT NOT NULL,
    error_type TEXT NOT NULL,
    transient INTEGER NOT NULL,
    resolution TEXT NOT NULL,
    fault_kind TEXT,
    host TEXT,
    backoff_s REAL NOT NULL DEFAULT 0.0
);
-- Campaign identity for checkpoint/resume: the TBL/MOF text and knobs
-- that produced this database, so `repro resume <db>` can rebuild the
-- campaign and run exactly the missing trials.
CREATE TABLE IF NOT EXISTS campaign_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
-- The planner plane's decision log: one row per planner decision, in
-- (round, seq) order.  Decisions are pure functions of observations,
-- so resuming an adaptive campaign replays the loop and regenerates
-- exactly these rows — the log is cleared and rewritten on every
-- run_adaptive, and byte-compared across worker counts by the tests.
CREATE TABLE IF NOT EXISTS planner_decisions (
    round INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    policy TEXT NOT NULL,
    experiment_name TEXT NOT NULL,
    action TEXT NOT NULL,
    topology TEXT,
    workload INTEGER,
    write_ratio REAL,
    reason TEXT NOT NULL,
    fidelity TEXT NOT NULL DEFAULT 'des',
    PRIMARY KEY (round, seq)
);
-- The remedy plane's log: one row per remediation-pipeline event
-- (diagnosis, candidate, verdict, apply, outcome) in (round, seq)
-- order.  Like planner_decisions, the rows are pure functions of
-- recorded observations: `repro heal` clears and rewrites the log
-- wholesale on every run, so a killed-and-resumed heal reproduces
-- exactly the rows an uninterrupted one writes.  ``detail`` is the
-- event's canonical JSON (sorted keys) and ``accepted`` marks the
-- winning candidate / applied patch rows.
CREATE TABLE IF NOT EXISTS remediations (
    round INTEGER NOT NULL,
    seq INTEGER NOT NULL,
    stage TEXT NOT NULL,
    kind TEXT NOT NULL,
    target TEXT,
    experiment_name TEXT NOT NULL,
    detail TEXT NOT NULL,
    score REAL,
    accepted INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (round, seq)
);
-- The provenance plane: one run card per campaign run — the canonical
-- JSON record of what produced this database (command, environment,
-- resolved parameters, input and table digests, cache stats).  Where
-- campaign_meta stores the inputs a resume needs verbatim, run_cards
-- stores the observation of each run that wrote here, so the database
-- is a self-describing reproducibility bundle.
CREATE TABLE IF NOT EXISTS run_cards (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    created TEXT NOT NULL,
    card TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_state_metrics_trial
    ON state_metrics (trial_id);
CREATE INDEX IF NOT EXISTS idx_trials_sweep
    ON trials (experiment_name, topology, workload, write_ratio);
CREATE INDEX IF NOT EXISTS idx_host_cpu_trial ON host_cpu (trial_id);
CREATE INDEX IF NOT EXISTS idx_spans_trial ON spans (trial_id);
CREATE INDEX IF NOT EXISTS idx_failures_trial ON failures (trial_id);
"""


class ResultsDatabase:
    """Observation store with insert/query/replace semantics.

    Safe for concurrent use by scheduler workers: one connection is
    shared (``check_same_thread=False``) behind a single writer lock,
    so inserts serialize while keeping the UNIQUE-key replace
    semantics; file-backed databases run in WAL mode so a reader (a
    live report) never blocks the campaign's writer.
    """

    def __init__(self, path=":memory:"):
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA foreign_keys = ON")
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.executescript(_SCHEMA)
        self._migrate()

    def _column_names(self, table):
        return [row[1] for row in
                self._conn.execute(f"PRAGMA table_info({table})")]

    def _migrate(self):
        """Bring an older database file up to this schema in place.

        ``CREATE TABLE IF NOT EXISTS`` is a no-op on an existing file,
        so an old database reaches here with its old shape.  The
        decision log just grows a defaulted column; ``trials`` must be
        rebuilt because its UNIQUE key changes — the rename/copy dance
        preserves every row id, so child-table references stay valid.
        Post-seed columns only ever append (:data:`_TRIAL_SUFFIX`), so
        whatever era the file comes from, the missing columns are a
        suffix and one ``SELECT *, <defaults>`` copy fills them: every
        pre-fidelity trial was a DES observation and every pre-scenario
        trial was a plain (closed-loop, dedicated-host) sweep point by
        construction.
        """
        if "fidelity" not in self._column_names("planner_decisions"):
            self._conn.execute(
                "ALTER TABLE planner_decisions ADD COLUMN fidelity "
                "TEXT NOT NULL DEFAULT 'des'")
            self._conn.commit()
        present = self._column_names("trials")
        missing = [(name, default) for name, default in _TRIAL_SUFFIX
                   if name not in present]
        if missing:
            defaults = ", ".join(default for _name, default in missing)
            # legacy_alter_table keeps the child tables' REFERENCES
            # pointing at "trials" through the rename, so they bind to
            # the rebuilt table rather than following trials_legacy.
            self._conn.execute("PRAGMA foreign_keys = OFF")
            self._conn.execute("PRAGMA legacy_alter_table = ON")
            try:
                self._conn.execute(
                    "ALTER TABLE trials RENAME TO trials_legacy")
                self._conn.execute(_TRIALS_TABLE)
                self._conn.execute(
                    f"INSERT INTO trials SELECT *, {defaults} "
                    f"FROM trials_legacy")
                self._conn.execute("DROP TABLE trials_legacy")
                # The rename carried the trials indexes off to the
                # legacy table and the drop took them with it.
                self._conn.executescript(_SCHEMA)
            finally:
                self._conn.execute("PRAGMA legacy_alter_table = OFF")
                self._conn.execute("PRAGMA foreign_keys = ON")
            self._conn.commit()

    @property
    def _db(self):
        if self._conn is None:
            raise ResultsError(
                f"results database {self.path!r} is closed"
            )
        return self._conn

    def close(self):
        """Close the connection; idempotent."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # -- writes -----------------------------------------------------------

    #: Child tables hanging off ``trials.id``.
    _CHILD_TABLES = ("host_cpu", "state_metrics", "spans", "failures")

    def insert(self, result, replace=False):
        """Store a :class:`TrialResult`; returns its row id.

        Thread-safe: the whole multi-statement insert (trial row, host
        CPU rows, per-state rows, commit) happens under the writer
        lock, so concurrent workers never interleave half-inserted
        trials.
        """
        with self._lock:
            try:
                trial_id = self._insert_locked(result, replace)
            except Exception:
                self._db.rollback()
                raise
            self._db.commit()
        return trial_id

    def _insert_locked(self, result, replace):
        """Write one trial and its children; caller commits."""
        metrics = result.metrics
        if replace:
            # Replace by natural key *before* the insert.  The old
            # INSERT OR REPLACE path deleted children keyed on the new
            # row's id — a no-op that orphaned the replaced trial's
            # children whenever foreign-key enforcement was off (which
            # is SQLite's per-connection default; our own connections
            # enable it, but the database file must stay consistent
            # for any reader).
            row = self._db.execute(
                "SELECT id FROM trials WHERE experiment_name = ? AND "
                "topology = ? AND workload = ? AND write_ratio = ? AND "
                "seed = ? AND fidelity = ? AND scenario = ?",
                (result.experiment_name, result.topology_label,
                 result.workload, result.write_ratio, result.seed,
                 getattr(result, "fidelity", "des"),
                 getattr(result, "scenario", "")),
            ).fetchone()
            if row is not None:
                old_id = row[0]
                for table in self._CHILD_TABLES:
                    self._db.execute(
                        f"DELETE FROM {table} WHERE trial_id = ?",
                        (old_id,))
                self._db.execute("DELETE FROM trials WHERE id = ?",
                                 (old_id,))
        try:
            cursor = self._db.execute(
                """INSERT INTO trials (
                    experiment_name, benchmark, platform, topology,
                    workload, write_ratio, seed, status,
                    completed_requests, errors, timeouts, rejections,
                    duration_s, throughput, mean_response_s,
                    p50_response_s, p90_response_s, p99_response_s,
                    collected_bytes, script_lines, config_lines,
                    generated_files, machine_count, fidelity, backlog,
                    scenario
                ) VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,
                          ?,?,?,?)""",
                (
                    result.experiment_name, result.benchmark,
                    result.platform, result.topology_label,
                    result.workload, result.write_ratio, result.seed,
                    result.status, metrics.completed, metrics.errors,
                    metrics.timeouts, metrics.rejections,
                    metrics.duration_s, metrics.throughput,
                    metrics.mean_response_s, metrics.p50_response_s,
                    metrics.p90_response_s, metrics.p99_response_s,
                    result.collected_bytes, result.script_lines,
                    result.config_lines, result.generated_files,
                    result.machine_count,
                    getattr(result, "fidelity", "des"),
                    getattr(metrics, "backlog", 0),
                    getattr(result, "scenario", ""),
                ),
            )
        except sqlite3.IntegrityError as error:
            raise ResultsError(
                f"duplicate trial {result.experiment_name}/"
                f"{result.topology_label}/u{result.workload}: {error}"
            ) from error
        trial_id = cursor.lastrowid
        self._db.executemany(
            "INSERT INTO host_cpu (trial_id, host, tier, cpu_percent) "
            "VALUES (?,?,?,?)",
            [
                (trial_id, host, result.tier_of_host.get(host), cpu)
                for host, cpu in sorted(result.host_cpu.items())
            ],
        )
        self._db.executemany(
            "INSERT INTO state_metrics "
            "(trial_id, state, count, errors, mean_response_s) "
            "VALUES (?,?,?,?,?)",
            [
                (trial_id, state, stats["count"], stats["errors"],
                 stats["mean_response_s"])
                for state, stats in sorted(result.per_state.items())
            ],
        )
        spans = getattr(result, "spans", None)
        if spans:
            self._db.executemany(
                "INSERT INTO spans (trial_id, span_id, parent_id, name, "
                "start_s, duration_s, status, attributes) "
                "VALUES (?,?,?,?,?,?,?,?)",
                [
                    (trial_id, span.span_id, span.parent_id, span.name,
                     span.start_s, span.duration_s, span.status,
                     span.attributes_json())
                    for span in spans
                ],
            )
        failures = getattr(result, "failures", None)
        if failures:
            self._db.executemany(
                "INSERT INTO failures (trial_id, attempt, phase, cause, "
                "error_type, transient, resolution, fault_kind, host, "
                "backoff_s) VALUES (?,?,?,?,?,?,?,?,?,?)",
                [
                    (trial_id, f.attempt, f.phase, f.cause, f.error_type,
                     int(f.transient), f.resolution, f.fault_kind,
                     f.host, f.backoff_s)
                    for f in failures
                ],
            )
        return trial_id

    def insert_many(self, results, replace=False):
        """Store many :class:`TrialResult`\\ s in **one** transaction.

        Every trial's statements run back-to-back and a single commit
        (one fsync on file-backed databases) covers the whole batch —
        the campaign hot path.  Row ids and contents are exactly what
        the same sequence of :meth:`insert` calls would produce; on
        error the entire batch rolls back, so the database never holds
        a partial batch.
        """
        ids = []
        with self._lock:
            try:
                for result in results:
                    ids.append(self._insert_locked(result, replace))
            except Exception:
                self._db.rollback()
                raise
            self._db.commit()
        return ids

    def integrity_check(self):
        """Scan for child rows orphaned from ``trials`` — the damage
        the replace-path bug used to leave behind.  Returns a list of
        problem descriptions (empty when consistent).  Works without
        foreign-key enforcement, so it validates the file itself, not
        this connection's pragma state.
        """
        problems = []
        with self._lock:
            for table in self._CHILD_TABLES:
                count = self._db.execute(
                    f"SELECT COUNT(*) FROM {table} c WHERE NOT EXISTS "
                    f"(SELECT 1 FROM trials t WHERE t.id = c.trial_id)"
                ).fetchone()[0]
                if count:
                    problems.append(
                        f"{table}: {count} row(s) orphaned from trials"
                    )
        return problems

    # -- reads -------------------------------------------------------------

    def query(self, experiment_name=None, benchmark=None, topology=None,
              workload=None, write_ratio=None, status=None,
              fidelity=None, scenario=None):
        """Fetch trials matching all given filters, as TrialResults.

        ``scenario=""`` selects plain (non-scenario) sweep trials;
        ``scenario=None`` (the default) applies no scenario filter.
        """
        clauses = []
        params = []
        for column, value in (
                ("experiment_name", experiment_name),
                ("benchmark", benchmark),
                ("topology", topology),
                ("workload", workload),
                ("status", status),
                ("fidelity", fidelity),
                ("scenario", scenario)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if write_ratio is not None:
            clauses.append("ABS(write_ratio - ?) < 1e-9")
            params.append(write_ratio)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._db.execute(
                f"SELECT * FROM trials {where} "
                f"ORDER BY topology, write_ratio, workload",
                params,
            ).fetchall()
            columns = [d[0] for d in self._db.execute(
                "SELECT * FROM trials LIMIT 0").description]
            return [self._to_result(dict(zip(columns, row)))
                    for row in rows]

    def count(self):
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM trials").fetchone()[0]

    def experiments(self):
        with self._lock:
            rows = self._db.execute(
                "SELECT DISTINCT experiment_name FROM trials ORDER BY 1"
            ).fetchall()
        return [row[0] for row in rows]

    def topologies(self, experiment_name=None):
        with self._lock:
            if experiment_name is None:
                rows = self._db.execute(
                    "SELECT DISTINCT topology FROM trials "
                    "ORDER BY 1").fetchall()
            else:
                rows = self._db.execute(
                    "SELECT DISTINCT topology FROM trials "
                    "WHERE experiment_name = ? ORDER BY 1",
                    (experiment_name,)).fetchall()
        return [row[0] for row in rows]

    def total_collected_bytes(self, experiment_name=None):
        """Table 3's collected-data accounting, from the database."""
        with self._lock:
            if experiment_name is None:
                row = self._db.execute(
                    "SELECT SUM(collected_bytes) FROM trials").fetchone()
            else:
                row = self._db.execute(
                    "SELECT SUM(collected_bytes) FROM trials "
                    "WHERE experiment_name = ?",
                    (experiment_name,)).fetchone()
        return row[0] or 0

    def trial_keys(self):
        """The identity key of every stored trial — the campaign's
        checkpoint: a resume skips exactly these."""
        with self._lock:
            rows = self._db.execute(
                "SELECT experiment_name, topology, workload, write_ratio, "
                "seed, fidelity, scenario FROM trials ORDER BY id"
            ).fetchall()
        return [tuple(row) for row in rows]

    def dump_rows(self, table):
        """Every row of *table*, ordered by rowid — the raw comparison
        surface the determinism tests diff (tracing must never change
        what lands in the observation tables)."""
        if table not in ("trials", "host_cpu", "state_metrics", "spans",
                         "failures", "planner_decisions", "remediations",
                         "run_cards"):
            raise ResultsError(f"unknown table {table!r}")
        if not self.has_table(table):
            return []
        with self._lock:
            return self._db.execute(
                f"SELECT * FROM {table} ORDER BY rowid").fetchall()

    # -- planner decisions (the planner plane's log) ------------------------

    _DECISION_COLUMNS = ("round", "seq", "policy", "experiment_name",
                         "action", "topology", "workload", "write_ratio",
                         "reason", "fidelity")

    def has_table(self, name):
        """Whether *name* exists in this database file.

        Opening a database normally creates every schema table, but a
        pre-planner-plane file opened read-only (or handed to us by an
        older tool) may genuinely lack one — readers that want to
        degrade gracefully check here instead of catching
        ``OperationalError``.
        """
        with self._lock:
            row = self._db.execute(
                "SELECT 1 FROM sqlite_master WHERE type = 'table' "
                "AND name = ?", (name,)).fetchone()
        return row is not None

    def has_column(self, table, column):
        """Whether *table* carries *column* in this database file.

        The column-level sibling of :meth:`has_table`: reports reading
        a file written by an older tool (a pre-scenario ``trials``
        table, say) check here and degrade with an explicit note
        instead of catching ``OperationalError``.
        """
        with self._lock:
            return column in self._column_names(table)

    def insert_decisions(self, rows):
        """Store planner-decision tuples (in :attr:`_DECISION_COLUMNS`
        order) in one transaction.  ``INSERT OR REPLACE`` keyed on
        ``(round, seq)`` makes re-logging a replayed round idempotent."""
        rows = list(rows)
        if not rows:
            return
        with self._lock:
            try:
                self._db.executemany(
                    "INSERT OR REPLACE INTO planner_decisions "
                    "(round, seq, policy, experiment_name, action, "
                    "topology, workload, write_ratio, reason, fidelity) "
                    "VALUES (?,?,?,?,?,?,?,?,?,?)", rows)
            except Exception:
                self._db.rollback()
                raise
            self._db.commit()

    def clear_planner_decisions(self):
        """Drop the decision log — run_adaptive rewrites it wholesale,
        so a resumed exploration's log matches an uninterrupted one."""
        if not self.has_table("planner_decisions"):
            return
        with self._lock:
            self._db.execute("DELETE FROM planner_decisions")
            self._db.commit()

    def planner_decisions(self):
        """Every decision as a dict, in (round, seq) order.

        A database that predates the planner plane simply recorded no
        decisions, so a missing table reads as an empty log rather than
        an error.
        """
        if not self.has_table("planner_decisions"):
            return []
        with self._lock:
            rows = self._db.execute(
                "SELECT round, seq, policy, experiment_name, action, "
                "topology, workload, write_ratio, reason, fidelity "
                "FROM planner_decisions ORDER BY round, seq").fetchall()
        return [dict(zip(self._DECISION_COLUMNS, row)) for row in rows]

    def decision_count(self):
        if not self.has_table("planner_decisions"):
            return 0
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM planner_decisions").fetchone()[0]

    # -- remediations (the remedy plane's log) ------------------------------

    _REMEDIATION_COLUMNS = ("round", "seq", "stage", "kind", "target",
                            "experiment_name", "detail", "score",
                            "accepted")

    def insert_remediations(self, rows):
        """Store remediation tuples (in :attr:`_REMEDIATION_COLUMNS`
        order) in one transaction.  ``INSERT OR REPLACE`` keyed on
        ``(round, seq)`` makes re-logging a replayed round idempotent —
        the same property :meth:`insert_decisions` gives the planner."""
        rows = list(rows)
        if not rows:
            return
        with self._lock:
            try:
                self._db.executemany(
                    "INSERT OR REPLACE INTO remediations "
                    "(round, seq, stage, kind, target, experiment_name, "
                    "detail, score, accepted) VALUES (?,?,?,?,?,?,?,?,?)",
                    rows)
            except Exception:
                self._db.rollback()
                raise
            self._db.commit()

    def clear_remediations(self):
        """Drop the remediation log — ``repro heal`` rewrites it
        wholesale, so a resumed heal's log matches an uninterrupted
        one."""
        if not self.has_table("remediations"):
            return
        with self._lock:
            self._db.execute("DELETE FROM remediations")
            self._db.commit()

    def remediations(self):
        """Every remediation event as a dict, in (round, seq) order.
        A pre-remedy-plane database reads as an empty log."""
        if not self.has_table("remediations"):
            return []
        with self._lock:
            rows = self._db.execute(
                "SELECT round, seq, stage, kind, target, experiment_name, "
                "detail, score, accepted FROM remediations "
                "ORDER BY round, seq").fetchall()
        return [dict(zip(self._REMEDIATION_COLUMNS, row)) for row in rows]

    def remediation_count(self):
        if not self.has_table("remediations"):
            return 0
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM remediations").fetchone()[0]

    # -- failures (the fault plane's record) -------------------------------

    def failure_count(self):
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM failures").fetchone()[0]

    def failures_for(self, trial_id):
        """Every :class:`AttemptFailure` of one trial, in attempt order."""
        with self._lock:
            rows = self._db.execute(
                "SELECT attempt, phase, cause, error_type, transient, "
                "resolution, fault_kind, host, backoff_s FROM failures "
                "WHERE trial_id = ? ORDER BY rowid", (trial_id,)).fetchall()
        return [
            AttemptFailure(attempt=attempt, phase=phase, cause=cause,
                           error_type=error_type, transient=bool(transient),
                           resolution=resolution, fault_kind=fault_kind,
                           host=host, backoff_s=backoff_s)
            for (attempt, phase, cause, error_type, transient, resolution,
                 fault_kind, host, backoff_s) in rows
        ]

    def quarantined_hosts(self):
        """Hosts the campaign quarantined, with their failure record."""
        with self._lock:
            rows = self._db.execute(
                "SELECT DISTINCT host, cause FROM failures "
                "WHERE resolution = ? ORDER BY host",
                (QUARANTINED,)).fetchall()
        return {host: cause for host, cause in rows}

    # -- run cards (the provenance plane) ----------------------------------

    def insert_run_card(self, card):
        """Append one run card (a JSON-ready dict) to ``run_cards``.

        The stored text is the canonical serialized form (sorted keys),
        so equal cards store equal bytes.  Returns the card's row id.
        """
        from repro.provenance import canonical_json

        created = card.get("created", "")
        with self._lock:
            cursor = self._db.execute(
                "INSERT INTO run_cards (created, card) VALUES (?, ?)",
                (created, canonical_json(card)))
            self._db.commit()
            return cursor.lastrowid

    def run_cards(self):
        """Every stored run card as a dict, oldest first.  A database
        that predates the provenance plane reads as an empty list."""
        if not self.has_table("run_cards"):
            return []
        with self._lock:
            rows = self._db.execute(
                "SELECT card FROM run_cards ORDER BY id").fetchall()
        return [json.loads(card) for (card,) in rows]

    def run_card_count(self):
        if not self.has_table("run_cards"):
            return 0
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM run_cards").fetchone()[0]

    # -- campaign meta (checkpoint/resume) ---------------------------------

    def set_meta(self, key, value):
        """Store a campaign-identity string under *key*."""
        with self._lock:
            self._db.execute(
                "INSERT OR REPLACE INTO campaign_meta (key, value) "
                "VALUES (?, ?)", (key, str(value)))
            self._db.commit()

    def get_meta(self, key, default=None):
        with self._lock:
            row = self._db.execute(
                "SELECT value FROM campaign_meta WHERE key = ?",
                (key,)).fetchone()
        return default if row is None else row[0]

    def meta(self):
        with self._lock:
            rows = self._db.execute(
                "SELECT key, value FROM campaign_meta ORDER BY key"
            ).fetchall()
        return dict(rows)

    # -- spans (the trace plane) -------------------------------------------

    def span_count(self):
        with self._lock:
            return self._db.execute(
                "SELECT COUNT(*) FROM spans").fetchone()[0]

    def spans_for(self, trial_id):
        """All spans of one trial, in span-id (DFS preorder) order."""
        with self._lock:
            rows = self._db.execute(
                "SELECT span_id, parent_id, name, start_s, duration_s, "
                "status, attributes FROM spans WHERE trial_id = ? "
                "ORDER BY span_id", (trial_id,)).fetchall()
        return [
            SpanRecord(span_id=sid, parent_id=pid, name=name,
                       start_s=start, duration_s=duration, status=status,
                       attributes=json.loads(attributes))
            for sid, pid, name, start, duration, status, attributes in rows
        ]

    def traced_trials(self, experiment_name=None):
        """Every traced trial with its spans, in trial-row order.

        Returns ``[(trial_info_dict, [SpanRecord, ...]), ...]`` where
        the info dict carries the trial's identity columns — the join
        the ``repro trace`` report renders.
        """
        clause = ""
        params = ()
        if experiment_name is not None:
            clause = "AND t.experiment_name = ?"
            params = (experiment_name,)
        with self._lock:
            rows = self._db.execute(
                f"""SELECT t.id, t.experiment_name, t.topology,
                           t.workload, t.write_ratio, t.seed, t.status,
                           t.fidelity, t.scenario
                    FROM trials t
                    WHERE EXISTS (SELECT 1 FROM spans s
                                  WHERE s.trial_id = t.id) {clause}
                    ORDER BY t.id""", params).fetchall()
        traced = []
        for (trial_id, experiment, topology, workload, write_ratio, seed,
                status, fidelity, scenario) in rows:
            info = {
                "trial_id": trial_id, "experiment_name": experiment,
                "topology": topology, "workload": workload,
                "write_ratio": write_ratio, "seed": seed, "status": status,
                "fidelity": fidelity, "scenario": scenario,
            }
            traced.append((info, self.spans_for(trial_id)))
        return traced

    # -- shards (the campaign service plane) --------------------------------

    _TRIAL_COLUMNS = (
        "experiment_name", "benchmark", "platform", "topology", "workload",
        "write_ratio", "seed", "status", "completed_requests", "errors",
        "timeouts", "rejections", "duration_s", "throughput",
        "mean_response_s", "p50_response_s", "p90_response_s",
        "p99_response_s", "collected_bytes", "script_lines", "config_lines",
        "generated_files", "machine_count", "fidelity", "backlog",
        "scenario",
    )

    _CHILD_COLUMNS = {
        "host_cpu": ("host", "tier", "cpu_percent"),
        "state_metrics": ("state", "count", "errors", "mean_response_s"),
        "spans": ("span_id", "parent_id", "name", "start_s", "duration_s",
                  "status", "attributes"),
        "failures": ("attempt", "phase", "cause", "error_type", "transient",
                     "resolution", "fault_kind", "host", "backoff_s"),
    }

    def absorb_shard(self, shard, *, meta_prefix=None, round_base=0):
        """Copy every row of *shard* into this database, in shard order.

        The ingest half of :func:`merge_shards`: trials are re-inserted
        in their shard id order (so a single shard absorbed into an
        empty database reproduces its ids exactly), child rows follow
        their trial in the same grouping the campaign ingest wrote
        them, planner decisions land with their rounds offset by
        *round_base*, and campaign meta is copied under *meta_prefix*
        (``None`` copies keys verbatim).  The whole absorption is one
        transaction.  Returns the number of trials absorbed.
        """
        src = shard._db
        absorbed = 0
        with self._lock, shard._lock:
            try:
                for key, value in src.execute(
                        "SELECT key, value FROM campaign_meta "
                        "ORDER BY key").fetchall():
                    name = key if meta_prefix is None \
                        else f"{meta_prefix}{key}"
                    self._db.execute(
                        "INSERT OR REPLACE INTO campaign_meta (key, value) "
                        "VALUES (?, ?)", (name, value))
                trial_cols = ", ".join(self._TRIAL_COLUMNS)
                placeholders = ",".join("?" * len(self._TRIAL_COLUMNS))
                for row in src.execute(
                        f"SELECT id, {trial_cols} FROM trials "
                        f"ORDER BY id").fetchall():
                    old_id, values = row[0], row[1:]
                    cursor = self._db.execute(
                        f"INSERT INTO trials ({trial_cols}) "
                        f"VALUES ({placeholders})", values)
                    new_id = cursor.lastrowid
                    for table in self._CHILD_TABLES:
                        columns = self._CHILD_COLUMNS[table]
                        child_cols = ", ".join(columns)
                        child_marks = ",".join("?" * (len(columns) + 1))
                        for child in src.execute(
                                f"SELECT {child_cols} FROM {table} "
                                f"WHERE trial_id = ? ORDER BY rowid",
                                (old_id,)).fetchall():
                            self._db.execute(
                                f"INSERT INTO {table} (trial_id, "
                                f"{child_cols}) VALUES ({child_marks})",
                                (new_id,) + tuple(child))
                    absorbed += 1
                if shard.has_table("planner_decisions"):
                    for row in src.execute(
                            "SELECT round, seq, policy, experiment_name, "
                            "action, topology, workload, write_ratio, "
                            "reason, fidelity FROM planner_decisions "
                            "ORDER BY round, seq").fetchall():
                        self._db.execute(
                            "INSERT OR REPLACE INTO planner_decisions "
                            "(round, seq, policy, experiment_name, action, "
                            "topology, workload, write_ratio, reason, "
                            "fidelity) VALUES (?,?,?,?,?,?,?,?,?,?)",
                            (row[0] + round_base,) + tuple(row[1:]))
                if shard.has_table("remediations"):
                    for row in src.execute(
                            "SELECT round, seq, stage, kind, target, "
                            "experiment_name, detail, score, accepted "
                            "FROM remediations "
                            "ORDER BY round, seq").fetchall():
                        self._db.execute(
                            "INSERT OR REPLACE INTO remediations "
                            "(round, seq, stage, kind, target, "
                            "experiment_name, detail, score, accepted) "
                            "VALUES (?,?,?,?,?,?,?,?,?)",
                            (row[0] + round_base,) + tuple(row[1:]))
                if shard.has_table("run_cards"):
                    # Provenance travels with the rows: the merged
                    # database records every shard's run card, oldest
                    # first, so "what produced these trials" survives
                    # the merge.
                    for created, card in src.execute(
                            "SELECT created, card FROM run_cards "
                            "ORDER BY id").fetchall():
                        self._db.execute(
                            "INSERT INTO run_cards (created, card) "
                            "VALUES (?, ?)", (created, card))
            except Exception:
                self._db.rollback()
                raise
            self._db.commit()
        return absorbed

    def max_planner_round(self):
        """The highest recorded planner round (0 when none)."""
        if not self.has_table("planner_decisions"):
            return 0
        with self._lock:
            row = self._db.execute(
                "SELECT MAX(round) FROM planner_decisions").fetchone()
        return row[0] or 0

    def _to_result(self, row):
        metrics = TrialMetrics(
            completed=row["completed_requests"],
            errors=row["errors"],
            timeouts=row["timeouts"],
            rejections=row["rejections"],
            duration_s=row["duration_s"],
            throughput=row["throughput"],
            mean_response_s=row["mean_response_s"],
            p50_response_s=row["p50_response_s"],
            p90_response_s=row["p90_response_s"],
            p99_response_s=row["p99_response_s"],
            backlog=row.get("backlog", 0),
        )
        cpu_rows = self._db.execute(
            "SELECT host, tier, cpu_percent FROM host_cpu "
            "WHERE trial_id = ?", (row["id"],)).fetchall()
        state_rows = self._db.execute(
            "SELECT state, count, errors, mean_response_s "
            "FROM state_metrics WHERE trial_id = ?",
            (row["id"],)).fetchall()
        per_state = {
            state: {"count": count, "errors": errors,
                    "mean_response_s": mean_response_s}
            for state, count, errors, mean_response_s in state_rows
        }
        failures = self.failures_for(row["id"])
        # Failed-attempt rows reconstruct the attempt count: a trial
        # that gave up made exactly as many attempts as it failed; a
        # recovered (or clean) trial made one more.
        attempt_rows = [f for f in failures if f.resolution != QUARANTINED]
        gave_up = any(f.resolution == GAVE_UP for f in attempt_rows)
        attempts = len(attempt_rows) + (0 if gave_up else 1)
        return TrialResult(
            experiment_name=row["experiment_name"],
            benchmark=row["benchmark"],
            platform=row["platform"],
            topology_label=row["topology"],
            workload=row["workload"],
            write_ratio=row["write_ratio"],
            seed=row["seed"],
            status=row["status"],
            metrics=metrics,
            host_cpu={host: cpu for host, _tier, cpu in cpu_rows},
            tier_of_host={host: tier for host, tier, _cpu in cpu_rows},
            per_state=per_state,
            collected_bytes=row["collected_bytes"],
            script_lines=row["script_lines"],
            config_lines=row["config_lines"],
            generated_files=row["generated_files"],
            machine_count=row["machine_count"],
            attempts=attempts,
            failures=failures,
            fidelity=row["fidelity"],
            scenario=row.get("scenario", ""),
        )


def shard_path(db_path):
    """Where a campaign's write-behind shard lives while it runs.

    The shard sits next to the campaign's final database so a killed
    daemon leaves its checkpoint where a ``resume`` submit will look
    for it — derivable from the final path alone, with no knowledge of
    the campaign id the old daemon assigned; :func:`merge_shards`
    turns it into the final database.
    """
    return f"{db_path}.shard"


def merge_shards(shards, destination, *, namespace_meta=None):
    """Merge per-campaign shard databases into *destination*, in order.

    *shards* is a sequence of :class:`ResultsDatabase` instances or
    paths; *destination* likewise (a path is created).  Rows are copied
    shard by shard in the given order, trials in shard id order with
    their child rows regrouped exactly as the campaign ingest wrote
    them — so merging one campaign's single shard into a fresh
    destination produces tables byte-identical to the campaign having
    written the destination directly, and :meth:`ResultsDatabase.
    integrity_check` holds on the merged file by construction.

    Merging *several* campaigns into one combined database namespaces
    their ``campaign_meta`` keys (``<label>:<key>``) and offsets each
    shard's planner rounds past the previous maximum so the
    ``(round, seq)`` primary key never collides.  *namespace_meta*
    supplies the per-shard labels (default: ``shard1``, ``shard2``,
    ...); a single-shard merge copies meta verbatim.

    Returns the destination :class:`ResultsDatabase` (open; the caller
    closes it).
    """
    shards = list(shards)
    owned = []
    try:
        opened = []
        for shard in shards:
            if isinstance(shard, ResultsDatabase):
                opened.append(shard)
            else:
                database = ResultsDatabase(shard)
                owned.append(database)
                opened.append(database)
        if isinstance(destination, ResultsDatabase):
            merged = destination
        else:
            merged = ResultsDatabase(destination)
        if namespace_meta is None:
            namespace_meta = [f"shard{i + 1}" for i in range(len(opened))]
        elif len(namespace_meta) != len(opened):
            raise ResultsError(
                f"{len(opened)} shard(s) but {len(namespace_meta)} "
                f"namespace label(s)")
        single = len(opened) == 1
        for label, shard in zip(namespace_meta, opened):
            merged.absorb_shard(
                shard,
                meta_prefix=None if single else f"{label}:",
                round_base=0 if single else merged.max_planner_round())
        return merged
    finally:
        for database in owned:
            database.close()
