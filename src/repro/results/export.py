"""Export observed trials to CSV and JSON.

The observation database is the system of record; exports exist so the
characterization data can leave the toolchain (spreadsheets, plotting,
the paper-writing pipeline).  Exports are lossless for the trial-level
fields; per-host CPU figures are flattened per row.
"""

from __future__ import annotations

import csv
import io
import json

from repro.errors import ResultsError

#: Trial-level columns, in export order.
TRIAL_FIELDS = (
    "experiment_name", "benchmark", "platform", "topology", "workload",
    "write_ratio", "seed", "status", "completed", "errors", "timeouts",
    "rejections", "duration_s", "throughput", "mean_response_ms",
    "p50_response_ms", "p90_response_ms", "p99_response_ms",
    "error_ratio", "app_cpu_percent", "db_cpu_percent", "web_cpu_percent",
    "collected_bytes", "script_lines", "config_lines", "machine_count",
    "attempts",
)


def trial_row(result):
    """Flatten one TrialResult into an export dict."""
    metrics = result.metrics
    return {
        "experiment_name": result.experiment_name,
        "benchmark": result.benchmark,
        "platform": result.platform,
        "topology": result.topology_label,
        "workload": result.workload,
        "write_ratio": round(result.write_ratio, 6),
        "seed": result.seed,
        "status": result.status,
        "completed": metrics.completed,
        "errors": metrics.errors,
        "timeouts": metrics.timeouts,
        "rejections": metrics.rejections,
        "duration_s": round(metrics.duration_s, 3),
        "throughput": round(metrics.throughput, 4),
        "mean_response_ms": round(metrics.mean_response_s * 1000, 3),
        "p50_response_ms": round(metrics.p50_response_s * 1000, 3),
        "p90_response_ms": round(metrics.p90_response_s * 1000, 3),
        "p99_response_ms": round(metrics.p99_response_s * 1000, 3),
        "error_ratio": round(metrics.error_ratio, 6),
        "app_cpu_percent": round(result.tier_cpu("app"), 2),
        "db_cpu_percent": round(result.tier_cpu("db"), 2),
        "web_cpu_percent": round(result.tier_cpu("web"), 2),
        "collected_bytes": result.collected_bytes,
        "script_lines": result.script_lines,
        "config_lines": result.config_lines,
        "machine_count": result.machine_count,
        "attempts": result.attempts,
    }


def to_csv(results):
    """Render TrialResults as CSV text (header + one row per trial)."""
    if not results:
        raise ResultsError("nothing to export")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=TRIAL_FIELDS,
                            lineterminator="\n")
    writer.writeheader()
    for result in results:
        writer.writerow(trial_row(result))
    return buffer.getvalue()


def to_json(results, indent=2):
    """Render TrialResults as a JSON array, host CPU included.

    Trials the fault plane retried (or gave up on) additionally carry
    their ``failures`` list — attempt, phase, cause, resolution — so
    the DNF record survives the trip out of the toolchain intact.
    """
    if not results:
        raise ResultsError("nothing to export")
    rows = []
    for result in results:
        row = trial_row(result)
        row["host_cpu"] = {host: round(cpu, 2)
                           for host, cpu in sorted(result.host_cpu.items())}
        row["tier_of_host"] = dict(sorted(result.tier_of_host.items()))
        failures = getattr(result, "failures", None)
        if failures:
            row["failures"] = [
                {"attempt": f.attempt, "phase": f.phase,
                 "cause": f.cause, "error_type": f.error_type,
                 "transient": f.transient, "resolution": f.resolution,
                 "fault_kind": f.fault_kind, "host": f.host,
                 "backoff_s": f.backoff_s}
                for f in failures
            ]
        rows.append(row)
    return json.dumps(rows, indent=indent) + "\n"


def from_csv(text):
    """Parse an exported CSV back into plain dict rows (typed)."""
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or \
            set(TRIAL_FIELDS) - set(reader.fieldnames):
        raise ResultsError("not a repro trial export (missing columns)")
    int_fields = {"workload", "seed", "completed", "errors", "timeouts",
                  "rejections", "collected_bytes", "script_lines",
                  "config_lines", "machine_count", "attempts"}
    rows = []
    for raw in reader:
        row = {}
        for key, value in raw.items():
            if key in int_fields:
                row[key] = int(value)
            else:
                try:
                    row[key] = float(value)
                except ValueError:
                    row[key] = value
        rows.append(row)
    return rows
