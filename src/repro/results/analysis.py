"""Analysis over observed trials: the shapes behind each figure/table.

Every function consumes :class:`TrialResult` lists (usually from the
results database) and produces plain data structures; rendering to text
lives in ``report.py``.
"""

from __future__ import annotations

from repro.errors import ResultsError
from repro.experiments.trial import DNF


def _indexed(results):
    index = {}
    for result in results:
        index[result.key()] = result
    return index


def _only(results, **filters):
    kept = results
    if "topology" in filters:
        kept = [r for r in kept
                if r.topology_label == filters["topology"]]
    if "write_ratio" in filters:
        target = filters["write_ratio"]
        kept = [r for r in kept if abs(r.write_ratio - target) < 1e-9]
    if "workload" in filters:
        kept = [r for r in kept if r.workload == filters["workload"]]
    return kept


def response_time_series(results, topology, write_ratio=None):
    """[(workload, mean RT ms)] for one topology (Figures 4-6 lines)."""
    rows = _only(results, topology=topology)
    if write_ratio is not None:
        rows = _only(rows, write_ratio=write_ratio)
    rows.sort(key=lambda r: r.workload)
    return [(r.workload, r.response_time_ms()) for r in rows]


def response_surface(results, topology, value="response"):
    """{(workload, write_ratio): value} — Figures 1-3 surfaces.

    ``value`` selects mean response time in ms (``response``) or the
    app-tier CPU percentage (``app_cpu``, Figure 2).
    """
    surface = {}
    for result in _only(results, topology=topology):
        key = (result.workload, round(result.write_ratio, 6))
        if value == "response":
            surface[key] = result.response_time_ms()
        elif value == "app_cpu":
            surface[key] = result.tier_cpu("app")
        elif value == "db_cpu":
            surface[key] = result.tier_cpu("db")
        else:
            raise ResultsError(f"unknown surface value {value!r}")
    return surface


def response_time_difference(results, topology_a, topology_b,
                             write_ratio=None):
    """[(workload, RT_a - RT_b ms)] at shared workloads (Figure 7)."""
    series_a = dict(response_time_series(results, topology_a, write_ratio))
    series_b = dict(response_time_series(results, topology_b, write_ratio))
    shared = sorted(set(series_a) & set(series_b))
    if not shared:
        raise ResultsError(
            f"no shared workloads between {topology_a} and {topology_b}"
        )
    return [(workload, series_a[workload] - series_b[workload])
            for workload in shared]


def db_cpu_series(results, topology, write_ratio=None):
    """[(workload, mean DB CPU %)] — Figure 8 lines."""
    rows = _only(results, topology=topology)
    if write_ratio is not None:
        rows = _only(rows, write_ratio=write_ratio)
    rows.sort(key=lambda r: r.workload)
    return [(r.workload, r.tier_cpu("db")) for r in rows]


def improvement_table(results, base_topology, workload, write_ratio,
                      app_range, db_range):
    """Table 6: % response-time improvement over the base configuration.

    Returns ``{"app": {k: pct}, "db": {k: pct}}`` where k is the number
    of servers in the grown tier and pct the improvement of growing the
    base to k servers in that tier (holding the other tier at base).
    """
    index = _indexed(results)
    base_key = (base_topology, workload, round(write_ratio, 6))
    base = index.get(base_key)
    if base is None:
        raise ResultsError(f"missing base trial {base_key}")
    base_rt = base.response_time_ms()
    if base_rt <= 0:
        raise ResultsError("base trial has zero response time")
    web, app, db = (int(x) for x in base_topology.split("-"))
    table = {"app": {}, "db": {}}
    for count in app_range:
        key = (f"{web}-{count}-{db}", workload, round(write_ratio, 6))
        if key in index:
            rt = index[key].response_time_ms()
            table["app"][count] = 100.0 * (base_rt - rt) / base_rt
    for count in db_range:
        key = (f"{web}-{app}-{count}", workload, round(write_ratio, 6))
        if key in index:
            rt = index[key].response_time_ms()
            table["db"][count] = 100.0 * (base_rt - rt) / base_rt
    return table


def throughput_table(results, topologies, workloads):
    """Table 7: {topology: {workload: throughput-or-None}}.

    ``None`` marks a DNF trial — the paper's missing squares for
    experiments that could not complete at high load.
    """
    index = _indexed(results)
    table = {}
    for topology in topologies:
        row = {}
        for workload in workloads:
            matches = [r for (t, w, _wr), r in index.items()
                       if t == topology and w == workload]
            if not matches:
                row[workload] = None
                continue
            result = matches[0]
            row[workload] = None if result.status == DNF \
                else result.throughput()
        table[topology] = row
    return table


def saturation_workload(results, topology, slo_response_s,
                        write_ratio=None):
    """Smallest workload whose mean RT violates the SLO, or None.

    This is the capacity-planning read of a scale-out line: "the 1-2-1
    configuration saturates at about 500 users" (V.B).
    """
    series = response_time_series(results, topology, write_ratio)
    for workload, rt_ms in series:
        if rt_ms > slo_response_s * 1000.0:
            return workload
    return None


def users_supported(results, topology, slo_response_s, slo_error_ratio,
                    write_ratio=None):
    """Largest measured workload meeting both SLOs, or None."""
    rows = _only(results, topology=topology)
    if write_ratio is not None:
        rows = _only(rows, write_ratio=write_ratio)
    good = [r.workload for r in rows
            if r.status != DNF
            and r.metrics.mean_response_s <= slo_response_s
            and r.metrics.error_ratio <= slo_error_ratio]
    return max(good) if good else None


def aggregate_repetitions(results):
    """Collapse repeated trials (same point, different seeds).

    Returns ``{point_key: {"n", "mean_rt_ms", "std_rt_ms",
    "mean_throughput", "dnf"}}`` — mean/stddev across repetitions and
    the count of DNF repetitions.  This quantifies the paper's
    observation that CPU-saturated cells "contain significant random
    fluctuations".
    """
    by_point = {}
    for result in results:
        by_point.setdefault(result.key(), []).append(result)
    aggregated = {}
    for key, repetitions in by_point.items():
        rts = [r.response_time_ms() for r in repetitions]
        throughputs = [r.throughput() for r in repetitions]
        n = len(rts)
        mean_rt = sum(rts) / n
        variance = sum((rt - mean_rt) ** 2 for rt in rts) / n
        aggregated[key] = {
            "n": n,
            "mean_rt_ms": mean_rt,
            "std_rt_ms": variance ** 0.5,
            "mean_throughput": sum(throughputs) / n,
            "dnf": sum(1 for r in repetitions if r.status == DNF),
        }
    return aggregated


def management_scale(results_by_set):
    """Table 3 rows: per experiment set, generated-script KLOC, config
    lines, machine count and collected data volume.

    *results_by_set* maps a set name to its TrialResult list.
    """
    rows = []
    for name, results in results_by_set.items():
        if not results:
            raise ResultsError(f"experiment set {name!r} has no trials")
        rows.append({
            "set": name,
            "experiments": len(results),
            "script_lines": sum(r.script_lines for r in results),
            "config_lines": sum(r.config_lines for r in results),
            "generated_files": sum(r.generated_files for r in results),
            "machine_count": sum(r.machine_count for r in results),
            "collected_mb": sum(r.collected_bytes for r in results) / 1e6,
        })
    return rows
