"""The stable public facade: four calls that cover the workflow.

Everything the CLI and the examples do goes through this module, so
its signatures are the package's compatibility surface:

- :func:`run_experiment` — one TBL experiment, results in memory.
- :func:`run_campaign` — a whole TBL spec into a results database.
- :func:`run_adaptive` — closed-loop exploration of one experiment
  (planner policy picks trials from the observations so far).
- :func:`plan_campaign` — dry-run a planner policy's first round.
- :func:`resume_campaign` — finish an interrupted campaign (fixed-grid
  or adaptive) from its database checkpoint.
- :func:`heal_campaign` — closed-loop auto-remediation of a diagnosed
  campaign (detect -> propose -> verify -> apply, ``repro heal``).
- :func:`reproduce_figure` — regenerate one paper figure/table.
- :func:`list_scenarios` / :func:`run_scenario` — the declarative
  scenario matrix: consolidation x arrival pattern x expected ranges
  (``repro scenarios list|run``).
- :func:`open_results` — open (or create) an observation database.
- :func:`trace_report` — render the flight-recorder report of a run.
- :func:`serve_campaigns` / :func:`campaign_client` — the campaign
  service plane: run the ``repro serve`` daemon, or talk to one.
- :func:`solve` — the one-call fidelity dispatcher over the simulator
  tiers (re-exported from :mod:`repro.sim`), with the ``"des"`` /
  ``"analytic"`` / ``"auto"`` vocabulary in :data:`FIDELITIES`.

All parameters beyond the primary input are keyword-only; every entry
point takes ``tracer=`` so one :class:`~repro.obs.Tracer` can follow a
trial through allocate -> generate -> deploy -> verify -> simulate ->
collect -> analyze -> teardown without changing any trial outcome.
"""

from __future__ import annotations

import pathlib

from repro.errors import ExperimentError, ResultsError
from repro.obs import Tracer, as_tracer, render_trace_report
from repro.results.database import ResultsDatabase
from repro.sim import ANALYTIC, AUTO, DES, FIDELITIES, check_fidelity, solve


def run_experiment(tbl_text, *, experiment=None, mof_text=None,
                   node_count=36, jobs=1, backend=None, tracer=None,
                   on_result=None, fidelity=DES):
    """Run one experiment of a TBL spec; returns its TrialResults.

    *experiment* names the experiment to run (default: the spec's only
    experiment; ambiguous with several).  ``jobs=N`` parallelizes the
    sweep without changing the results; *tracer* records lifecycle
    spans onto each result.  *fidelity* selects the solver tier:
    ``"des"`` (the default per-request simulation, byte-identical to
    before the tier existed) or ``"analytic"`` (the fluid fast path —
    milliseconds per point at any workload).
    """
    from repro.core.campaign import ObservationCampaign

    campaign = ObservationCampaign(tbl_text, mof_text=mof_text,
                                   node_count=node_count, tracer=tracer)
    names = [e.name for e in campaign.spec.experiments]
    if experiment is None:
        if len(names) != 1:
            raise ExperimentError(
                f"spec defines {len(names)} experiments "
                f"({', '.join(names)}); pass experiment=<name>"
            )
        experiment = names[0]
    results = []

    def collect(result):
        results.append(result)
        if on_result is not None:
            on_result(result)

    campaign.run([experiment], on_result=collect, jobs=jobs,
                 backend=backend, fidelity=fidelity)
    return results


def run_campaign(tbl_text, *, mof_text=None, database=None, node_count=36,
                 experiments=None, jobs=1, backend=None, tracer=None,
                 replace=True, on_result=None, on_progress=None,
                 tbl_source="<campaign>", faults=None, retry=None,
                 resume=False, fidelity=DES):
    """Run a TBL spec's experiments into a results database.

    *database* may be a :class:`ResultsDatabase`, a path, or ``None``
    (in-memory).  Returns the campaign's :class:`CampaignReport`; the
    database is reachable afterwards as ``report.database``.

    *faults* arms a :class:`~repro.faults.FaultPlan` (chaos mode) and
    *retry* a :class:`~repro.faults.RetryPolicy` (or attempt count) so
    transient failures are retried and recorded instead of aborting.
    ``resume=True`` skips trials already stored in *database*, so an
    interrupted campaign finishes exactly its missing trials.
    *fidelity* selects the solver tier for every trial (``"des"``, the
    default, or ``"analytic"``); each stored trial row records which
    tier produced it.
    """
    from repro.core.campaign import ObservationCampaign

    database = _as_database(database, create=True)
    campaign = ObservationCampaign(tbl_text, mof_text=mof_text,
                                   database=database,
                                   node_count=node_count,
                                   tbl_source=tbl_source, tracer=tracer,
                                   faults=faults, retry=retry)
    return campaign.run(experiments, on_result=on_result,
                        replace=replace, jobs=jobs, backend=backend,
                        on_progress=on_progress, resume=resume,
                        fidelity=fidelity)


def resume_campaign(database, *, jobs=1, backend=None, tracer=None,
                    on_result=None, on_progress=None):
    """Finish an interrupted campaign from its database checkpoint.

    *database* (a :class:`ResultsDatabase` or a path) must have been
    produced by :func:`run_campaign` or :func:`run_adaptive`, which
    persist the TBL/MOF text, cluster size, fault plan, retry policy —
    and, for adaptive explorations, the planner policy/budget — in the
    database's ``campaign_meta`` table.  Already-stored trials are
    skipped; an interrupted exploration replays its planner loop and
    runs only the missing trials.  Returns the :class:`CampaignReport`.
    """
    from repro.core.campaign import (
        META_FIDELITY,
        META_PLANNER_BUDGET,
        META_PLANNER_EXPERIMENT,
        META_PLANNER_POLICY,
        ObservationCampaign,
    )

    database = open_results(database, create=False)
    campaign = ObservationCampaign.from_database(database, tracer=tracer)
    fidelity = database.get_meta(META_FIDELITY, DES)
    policy = database.get_meta(META_PLANNER_POLICY)
    if policy is not None:
        budget = database.get_meta(META_PLANNER_BUDGET)
        return campaign.run_adaptive(
            policy,
            experiment_name=database.get_meta(META_PLANNER_EXPERIMENT),
            budget=int(budget) if budget is not None else None,
            jobs=jobs, backend=backend, on_result=on_result,
            on_progress=on_progress, resume=True, fidelity=fidelity)
    return campaign.run(on_result=on_result, jobs=jobs, backend=backend,
                        on_progress=on_progress, resume=True,
                        fidelity=fidelity)


def heal_campaign(database, *, jobs=1, budget=None, rounds=None,
                  target=None, experiment=None, tracer=None,
                  on_progress=None):
    """Diagnose and auto-remediate a campaign database (``repro heal``).

    Runs the closed remediation loop of :mod:`repro.remedy` over a
    finished (possibly faulted) campaign: fold the stored observations
    into diagnoses, propose candidate patches, verify the best ones
    with shadow trials on cloned clusters, apply the winner, re-measure
    and repeat until the ladder is healthy or the *budget* of DES
    shadow trials (default 32) / *rounds* of patching (default 3) runs
    out.  *target* is the workload to aim for (default: the ladder's
    top rung); *experiment* picks one of a multi-experiment spec.

    Everything lands in the database's ``remediations`` table, and a
    killed heal re-run on the same database resumes byte-identically —
    the same contract ``repro resume`` gives explorations.  Returns the
    :class:`~repro.remedy.HealReport`.
    """
    from repro.remedy import heal_campaign as heal

    database = open_results(database, create=False)
    return heal(database, jobs=jobs, budget=budget, rounds=rounds,
                target=target, experiment=experiment, tracer=tracer,
                on_progress=on_progress)


def run_adaptive(tbl_text, *, policy="knee", budget=None, experiment=None,
                 mof_text=None, database=None, node_count=36, jobs=1,
                 backend=None, tracer=None, replace=True, on_result=None,
                 on_progress=None, tbl_source="<campaign>", faults=None,
                 retry=None, resume=False, fidelity=DES):
    """Explore one TBL experiment with a closed-loop planner policy.

    Where :func:`run_campaign` executes the full sweep grid,
    ``run_adaptive`` lets *policy* (``grid``/``knee``/``promote``/
    ``tiered``, or a :class:`repro.planner.Policy` instance) choose
    trials round by round from the observations so far, optionally
    capped at *budget* trials.  Decisions land in the database's
    ``planner_decisions`` table; the report's ``outcome`` carries the
    :class:`~repro.planner.AdaptiveOutcome` (rounds, trial savings,
    knees found).  Deterministic: the same policy over the same spec
    yields the same decision log and trial rows at any ``jobs``.

    *fidelity* picks the solver tier: ``"des"`` (default), a pure
    ``"analytic"`` exploration, or ``"auto"`` — explore analytically
    and confirm the knee with DES (the tiered policy).
    """
    from repro.core.campaign import ObservationCampaign

    database = _as_database(database, create=True)
    campaign = ObservationCampaign(tbl_text, mof_text=mof_text,
                                   database=database,
                                   node_count=node_count,
                                   tbl_source=tbl_source, tracer=tracer,
                                   faults=faults, retry=retry)
    return campaign.run_adaptive(policy, experiment_name=experiment,
                                 budget=budget, jobs=jobs, backend=backend,
                                 on_result=on_result,
                                 on_progress=on_progress, replace=replace,
                                 resume=resume, fidelity=fidelity)


def plan_campaign(tbl_text, *, policy="knee", budget=None, experiment=None,
                  tbl_source="<campaign>", fidelity=DES):
    """Dry-run a planner policy's first round — no cluster, no trials.

    Parses *tbl_text*, builds the policy, and returns a
    :class:`~repro.planner.PlanPreview` of what the first adaptive
    round would measure (``repro explore --dry-run``).  *fidelity*
    mirrors :func:`run_adaptive`: ``"auto"`` previews the tiered
    policy, ``"analytic"`` previews a pure analytic exploration.
    """
    from repro.core.campaign import _AnalyticExploration
    from repro.planner import make_policy, plan_preview
    from repro.spec.tbl import parse as parse_tbl

    check_fidelity(fidelity)
    spec = parse_tbl(tbl_text, source=tbl_source)
    if experiment is not None:
        chosen = spec.experiment(experiment)
    elif len(spec.experiments) == 1:
        chosen = spec.experiments[0]
    else:
        names = ", ".join(e.name for e in spec.experiments)
        raise ExperimentError(
            f"spec defines {len(spec.experiments)} experiments "
            f"({names}); pass experiment=<name>"
        )
    if fidelity == AUTO:
        if not isinstance(policy, str) or policy not in ("knee", "tiered"):
            raise ExperimentError(
                f"fidelity 'auto' explores with the tiered knee policy; "
                f"policy {policy!r} does not support it")
        policy = "tiered"
    policy_obj = make_policy(policy, budget=budget) \
        if isinstance(policy, str) else policy
    if fidelity == ANALYTIC:
        policy_obj = _AnalyticExploration(policy_obj)
    return plan_preview(chosen, policy_obj)


def reproduce_figure(figure_id, *, scale=None, jobs=1, tracer=None,
                     database=None, output_dir=None, fidelity=DES):
    """Regenerate one paper figure/table by id (``figure1``..``table7``).

    Returns the :class:`FigureResult`; *database* (ResultsDatabase or
    path) additionally stores the underlying trials — with a *tracer*,
    their lifecycle spans land in its ``spans`` table; *output_dir*
    writes ``<id>.txt``.  ``fidelity="analytic"`` reproduces the
    figure's sweep on the fluid fast path instead of DES.
    """
    from repro.experiments.papersuite import reproduce

    check_fidelity(fidelity)
    if fidelity == AUTO:
        raise ExperimentError(
            "fidelity 'auto' is an adaptive-exploration mode; a figure "
            "reproduction takes 'des' or 'analytic'")
    figure = reproduce(figure_id, scale=scale, jobs=jobs, tracer=tracer,
                       fidelity=fidelity)
    if database is not None and figure.results:
        figure.store(_as_database(database, create=True))
    if output_dir is not None:
        out = pathlib.Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{figure.figure_id}.txt").write_text(
            figure.rendered + "\n")
    return figure


def list_scenarios():
    """The scenario matrix, in table order (``repro scenarios list``).

    Each entry is a :class:`~repro.scenarios.Scenario` — topology,
    consolidation ratio, arrival pattern, workload ladder, and the
    expected-range assertions its runs are checked against.
    """
    from repro.scenarios import list_scenarios as _list

    return _list()


def run_scenario(name, *, database=None, node_count=36, jobs=1,
                 backend=None, tracer=None, on_result=None,
                 on_progress=None, resume=False, fidelity=DES,
                 check=True):
    """Run one scenario of the matrix (``repro scenarios run <name>``).

    Compiles the named scenario row to TBL text (scenario identity,
    consolidation ratio, and arrival pattern are plain TBL settings),
    runs it through :func:`run_campaign`, then checks the row's
    expected ranges against the stored trials.  Returns a
    :class:`~repro.scenarios.ScenarioOutcome` whose ``report`` is the
    campaign report and whose ``failures`` list any missed range
    (``check=False`` skips the verdicts).  Unknown names raise
    :class:`~repro.errors.ScenarioError`.
    """
    from repro.scenarios import (
        check_expectations,
        compile_scenario,
        get_scenario,
        ScenarioOutcome,
    )

    scenario = get_scenario(name)
    tbl_text = compile_scenario(scenario)
    database = _as_database(database, create=True)
    report = run_campaign(tbl_text, database=database,
                          node_count=node_count, jobs=jobs,
                          backend=backend, tracer=tracer,
                          on_result=on_result, on_progress=on_progress,
                          tbl_source=f"<scenario {name}>",
                          resume=resume, fidelity=fidelity)
    failures = []
    if check:
        failures = check_expectations(
            scenario, report.database.query(scenario=name))
    return ScenarioOutcome(scenario=scenario, report=report,
                           failures=failures)


def open_results(path=None, *, create=True):
    """Open an observation database (``None`` -> in-memory).

    With ``create=False`` a missing file raises :class:`ResultsError`
    instead of silently creating an empty database.
    """
    if isinstance(path, ResultsDatabase):
        return path
    if path is not None and not create \
            and not pathlib.Path(path).exists():
        raise ResultsError(f"no results database at {path}")
    return ResultsDatabase(path)


def trace_report(database, *, experiment=None, limit=20):
    """Render the flight-recorder report of a traced run.

    *database* is a :class:`ResultsDatabase` or a path to one; raises
    :class:`ResultsError` when the run stored no spans (rerun with
    ``--trace`` / a tracer).
    """
    owned = not isinstance(database, ResultsDatabase)
    database = open_results(database, create=False)
    try:
        return render_trace_report(database, experiment_name=experiment,
                                   limit=limit)
    finally:
        if owned:
            database.close()


def serve_campaigns(*, host="127.0.0.1", port=8642, jobs=4, max_active=8,
                    tracer=None, on_ready=None):
    """Run the campaign daemon until interrupted (``repro serve``).

    One shared :class:`~repro.service.WorkerFleet` of *jobs* workers
    executes every submitted campaign under fair-share scheduling;
    *max_active* caps campaigns in flight before submits see
    :class:`~repro.errors.ServiceBusy` backpressure.  Blocks; see
    :class:`repro.service.ServiceDaemon` for the embeddable form.
    """
    from repro.service import serve

    return serve(host=host, port=port, jobs=jobs, max_active=max_active,
                 tracer=tracer, on_ready=on_ready)


def campaign_client(url="http://127.0.0.1:8642", *, timeout=60):
    """A thin client for a running campaign daemon.

    The returned :class:`~repro.service.CampaignClient` speaks the
    daemon's local HTTP API: ``submit``/``status``/``cancel``/
    ``resume``/``wait``/``aggregate``/``shutdown``.
    """
    from repro.service import CampaignClient

    return CampaignClient(url, timeout=timeout)


def _as_database(database, create=True):
    if database is None or isinstance(database, ResultsDatabase):
        return database if database is not None else ResultsDatabase()
    return open_results(database, create=create)


__all__ = [
    "ANALYTIC",
    "AUTO",
    "DES",
    "FIDELITIES",
    "Tracer",
    "as_tracer",
    "campaign_client",
    "check_fidelity",
    "heal_campaign",
    "list_scenarios",
    "open_results",
    "plan_campaign",
    "reproduce_figure",
    "resume_campaign",
    "run_adaptive",
    "run_campaign",
    "run_experiment",
    "run_scenario",
    "serve_campaigns",
    "solve",
    "trace_report",
]
