"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch failures from the whole pipeline with a single handler while still
being able to discriminate the failing stage.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SpecError(ReproError):
    """A specification (MOF or TBL) is syntactically or semantically invalid."""

    def __init__(self, message, line=None, column=None, source=None):
        self.line = line
        self.column = column
        self.source = source
        location = ""
        if source is not None:
            location += f"{source}:"
        if line is not None:
            location += f"{line}"
            if column is not None:
                location += f":{column}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)


class MofError(SpecError):
    """Invalid CIM/MOF input."""


class TblError(SpecError):
    """Invalid Testbed Language input."""


class ValidationError(SpecError):
    """Specs are individually well-formed but mutually inconsistent."""


class GenerationError(ReproError):
    """Mulini could not generate an artifact bundle."""


class TemplateError(GenerationError):
    """A template failed to render (unknown placeholder, bad directive)."""


class ClusterError(ReproError):
    """Virtual-cluster level failure (unknown host, allocation exhausted)."""


class AllocationError(ClusterError):
    """Not enough free nodes to satisfy an experiment topology."""


class ShellError(ReproError):
    """The shell interpreter failed to lex, parse, or execute a script."""

    def __init__(self, message, line=None, script=None):
        self.line = line
        self.script = script
        location = ""
        if script is not None:
            location += f"{script}:"
        if line is not None:
            location += f"{line}"
        if location:
            message = f"{location}: {message}"
        super().__init__(message)


class CommandError(ShellError):
    """A shell builtin was invoked with bad arguments or failed fatally."""


class DeployError(ReproError):
    """Deployment of a generated bundle onto the virtual cluster failed."""


class VerificationError(DeployError):
    """Post-deployment verification found missing processes or files."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A benchmark workload definition is invalid (bad matrix, bad mix)."""


class AnalyticUnsupported(SimulationError):
    """The analytic tier cannot model this trial — DES only.

    Raised for workload regimes the fluid solver has no operating-point
    equation for (bursty/flash-crowd open-loop arrivals).  Typed so
    ``fidelity=auto`` callers can catch it and degrade to DES cleanly
    instead of pattern-matching a message.
    """


class ScenarioError(ReproError):
    """A scenario-table entry is malformed or references an unknown
    scenario name."""


class MonitoringError(ReproError):
    """Monitor output could not be produced or parsed."""


class ResultsError(ReproError):
    """The results database rejected an operation."""


class ExperimentError(ReproError):
    """An experiment could not be executed end to end."""


class TrialFailed(ExperimentError):
    """A trial failed after measurements were taken; recorded as DNF.

    Mirrors the paper's Table 7 'missing squares': experiments that could
    not complete at high load.  Carries the partial measurements so the
    harness can still record what was observed before the failure, and
    the underlying *cause* so the retry policy can classify the failure
    by what actually broke rather than by the wrapper.
    """

    def __init__(self, message, partial=None, cause=None):
        super().__init__(message)
        self.partial = partial
        self.cause = cause


class FaultPlanError(ReproError):
    """A declarative fault plan is malformed (unknown kind, bad rate)."""


class RemedyError(ReproError):
    """The remediation pipeline could not run (no observations to
    diagnose, unknown experiment, malformed heal parameters)."""


class ServiceError(ReproError):
    """The campaign service rejected a request (unknown campaign, bad
    submission, daemon unreachable)."""


class ServiceBusy(ServiceError):
    """The daemon's admission queue is full — backpressure.  Resubmit
    once running campaigns drain."""


class CampaignCancelled(ServiceError):
    """A campaign was cancelled while its trials were still queued or
    running; the shard keeps everything delivered so far, so a
    ``resume`` completes exactly the missing trials."""
