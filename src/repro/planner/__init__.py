"""Observation-driven adaptive campaign planner (the planner plane).

The closed loop the paper's methodology implies: observations steer
which configurations get tried next, instead of exhausting a fixed
grid.  See DESIGN.md §3e.
"""

from repro.planner.frontier import ObservationFrontier, SweepPoint
from repro.planner.loop import (
    AdaptiveOutcome,
    AdaptivePlanner,
    PlanPreview,
    plan_preview,
)
from repro.planner.policy import (
    BudgetedExplorer,
    Decision,
    GridPolicy,
    KneeBisectionPolicy,
    POLICY_NAMES,
    Policy,
    TieredFidelityPolicy,
    TopologyPromotionPolicy,
    make_policy,
)

__all__ = [
    "AdaptiveOutcome",
    "AdaptivePlanner",
    "BudgetedExplorer",
    "Decision",
    "GridPolicy",
    "KneeBisectionPolicy",
    "ObservationFrontier",
    "POLICY_NAMES",
    "PlanPreview",
    "Policy",
    "SweepPoint",
    "TieredFidelityPolicy",
    "TopologyPromotionPolicy",
    "make_policy",
    "plan_preview",
]
