"""Experiment-selection policies: which sweep points to try next.

"When a bottleneck is found (e.g., by the observation of response
times longer than specified by service level objectives), we use
Mulini to generate new experiments with larger configurations"
(Section II).  A :class:`Policy` is that sentence as code: given the
:class:`~repro.planner.frontier.ObservationFrontier`, propose the next
batch of points — and nothing else.  Policies never touch wall clocks
or ambient RNG; every proposal is a function of recorded observations,
so the same policy over the same observations emits the same decision
log at any worker count.

Policies may keep internal walk state (the promotion policy's current
rung, the knee policy's concluded groups) because the adaptive loop
replays identically on resume: state only ever derives from the
observations the frontier fed back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bottleneck import (
    SATURATION_CPU_PERCENT,
    detect_bottleneck,
    slo_violated,
)
from repro.errors import ExperimentError
from repro.sim import ANALYTIC, DES

#: Decision actions the planner records (the ``planner_decisions``
#: table's vocabulary).
MEASURE = "measure"
PRUNE = "prune"
KNEE = "knee"
NO_KNEE = "no-knee"
PROMOTE = "promote"
STOP = "stop"
CONVERGED = "converged"
BUDGET_EXHAUSTED = "budget-exhausted"

#: The policy names the CLI/meta round-trip accepts.
POLICY_NAMES = ("grid", "knee", "promote", "tiered")


@dataclass(frozen=True)
class Decision:
    """One planner decision — a row of the decision log.

    *point* carries the live :class:`SweepPoint` for ``measure``/
    ``prune`` decisions so the loop can act on it; it never persists
    (the topology/workload/write_ratio columns do) and is excluded
    from equality so logs compare by their recorded content alone.
    """

    action: str
    reason: str
    topology: str = None
    workload: int = None
    write_ratio: float = None
    #: which solver tier carries out (or concluded) this decision; part
    #: of the persisted log, so resumed tiered explorations replay the
    #: same analytic/DES split byte for byte.
    fidelity: str = DES
    point: object = field(default=None, compare=False, repr=False)

    @classmethod
    def measure(cls, point, reason, fidelity=DES):
        return cls(action=MEASURE, reason=reason,
                   topology=point.topology.label(),
                   workload=point.workload,
                   write_ratio=point.write_ratio, fidelity=fidelity,
                   point=point)

    @classmethod
    def prune(cls, point, reason, fidelity=DES):
        return cls(action=PRUNE, reason=reason,
                   topology=point.topology.label(),
                   workload=point.workload,
                   write_ratio=point.write_ratio, fidelity=fidelity,
                   point=point)

    @classmethod
    def note(cls, action, reason, topology=None, workload=None,
             write_ratio=None, fidelity=DES):
        return cls(action=action, reason=reason, topology=topology,
                   workload=workload, write_ratio=write_ratio,
                   fidelity=fidelity)

    def describe(self):
        where = ""
        if self.topology is not None:
            where = f" {self.topology}"
            if self.workload is not None:
                where += f" u={self.workload}"
        tier = f" [{self.fidelity}]" if self.fidelity != DES else ""
        return f"{self.action}{where}{tier}: {self.reason}"


class Policy:
    """The policy protocol (also usable as a base class).

    :meth:`propose` returns the next round's :class:`Decision` list;
    an empty-``measure`` round means the policy is done.  Subclasses
    must be deterministic functions of the frontier's observations.
    """

    name = "?"

    def propose(self, frontier):
        raise NotImplementedError


class GridPolicy(Policy):
    """The exhaustive baseline: every unresolved point, one round.

    Reproduces today's fixed-grid campaign behaviour exactly —
    proposals come out in the canonical sweep order
    :meth:`ExperimentDef.points` enumerates, so the executed-trial
    table matches :meth:`ObservationCampaign.run` byte for byte.
    """

    name = "grid"

    def propose(self, frontier):
        return [Decision.measure(point, "exhaustive grid sweep")
                for point in frontier.unresolved()]


class KneeBisectionPolicy(Policy):
    """Bisect each workload ladder to the SLO-violation knee.

    Round one measures each group's lightest and heaviest workloads;
    every later round bisects the bracket between the heaviest known-
    good and lightest known-violating workloads (per
    :func:`~repro.core.bottleneck.slo_violated`; a DNF trial violates
    by definition).  When the bracket closes, the interior points the
    bisection never ran are pruned with their inferred verdicts and a
    ``knee``/``no-knee`` decision concludes the group — the measured
    knee and the largest in-SLO workload are exactly what the full
    grid would have found, at O(log n) trials per ladder.
    """

    name = "knee"

    def __init__(self, slo=None):
        self.slo = slo
        self._concluded = set()

    def propose(self, frontier):
        slo = self.slo if self.slo is not None \
            else frontier.experiment.slo
        decisions = []
        for topology, write_ratio in frontier.groups():
            group_id = (topology.label(), round(write_ratio, 6))
            if group_id in self._concluded:
                continue
            decisions.extend(
                self._group(frontier, topology, write_ratio, slo,
                            group_id))
        return decisions

    def _group(self, frontier, topology, write_ratio, slo, group_id):
        workloads = frontier.workloads()
        points = [frontier.point(topology, w, write_ratio)
                  for w in workloads]
        verdicts = {}
        for index, point in enumerate(points):
            result = frontier.result_at(point)
            if result is not None:
                verdicts[index] = slo_violated(result, slo)
        last = len(workloads) - 1
        proposals = []
        if 0 not in verdicts and not frontier.is_pruned(points[0]):
            proposals.append(Decision.measure(
                points[0], "bisection endpoint (lightest workload)"))
        if last != 0 and last not in verdicts \
                and not frontier.is_pruned(points[last]):
            proposals.append(Decision.measure(
                points[last], "bisection endpoint (heaviest workload)"))
        if proposals:
            return proposals
        highest_pass = max(
            (i for i, violated in verdicts.items() if not violated),
            default=-1)
        lowest_violation = min(
            (i for i, violated in verdicts.items() if violated),
            default=len(workloads))
        if lowest_violation - highest_pass > 1:
            mid = (highest_pass + lowest_violation) // 2
            bracket = (workloads[max(highest_pass, 0)],
                       workloads[min(lowest_violation, last)])
            return [Decision.measure(
                points[mid],
                f"bisect bracket {bracket[0]}..{bracket[1]}")]
        # Bracket closed: conclude the group and prune the points the
        # bisection proved it never needed to run.
        decisions = []
        for index, point in enumerate(points):
            if index in verdicts or frontier.is_pruned(point):
                continue
            if index <= highest_pass:
                reason = (f"inferred in-SLO (below measured pass at "
                          f"u={workloads[highest_pass]})")
            else:
                reason = (f"inferred SLO-violating (above measured "
                          f"violation at u={workloads[lowest_violation]})")
            decisions.append(Decision.prune(point, reason))
        label = topology.label()
        if lowest_violation <= last:
            knee = workloads[lowest_violation]
            decisions.append(Decision.note(
                KNEE,
                f"SLO knee at u={knee} on {label} "
                f"(largest in-SLO workload: "
                f"{workloads[highest_pass] if highest_pass >= 0 else 'none'})",
                topology=label, workload=knee, write_ratio=write_ratio))
        else:
            decisions.append(Decision.note(
                NO_KNEE,
                f"no SLO violation up to u={workloads[last]} on {label}",
                topology=label, workload=None, write_ratio=write_ratio))
        self._concluded.add(group_id)
        return decisions


class TieredFidelityPolicy(Policy):
    """Explore analytically, confirm the knee with DES.

    The fidelity-tier composition the analytic fast path exists for:
    an inner :class:`KneeBisectionPolicy` walks each workload ladder on
    millisecond-cheap analytic solves, and only the knee it lands on is
    re-measured with the DES simulator — the knee (expected to violate
    the SLO) and the largest in-SLO workload (expected to pass).  When
    DES contradicts the analytic verdict the hypothesis walks one
    ladder step in the indicated direction and re-confirms, so the
    concluding ``knee``/``no-knee`` decision is always DES-grounded.
    Confirmation state derives purely from the frontier's observations
    (distinguished by :attr:`TrialResult.fidelity`), so a resumed
    tiered exploration replays the same decision log byte for byte.
    """

    name = "tiered"

    def __init__(self, slo=None):
        self.slo = slo
        self._inner = KneeBisectionPolicy(slo=slo)
        self._confirming = {}        # group_id -> hypothesis dict
        self._concluded = set()

    def propose(self, frontier):
        slo = self.slo if self.slo is not None \
            else frontier.experiment.slo
        decisions = []
        for decision in self._inner.propose(frontier):
            if decision.action == MEASURE:
                decisions.append(Decision.measure(
                    decision.point, decision.reason, fidelity=ANALYTIC))
            elif decision.action == PRUNE:
                decisions.append(Decision.prune(
                    decision.point, decision.reason, fidelity=ANALYTIC))
            elif decision.action in (KNEE, NO_KNEE):
                # The inner policy concluded a group on analytic
                # evidence alone; swallow its verdict and open the DES
                # confirmation for that group instead.
                group_id = (decision.topology,
                            round(decision.write_ratio, 6))
                self._confirming[group_id] = self._hypothesis(
                    frontier, decision)
            else:
                decisions.append(decision)
        for group_id in sorted(self._confirming):
            if group_id in self._concluded:
                continue
            decisions.extend(self._confirm(
                frontier, group_id, self._confirming[group_id], slo))
        return decisions

    def _hypothesis(self, frontier, decision):
        """The analytic conclusion as (knee index, pass index) over the
        workload ladder; either side may be None at the ladder's edge."""
        workloads = frontier.workloads()
        topology = next(t for t in frontier.topologies()
                        if t.label() == decision.topology)
        if decision.action == NO_KNEE:
            return {"topology": topology,
                    "write_ratio": decision.write_ratio,
                    "knee": None, "pass": len(workloads) - 1}
        knee = workloads.index(decision.workload)
        return {"topology": topology,
                "write_ratio": decision.write_ratio,
                "knee": knee, "pass": knee - 1 if knee > 0 else None}

    def _confirm(self, frontier, group_id, state, slo):
        workloads = frontier.workloads()
        last = len(workloads) - 1
        while True:
            targets = []
            if state["knee"] is not None:
                targets.append(("knee", state["knee"], True))
            if state["pass"] is not None:
                targets.append(("pass", state["pass"], False))
            proposals = []
            verdicts = {}
            for role, index, expect in targets:
                point = frontier.point(state["topology"],
                                       workloads[index],
                                       state["write_ratio"])
                result = frontier.result_at(point)
                if result is None or \
                        getattr(result, "fidelity", DES) != DES:
                    if not frontier.is_pending(point):
                        proposals.append(Decision.measure(
                            point,
                            f"DES confirmation of analytic {role} "
                            f"(expect {'violation' if expect else 'pass'})"))
                else:
                    verdicts[role] = slo_violated(result, slo)
            if proposals:
                return proposals
            if len(verdicts) < len(targets):
                return []            # DES measurements still in flight
            # Walk the hypothesis when DES contradicts it; the pass
            # side is checked first so a non-monotonic pair resolves
            # conservatively (toward lighter workloads).
            if state["pass"] is not None and verdicts["pass"]:
                state["knee"] = state["pass"]
                state["pass"] = state["pass"] - 1 \
                    if state["pass"] > 0 else None
                continue
            if state["knee"] is not None and not verdicts["knee"]:
                if state["knee"] == last:
                    state["pass"] = last
                    state["knee"] = None
                else:
                    state["pass"] = state["knee"]
                    state["knee"] = state["knee"] + 1
                continue
            return self._conclude(frontier, group_id, state, workloads)

    def _conclude(self, frontier, group_id, state, workloads):
        self._concluded.add(group_id)
        label = state["topology"].label()
        write_ratio = state["write_ratio"]
        if state["knee"] is None:
            return [Decision.note(
                NO_KNEE,
                f"DES confirms no SLO violation up to "
                f"u={workloads[-1]} on {label} (analytic exploration)",
                topology=label, workload=None, write_ratio=write_ratio)]
        knee = workloads[state["knee"]]
        largest = workloads[state["pass"]] \
            if state["pass"] is not None else "none"
        return [Decision.note(
            KNEE,
            f"DES-confirmed SLO knee at u={knee} on {label} "
            f"(largest in-SLO workload: {largest}; "
            f"explored analytically)",
            topology=label, workload=knee, write_ratio=write_ratio)]


class TopologyPromotionPolicy(Policy):
    """Walk the workload ladder, promoting only the saturated tier.

    The paper's reconfiguration narrative: start from the smallest
    declared topology, raise the workload until the SLO breaks, ask
    :func:`~repro.core.bottleneck.detect_bottleneck` which tier
    saturated, and promote to the smallest declared topology that adds
    servers to exactly that tier — 1-1-1 walking toward 1-12-3 without
    ever measuring a configuration the observations didn't call for.
    Workloads below the violation point are pruned on the promoted
    topology (it dominates the one that carried them), and the old
    topology's heavier workloads are pruned as already-violating.
    """

    name = "promote"

    def __init__(self, slo=None, threshold=SATURATION_CPU_PERCENT):
        self.slo = slo
        self.threshold = threshold
        self._walks = {}

    def propose(self, frontier):
        slo = self.slo if self.slo is not None \
            else frontier.experiment.slo
        decisions = []
        for write_ratio in frontier.write_ratios():
            decisions.extend(self._advance(frontier, write_ratio, slo))
        return decisions

    @staticmethod
    def _ladder(frontier):
        return sorted(frontier.topologies(),
                      key=lambda t: (t.total_servers(), t.label()))

    def _advance(self, frontier, write_ratio, slo):
        ladder = self._ladder(frontier)
        walk = self._walks.setdefault(round(write_ratio, 6), {
            "current": ladder[0],
            "workload_index": 0,
            "visited": {ladder[0].label()},
            "done": False,
        })
        if walk["done"]:
            return []
        workloads = frontier.workloads()
        out = []
        while True:
            current = walk["current"]
            if walk["workload_index"] >= len(workloads):
                out.append(Decision.note(
                    STOP,
                    f"{current.label()} carries the heaviest workload "
                    f"u={workloads[-1]} within SLO; nothing left to "
                    f"promote for",
                    topology=current.label(), workload=workloads[-1],
                    write_ratio=write_ratio))
                walk["done"] = True
                return out
            workload = workloads[walk["workload_index"]]
            point = frontier.point(current, workload, write_ratio)
            result = frontier.result_at(point)
            if result is None:
                if frontier.is_pruned(point):
                    walk["workload_index"] += 1
                    continue
                out.append(Decision.measure(
                    point,
                    f"ascending walk on {current.label()}"))
                return out
            if not slo_violated(result, slo):
                walk["workload_index"] += 1
                continue
            tier = detect_bottleneck(result, self.threshold)
            if tier is None:
                out.append(Decision.note(
                    STOP,
                    f"SLO violated at u={workload} on {current.label()} "
                    f"with no saturated tier; scaling will not help",
                    topology=current.label(), workload=workload,
                    write_ratio=write_ratio))
                walk["done"] = True
                return out
            candidate = next(
                (t for t in ladder
                 if t.label() not in walk["visited"]
                 and t.count(tier) > current.count(tier)
                 and t.dominates(current)),
                None)
            if candidate is None:
                out.append(Decision.note(
                    STOP,
                    f"{tier} tier saturated at u={workload} but the "
                    f"experiment family declares no larger {tier} "
                    f"topology dominating {current.label()}",
                    topology=current.label(), workload=workload,
                    write_ratio=write_ratio))
                walk["done"] = True
                return out
            out.append(Decision.note(
                PROMOTE,
                f"{tier} tier saturated "
                f"({result.tier_cpu(tier):.0f}% CPU) at u={workload}; "
                f"promoting {current.label()} -> {candidate.label()}",
                topology=candidate.label(), workload=workload,
                write_ratio=write_ratio))
            for index in range(walk["workload_index"]):
                lighter = frontier.point(candidate, workloads[index],
                                         write_ratio)
                if not frontier.is_resolved(lighter):
                    out.append(Decision.prune(
                        lighter,
                        f"{current.label()} already carried "
                        f"u={workloads[index]} within SLO"))
            for index in range(walk["workload_index"] + 1,
                               len(workloads)):
                heavier = frontier.point(current, workloads[index],
                                         write_ratio)
                if not frontier.is_resolved(heavier):
                    out.append(Decision.prune(
                        heavier,
                        f"{current.label()} already violates the SLO "
                        f"at u={workload}"))
            walk["visited"].add(candidate.label())
            walk["current"] = candidate
            # Re-test the violating workload on the promoted topology.


class BudgetedExplorer(Policy):
    """Composite wrapping any policy with a hard trial budget.

    The budget counts *trials* (points x repetitions).  Proposals past
    the budget are deferred — never silently dropped: the round that
    hits the wall records a ``budget-exhausted`` decision naming how
    many points were deferred, and the loop stops.  A later
    ``run_adaptive`` with a larger budget (or a grid run) picks up the
    same frontier from the database and finishes the job.
    """

    def __init__(self, policy, budget):
        if budget < 1:
            raise ExperimentError(
                f"planner budget must be at least 1 trial, got {budget}")
        self.policy = policy
        self.budget = budget
        self._spent = 0
        self._exhausted = False

    @property
    def name(self):
        return self.policy.name

    def propose(self, frontier):
        if self._exhausted:
            return []
        decisions = self.policy.propose(frontier)
        repetitions = frontier.experiment.repetitions
        kept = []
        deferred = 0
        for decision in decisions:
            if decision.action != MEASURE:
                kept.append(decision)
                continue
            if self._spent + repetitions > self.budget:
                deferred += 1
                continue
            self._spent += repetitions
            kept.append(decision)
        if deferred:
            kept.append(Decision.note(
                BUDGET_EXHAUSTED,
                f"trial budget {self.budget} exhausted after "
                f"{self._spent} trial(s); {deferred} proposed point(s) "
                f"deferred"))
            self._exhausted = True
        return kept


def make_policy(name, *, slo=None, budget=None):
    """Build a policy from its CLI/meta name (``grid``/``knee``/
    ``promote``), optionally budget-wrapped."""
    if name == "grid":
        policy = GridPolicy()
    elif name == "knee":
        policy = KneeBisectionPolicy(slo=slo)
    elif name == "promote":
        policy = TopologyPromotionPolicy(slo=slo)
    elif name == "tiered":
        policy = TieredFidelityPolicy(slo=slo)
    else:
        raise ExperimentError(
            f"unknown planner policy {name!r}; "
            f"known: {', '.join(POLICY_NAMES)}"
        )
    if budget is not None:
        policy = BudgetedExplorer(policy, budget)
    return policy
