"""The closed loop: propose a batch, execute it, fold results back in.

:class:`AdaptivePlanner` is the subsystem's engine.  Each round it asks
the policy for decisions, applies the prunes to the frontier, expands
the measures into :class:`~repro.experiments.scheduler.TrialTask`
batches (repetitions included, task indices cumulative across rounds),
hands them to an ``execute`` callback supplied by the campaign layer,
and feeds the observed results back.  The loop itself holds no policy
logic and no I/O — determinism lives here by omission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.scheduler import TrialTask
from repro.planner.frontier import ObservationFrontier
from repro.planner.policy import (
    BUDGET_EXHAUSTED,
    CONVERGED,
    KNEE,
    MEASURE,
    NO_KNEE,
    PRUNE,
    Decision,
)

#: Hard stop against a policy that never converges.  A policy that is a
#: pure function of observations can propose at most one round per
#: unresolved point, so any correct policy finishes well under this.
MAX_ROUNDS = 10_000


@dataclass
class AdaptiveOutcome:
    """What an adaptive exploration did and concluded."""

    experiment: object
    policy_name: str
    rounds: int = 0
    executed: int = 0            # trials actually run (incl. repetitions)
    proposed_points: int = 0     # distinct points the policy measured
    pruned_points: int = 0
    converged: bool = False
    budget_exhausted: bool = False
    decisions: list = field(default_factory=list)
    knees: list = field(default_factory=list)   # knee/no-knee Decisions

    def universe_size(self):
        return self.experiment.point_count()

    def savings_ratio(self):
        """Fraction of the grid's trials this exploration skipped."""
        grid = self.universe_size() * self.experiment.repetitions
        if grid == 0:
            return 0.0
        return 1.0 - (self.executed / grid)

    def describe(self):
        verdict = "converged" if self.converged else (
            "budget exhausted" if self.budget_exhausted else "stopped")
        return (f"policy={self.policy_name} rounds={self.rounds} "
                f"trials={self.executed}/"
                f"{self.universe_size() * self.experiment.repetitions} "
                f"pruned={self.pruned_points} ({verdict})")


@dataclass(frozen=True)
class PlanPreview:
    """A dry-run of a policy's first round (``repro explore --dry-run``)."""

    experiment_name: str
    policy_name: str
    universe: int
    repetitions: int
    decisions: tuple

    def describe(self):
        measures = sum(1 for d in self.decisions if d.action == MEASURE)
        lines = [
            f"experiment {self.experiment_name!r}: "
            f"{self.universe} sweep point(s) x {self.repetitions} "
            f"repetition(s)",
            f"policy {self.policy_name!r} first round: "
            f"{measures} point(s) to measure",
        ]
        lines.extend(f"  {d.describe()}" for d in self.decisions)
        return "\n".join(lines)


class AdaptivePlanner:
    """Run one experiment family's closed exploration loop.

    The *execute* callback receives the round's tasks and must return
    their :class:`TrialResult`\\ s aligned index-for-index — the
    campaign layer owns scheduling, persistence, and resume; the
    planner only decides what to run next.
    """

    def __init__(self, experiment, policy, *, tracer=None):
        self.experiment = experiment
        self.policy = policy
        self.tracer = tracer
        self.frontier = ObservationFrontier(experiment)

    def run(self, execute, *, on_round=None):
        outcome = AdaptiveOutcome(experiment=self.experiment,
                                  policy_name=self.policy.name)
        next_index = 0
        for round_no in range(1, MAX_ROUNDS + 1):
            decisions = list(self.policy.propose(self.frontier))
            measures = []
            for decision in decisions:
                if decision.action == MEASURE:
                    measures.append(decision)
                elif decision.action == PRUNE:
                    self.frontier.prune(decision.point, decision.reason)
                    outcome.pruned_points += 1
                elif decision.action in (KNEE, NO_KNEE):
                    outcome.knees.append(decision)
                elif decision.action == BUDGET_EXHAUSTED:
                    outcome.budget_exhausted = True
            if not measures:
                if not outcome.budget_exhausted:
                    decisions.append(Decision.note(
                        CONVERGED,
                        f"frontier resolved after {outcome.executed} "
                        f"trial(s); nothing left to propose"))
                    outcome.converged = True
                outcome.rounds = round_no
                outcome.decisions.extend(decisions)
                self._count(decisions)
                if on_round is not None:
                    on_round(round_no, decisions)
                break
            tasks = []
            for decision in measures:
                point = decision.point
                self.frontier.mark_pending(point)
                for repetition in range(self.experiment.repetitions):
                    tasks.append(TrialTask(
                        index=next_index,
                        experiment=self.experiment,
                        topology=point.topology,
                        workload=point.workload,
                        write_ratio=point.write_ratio,
                        repetition=repetition,
                        fidelity=decision.fidelity,
                    ))
                    next_index += 1
            outcome.rounds = round_no
            outcome.proposed_points += len(measures)
            outcome.decisions.extend(decisions)
            self._count(decisions)
            if on_round is not None:
                on_round(round_no, decisions)
            results = execute(tasks)
            if len(results) != len(tasks):
                raise RuntimeError(
                    f"planner round {round_no}: execute returned "
                    f"{len(results)} result(s) for {len(tasks)} task(s)")
            outcome.executed += len(tasks)
            for decision, task, result in zip(
                    (d for d in measures
                     for _ in range(self.experiment.repetitions)),
                    tasks, results):
                if task.repetition == 0:
                    self.frontier.observe(decision.point, result)
        else:
            raise RuntimeError(
                f"planner did not converge within {MAX_ROUNDS} rounds "
                f"(policy {self.policy.name!r})")
        return outcome

    def _count(self, decisions):
        if self.tracer is None:
            return
        self.tracer.count("planner.rounds")
        for decision in decisions:
            if decision.action == MEASURE:
                self.tracer.count("planner.points_proposed")
            elif decision.action == PRUNE:
                self.tracer.count("planner.points_pruned")


def plan_preview(experiment, policy):
    """Dry-run *policy*'s first round against an empty frontier."""
    frontier = ObservationFrontier(experiment)
    decisions = tuple(policy.propose(frontier))
    return PlanPreview(
        experiment_name=experiment.name,
        policy_name=policy.name,
        universe=len(frontier.universe),
        repetitions=experiment.repetitions,
        decisions=decisions,
    )
