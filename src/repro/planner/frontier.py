"""The planner's world model: what is measured, pending, or pruned.

An :class:`ObservationFrontier` is the planner plane's bookkeeping over
one experiment family's sweep universe — every ``(topology, workload,
write_ratio)`` point the TBL spec declares.  Policies read the frontier
(never the database) when proposing the next batch, so a decision is a
pure function of recorded observations: rebuild the frontier from the
same observations and every policy proposes the same points again,
which is what makes ``repro resume`` of a killed adaptive campaign
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError


@dataclass(frozen=True)
class SweepPoint:
    """One point of the experiment universe (repetitions excluded)."""

    topology: object            # spec.topology.Topology
    workload: int
    write_ratio: float

    def key(self):
        """The point's identity, matching :meth:`TrialResult.key`."""
        return (self.topology.label(), self.workload,
                round(self.write_ratio, 6))

    def describe(self):
        return (f"{self.topology.label()} u={self.workload} "
                f"wr={self.write_ratio:.0%}")


class ObservationFrontier:
    """Measured / pending / pruned state over one experiment's universe.

    The universe is fixed at construction (the TBL sweep); the frontier
    only ever *classifies* points, it never invents new ones — the
    observational stance: an adaptive campaign explores a subset of the
    grid campaign's points, so its every trial is one the grid would
    also have run.
    """

    def __init__(self, experiment):
        self.experiment = experiment
        self.universe = tuple(
            SweepPoint(topology, workload, write_ratio)
            for topology, workload, write_ratio in experiment.points()
        )
        self._by_key = {point.key(): point for point in self.universe}
        self._measured = {}          # key -> TrialResult (repetition 0)
        self._pruned = {}            # key -> reason
        self._pending = set()        # keys proposed but not yet observed

    # -- universe ----------------------------------------------------------

    def point(self, topology, workload, write_ratio):
        """The universe point at these coordinates."""
        key = (topology.label(), workload, round(write_ratio, 6))
        try:
            return self._by_key[key]
        except KeyError:
            raise ExperimentError(
                f"{key} is not a sweep point of experiment "
                f"{self.experiment.name!r}"
            ) from None

    def topologies(self):
        """Unique topologies in spec declaration order."""
        seen = []
        for topology in self.experiment.topologies:
            if topology not in seen:
                seen.append(topology)
        return seen

    def workloads(self):
        """The workload ladder, ascending."""
        return sorted(set(self.experiment.workloads))

    def write_ratios(self):
        """Unique write ratios in spec declaration order."""
        seen = []
        for ratio in self.experiment.write_ratios:
            if ratio not in seen:
                seen.append(ratio)
        return seen

    def groups(self):
        """``(topology, write_ratio)`` series, in canonical sweep order.

        A group is one response-time-vs-workload curve — the unit the
        knee policy bisects and the promotion policy walks.
        """
        return [(topology, ratio)
                for topology in self.topologies()
                for ratio in self.write_ratios()]

    # -- state transitions -------------------------------------------------

    def mark_pending(self, point):
        self._pending.add(point.key())

    def observe(self, point, result):
        """Fold one observed trial back into the frontier."""
        key = point.key()
        self._pending.discard(key)
        self._measured[key] = result

    def prune(self, point, reason):
        """Mark a point as skippable (its verdict is inferable)."""
        key = point.key()
        if key not in self._measured:
            self._pruned.setdefault(key, reason)

    # -- queries -----------------------------------------------------------

    def result_at(self, point):
        """The observed trial at *point*, or None."""
        return self._measured.get(point.key())

    def is_measured(self, point):
        return point.key() in self._measured

    def is_pruned(self, point):
        return point.key() in self._pruned

    def is_pending(self, point):
        return point.key() in self._pending

    def is_resolved(self, point):
        """Measured or pruned — nothing left to learn here."""
        key = point.key()
        return key in self._measured or key in self._pruned

    def unresolved(self):
        """Universe points still worth proposing, in canonical order."""
        return [point for point in self.universe
                if not self.is_resolved(point)
                and not self.is_pending(point)]

    def measured_count(self):
        return len(self._measured)

    def pruned_count(self):
        return len(self._pruned)

    def pruned_reasons(self):
        """``{point key: reason}`` for every pruned point."""
        return dict(self._pruned)

    def describe(self):
        return (f"{len(self.universe)} points: "
                f"{len(self._measured)} measured, "
                f"{len(self._pruned)} pruned, "
                f"{len(self._pending)} pending")
