"""Expectation checking: did the observation land in the asserted range?

A scenario's ``expects`` dict is the executable half of its
description.  :func:`check_expectations` turns stored trial rows back
into the scenario's verdicts — SLO knee, violation flag, peak open-loop
backlog — and returns human-readable failures for every range missed.
An empty list is the pass signal the CLI and the CI smoke job key off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bottleneck import slo_violated
from repro.spec.tbl.ast import ServiceLevelObjective


def scenario_slo(scenario):
    """The :class:`ServiceLevelObjective` a scenario's trials face."""
    return ServiceLevelObjective(
        response_time=scenario.slo_response_ms / 1000.0,
        error_ratio=scenario.slo_error_ratio,
    )


def measured_knee(results, slo):
    """The largest workload whose trial met the SLO (0: none did).

    The paper reads knees off increasing-workload ladders; this is the
    same read on stored rows, usable on any database the scenario's
    trials landed in.
    """
    knee = 0
    for result in results:
        if result.workload > knee and not slo_violated(result, slo):
            knee = result.workload
    return knee


def check_expectations(scenario, results):
    """Failure strings for every expectation *results* missed.

    *results* are the scenario's stored :class:`TrialResult` rows
    (``database.query(scenario=name)``).  Returns ``[]`` when every
    asserted range holds.
    """
    if not results:
        return [f"{scenario.name}: no trials recorded"]
    failures = []
    expects = scenario.expects
    slo = scenario_slo(scenario)
    knee = measured_knee(results, slo)
    if "knee_min" in expects and knee < expects["knee_min"]:
        failures.append(
            f"{scenario.name}: knee at {knee} users, expected "
            f">= {expects['knee_min']}")
    if "knee_max" in expects and knee > expects["knee_max"]:
        failures.append(
            f"{scenario.name}: knee at {knee} users, expected "
            f"<= {expects['knee_max']}")
    if "slo_violation" in expects:
        violated = any(slo_violated(r, slo) for r in results)
        if violated != bool(expects["slo_violation"]):
            failures.append(
                f"{scenario.name}: expected "
                f"{'an' if expects['slo_violation'] else 'no'} SLO "
                f"violation, observed "
                f"{'one' if violated else 'none'}")
    if "max_backlog_min" in expects:
        backlog = max(
            (getattr(r.metrics, "backlog", 0) for r in results), default=0)
        if backlog < expects["max_backlog_min"]:
            failures.append(
                f"{scenario.name}: peak backlog {backlog}, expected "
                f">= {expects['max_backlog_min']}")
    return failures


@dataclass
class ScenarioOutcome:
    """What ``repro scenarios run`` hands back: the campaign report
    plus the expectation verdicts."""

    scenario: object
    report: object
    failures: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures

    def describe(self):
        lines = [f"scenario {self.scenario.name}: "
                 f"{'expectations met' if self.ok else 'FAILED'}"]
        lines.extend(f"  {failure}" for failure in self.failures)
        return "\n".join(lines)
