"""The Scenario record: one named operating condition, declaratively.

A scenario fixes everything the paper's sweep axes do not: how servers
are consolidated onto physical hosts, what arrival process offers the
load (closed loop when ``arrival`` is ``None``), which workload ladder
and mix to sweep, and — crucially — what the operator *expects* the
observation to show, as checkable ranges.  Adding a scenario to the
plane is a data edit in :mod:`repro.scenarios.table`; no code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScenarioError, WorkloadError
from repro.workloads.arrivals import ArrivalSpec

#: Expectation keys :func:`repro.scenarios.check.check_expectations`
#: understands; anything else in a table entry is a typo caught at
#: import time, not a silently-ignored assertion.
KNOWN_EXPECTATIONS = (
    "knee_min",          # measured SLO knee (users) is at least this
    "knee_max",          # ... and at most this
    "slo_violation",     # True: some trial must violate; False: none may
    "max_backlog_min",   # peak open-loop backlog reaches at least this
)


@dataclass(frozen=True)
class Scenario:
    """One row of the scenario matrix.

    ``arrival`` is the plain-dict form of an
    :class:`~repro.workloads.arrivals.ArrivalSpec` (``None`` keeps the
    paper's closed-loop driver); ``expects`` maps
    :data:`KNOWN_EXPECTATIONS` keys to the asserted ranges.
    """

    name: str
    description: str
    topology: str = "1-1-1"
    consolidation: int = 1
    arrival: dict = None
    workloads: tuple = (50, 100, 150, 200, 250)
    write_ratio: float = 0.15
    think_time: float = 7.0
    warmup: float = 30.0
    run: float = 120.0
    cooldown: float = 10.0
    slo_response_ms: float = 2000.0
    slo_error_ratio: float = 0.10
    seed: int = 7
    expects: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ScenarioError("scenario needs a non-empty name")
        if self.consolidation < 1:
            raise ScenarioError(
                f"{self.name}: consolidation must be >= 1, "
                f"got {self.consolidation}")
        if not self.workloads:
            raise ScenarioError(f"{self.name}: empty workload ladder")
        for workload in self.workloads:
            if not isinstance(workload, int) or workload < 1:
                raise ScenarioError(
                    f"{self.name}: workloads must be positive integers, "
                    f"got {workload!r}")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ScenarioError(
                f"{self.name}: write_ratio outside [0, 1]: "
                f"{self.write_ratio}")
        if self.arrival is not None:
            try:
                ArrivalSpec.from_dict(self.arrival)
            except WorkloadError as error:
                raise ScenarioError(f"{self.name}: {error}") from None
        unknown = set(self.expects) - set(KNOWN_EXPECTATIONS)
        if unknown:
            raise ScenarioError(
                f"{self.name}: unknown expectation(s) {sorted(unknown)}; "
                f"known: {list(KNOWN_EXPECTATIONS)}")

    def arrival_spec(self):
        """The validated :class:`ArrivalSpec`, or ``None`` (closed loop)."""
        if self.arrival is None:
            return None
        return ArrivalSpec.from_dict(self.arrival)

    @classmethod
    def from_dict(cls, data):
        """Build from a plain table entry; unknown keys are errors."""
        data = dict(data)
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ScenarioError(
                f"scenario {data.get('name', '?')!r}: unknown field(s) "
                f"{sorted(unknown)}")
        if "workloads" in data:
            data["workloads"] = tuple(data["workloads"])
        return cls(**data)
