"""The scenario plane: a declarative matrix of operating conditions.

``repro scenarios list`` shows the matrix; ``repro scenarios run
<name>`` compiles one row to TBL text, runs it through the ordinary
campaign plane, and checks the row's expected ranges against the
stored observations.  See :mod:`repro.scenarios.table` for the data —
adding a scenario is one table entry, no code.
"""

from __future__ import annotations

from repro.errors import ScenarioError
from repro.scenarios.check import (
    ScenarioOutcome,
    check_expectations,
    measured_knee,
    scenario_slo,
)
from repro.scenarios.compiler import compile_scenario
from repro.scenarios.model import KNOWN_EXPECTATIONS, Scenario
from repro.scenarios.table import SCENARIOS


def list_scenarios():
    """Every scenario in the matrix, in table order."""
    return [Scenario.from_dict(entry) for entry in SCENARIOS]


def get_scenario(name):
    """The named scenario; unknown names raise :class:`ScenarioError`."""
    for entry in SCENARIOS:
        if entry["name"] == name:
            return Scenario.from_dict(entry)
    known = ", ".join(entry["name"] for entry in SCENARIOS)
    raise ScenarioError(f"unknown scenario {name!r}; known: {known}")


__all__ = [
    "KNOWN_EXPECTATIONS",
    "SCENARIOS",
    "Scenario",
    "ScenarioError",
    "ScenarioOutcome",
    "check_expectations",
    "compile_scenario",
    "get_scenario",
    "list_scenarios",
    "measured_knee",
    "scenario_slo",
]
