"""The scenario matrix — the data, nothing else.

Every entry is a plain dict matching :class:`repro.scenarios.Scenario`;
adding a scenario means adding one entry here (and nothing anywhere
else).  The expected ranges are calibrated against the deterministic
simulator at the recorded seed: they are assertions the CI smoke job
and ``repro scenarios run`` check after every run, so a change that
moves a knee or stops a flash crowd from backlogging fails loudly.

The first two entries are the scenario plane's headline observation:
the *same* 1-1-1 topology under the *same* closed-loop ladder sustains
the full 240-user rung dedicated but breaks its 500 ms objective at 200
when every server shares a physical host with a cotenant — the
interference-shifted knee of the virtualized-consolidation studies in
PAPERS.md.
"""

from __future__ import annotations

SCENARIOS = (
    {
        "name": "dedicated-baseline",
        "description": "closed-loop 1-1-1 ladder, one server per "
                       "physical host (the paper's default placement)",
        "topology": "1-1-1",
        "workloads": (40, 80, 120, 160, 200, 240),
        "slo_response_ms": 500.0,
        "expects": {"knee_min": 240},
    },
    {
        "name": "consolidated-2x",
        "description": "the same ladder with two servers per physical "
                       "host; cotenant interference shifts the knee left",
        "topology": "1-1-1",
        "consolidation": 2,
        "workloads": (40, 80, 120, 160, 200, 240),
        "slo_response_ms": 500.0,
        "expects": {"knee_min": 160, "knee_max": 200},
    },
    {
        "name": "diurnal-open-loop",
        "description": "open-loop diurnal sinusoid at a rate the system "
                       "sustains; no backlog, no SLO violation",
        "topology": "1-1-1",
        "arrival": {"kind": "diurnal", "amplitude": 0.4, "period": 60.0,
                    "session_length": 2},
        "workloads": (60,),
        "expects": {"slo_violation": False},
    },
    {
        "name": "flash-crowd-slo",
        "description": "open-loop flash crowd (6x step) over an "
                       "otherwise comfortable rate; the crowd outruns "
                       "capacity, queues grow, the SLO breaks",
        "topology": "1-1-1",
        "arrival": {"kind": "flash", "at": 0.6, "duty": 0.4,
                    "burst": 6.0},
        "workloads": (120,),
        "expects": {"slo_violation": True, "max_backlog_min": 100},
    },
    {
        "name": "consolidated-burst",
        "description": "MMPP-style bursty arrivals on a 2x-consolidated "
                       "host: interference and burstiness compound",
        "topology": "1-1-1",
        "consolidation": 2,
        "arrival": {"kind": "bursty", "period": 40.0, "burst": 3.0,
                    "duty": 0.25},
        "workloads": (80,),
        "slo_response_ms": 400.0,
        "expects": {"slo_violation": True},
    },
)
