"""Compile a Scenario into the campaign plane's native input: TBL text.

The scenario knobs (``scenario``/``consolidation``/``arrival``) are
first-class TBL settings, so compilation is a rendering step, not a new
execution path: the emitted text goes through the same parser, campaign
runner, resume checkpoint, and service wire as a hand-written spec.
That is what makes scenario identity survive kill+resume and daemon
submission for free — the TBL text *is* the scenario.
"""

from __future__ import annotations

from repro.spec.tbl import parse as parse_tbl
from repro.spec.tbl.writer import _render_arrival


def compile_scenario(scenario):
    """TBL text for one :class:`~repro.scenarios.Scenario`.

    The output always parses (it is validated here before being
    returned) and round-trips the scenario's identity: the experiment
    carries ``scenario "<name>";`` so every stored trial row, run card,
    and trace report records which matrix row produced it.
    """
    lines = [
        "benchmark rubis;",
        "platform emulab;",
        "",
        f'experiment "{scenario.name}" {{',
        f"    topology {scenario.topology};",
        f"    workload {', '.join(str(w) for w in scenario.workloads)};",
        f"    write_ratio {scenario.write_ratio * 100:g}%;",
        f"    think_time {scenario.think_time:g}s;",
        f"    trial {{ warmup {scenario.warmup:g}s; "
        f"run {scenario.run:g}s; cooldown {scenario.cooldown:g}s; }}",
        f"    slo {{ response_time {scenario.slo_response_ms:g}ms; "
        f"error_ratio {scenario.slo_error_ratio * 100:g}%; }}",
        f"    seed {scenario.seed};",
        f'    scenario "{scenario.name}";',
    ]
    if scenario.consolidation > 1:
        lines.append(f"    consolidation {scenario.consolidation};")
    arrival = scenario.arrival_spec()
    if arrival is not None:
        lines.extend(_render_arrival(arrival))
    lines.append("}")
    text = "\n".join(lines) + "\n"
    parse_tbl(text, source=f"<scenario {scenario.name}>")
    return text
