"""The campaign controller: campaigns as schedulable service units.

A :class:`CampaignController` is the daemon's brain.  It accepts
campaign submissions (fixed-grid or adaptive), runs each accepted
campaign on the shared :class:`~repro.service.fleet.WorkerFleet` under
its own tenant id, lands every campaign's rows in a private shard
database, and — on completion — merges the shard into the campaign's
final database, byte-identical to what a sequential CLI run of the same
spec would have produced.

Lifecycle of one campaign::

    submit -> running -> done
                  |         (cancel)    -> cancelled --+
                  |         (trial err) -> failed   ---+-> resume
                  |                                        |
                  +-- shard checkpoints every delivered trial
                      (kill the daemon; the shard survives; a
                       resubmit with resume finds it) <----+

Backpressure is explicit: more than *max_active* campaigns in flight
and ``submit`` raises :class:`~repro.errors.ServiceBusy` instead of
queueing unboundedly — the client retries when a slot frees.
"""

from __future__ import annotations

import os
import threading

from repro.core.campaign import (
    META_FIDELITY,
    META_PLANNER_BUDGET,
    META_PLANNER_EXPERIMENT,
    META_PLANNER_POLICY,
    META_TBL,
    ObservationCampaign,
)
from repro.errors import (
    CampaignCancelled,
    ResultsError,
    ServiceBusy,
    ServiceError,
)
from repro.obs.tracer import as_tracer
from repro.results.database import ResultsDatabase, merge_shards, shard_path
from repro.service.aggregate import StreamingAggregator
from repro.service.fleet import WorkerFleet
from repro.sim import DES

#: The states a campaign record moves through.
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"
CAMPAIGN_STATES = (RUNNING, DONE, CANCELLED, FAILED)
_TERMINAL = (DONE, CANCELLED, FAILED)


class CampaignRecord:
    """One campaign the controller has accepted — its submission
    parameters, its live state, and its outcome."""

    def __init__(self, campaign_id, submission):
        self.campaign_id = campaign_id
        self.submission = submission      # the submit() kwargs, verbatim
        self.state = RUNNING
        self.error = None
        self.summary = None               # CampaignReport.summary()
        self.trials = 0
        self.skipped = 0
        self.cache_stats = {}
        self.cancel_requested = False
        self.thread = None

    @property
    def db_path(self):
        return self.submission["db_path"]

    def to_dict(self):
        """The record as the status API serves it."""
        sub = self.submission
        return {
            "id": self.campaign_id,
            "kind": sub.get("kind", "campaign"),
            "state": self.state,
            "db_path": sub["db_path"],
            "jobs": sub["jobs"],
            "policy": sub.get("policy"),
            "resume": sub.get("resume", False),
            "fidelity": sub.get("fidelity"),
            "trials": self.trials,
            "skipped": self.skipped,
            "summary": self.summary,
            "error": self.error,
            "cache_stats": self.cache_stats,
        }


class CampaignController:
    """Runs submitted campaigns on one shared fleet, one shard each."""

    def __init__(self, *, jobs=4, max_active=8, tracer=None,
                 aggregator=None):
        self.fleet = WorkerFleet(jobs=jobs, tracer=tracer)
        self.aggregator = aggregator if aggregator is not None \
            else StreamingAggregator()
        self.tracer = as_tracer(tracer)
        self.max_active = max_active
        self._lock = threading.Condition()
        self._records = {}               # campaign_id -> CampaignRecord
        self._next_id = 1
        self._closed = False

    # -- the service API ---------------------------------------------------

    def submit(self, tbl_text=None, *, db_path, mof_text=None,
               node_count=36, jobs=1, experiments=None, policy=None,
               budget=None, experiment=None, faults=None, retry=None,
               replace=True, resume=False, tracer=None, fidelity=None):
        """Accept a campaign; returns its campaign id immediately.

        *db_path* is where the final database lands (required — a
        daemon's output must outlive it).  *jobs* is the campaign's
        worker ceiling on the shared fleet, not a private pool size.
        *policy* switches the campaign to an adaptive exploration
        (with optional *budget* and target *experiment*); without it
        the fixed grid (optionally restricted to *experiments*) runs.
        *fidelity* picks the campaign's solver tier (``"des"``,
        ``"analytic"``, or ``"auto"`` for tiered explorations); a
        resume with ``fidelity=None`` recovers the tier from the
        checkpoint's ``campaign_meta``.  Analytic trials run on the
        fleet's fast lane, so they never queue behind DES work.

        ``resume=True`` continues from whatever checkpoint exists: a
        leftover shard from a killed daemon, or the trials already
        merged into *db_path* by an earlier run.  *tbl_text* may then
        be ``None`` — the identity is recovered from the checkpoint's
        ``campaign_meta``.

        Raises :class:`ServiceBusy` when *max_active* campaigns are
        already in flight.
        """
        submission = {
            "tbl_text": tbl_text, "db_path": os.fspath(db_path),
            "mof_text": mof_text, "node_count": node_count, "jobs": jobs,
            "experiments": experiments, "policy": policy, "budget": budget,
            "experiment": experiment, "faults": faults, "retry": retry,
            "replace": replace, "resume": resume, "tracer": tracer,
            "fidelity": fidelity,
        }
        if tbl_text is None and not resume:
            raise ServiceError(
                "submit needs tbl_text (or resume=True with a "
                "checkpointed db_path)")
        with self._lock:
            if self._closed:
                raise ServiceError("controller is shut down")
            active = sum(1 for r in self._records.values()
                         if r.state == RUNNING)
            if active >= self.max_active:
                raise ServiceBusy(
                    f"{active} campaign(s) already in flight "
                    f"(max_active={self.max_active}); retry when one "
                    f"finishes")
            campaign_id = f"c{self._next_id:03d}"
            self._next_id += 1
            record = CampaignRecord(campaign_id, submission)
            self._records[campaign_id] = record
            record.thread = threading.Thread(
                target=self._run_campaign, args=(record,),
                name=f"campaign-{campaign_id}", daemon=True)
            record.thread.start()
        self.tracer.count("service.campaigns_submitted", 1)
        return campaign_id

    def status(self, campaign_id=None):
        """One campaign's record, or the whole service's state."""
        with self._lock:
            if campaign_id is not None:
                return self._record(campaign_id).to_dict()
            campaigns = {cid: record.to_dict()
                         for cid, record in self._records.items()}
        return {
            "campaigns": campaigns,
            "fleet": self.fleet.stats(),
            "aggregate": self.aggregator.snapshot(),
        }

    def cancel(self, campaign_id):
        """Stop a running campaign; its shard keeps every delivered
        trial, so a later ``resume`` finishes exactly the rest."""
        with self._lock:
            record = self._record(campaign_id)
            record.cancel_requested = True
        self.fleet.cancel(campaign_id)
        self.tracer.count("service.campaigns_cancelled", 1)

    def resume(self, campaign_id=None, *, db_path=None, jobs=None):
        """Restart an interrupted campaign; returns the campaign id.

        Two forms: *campaign_id* resumes a cancelled/failed record this
        controller still holds (same id, same parameters); *db_path*
        resumes from a checkpoint on disk — the killed-daemon path,
        where no record survives and the campaign's identity comes from
        the shard's (or final database's) ``campaign_meta``.
        """
        if campaign_id is not None:
            with self._lock:
                record = self._record(campaign_id)
                if record.state not in (CANCELLED, FAILED):
                    raise ServiceError(
                        f"campaign {campaign_id!r} is {record.state}; "
                        f"only cancelled or failed campaigns resume")
                submission = dict(record.submission)
            submission["resume"] = True
            if jobs is not None:
                submission["jobs"] = jobs
            with self._lock:
                if self._closed:
                    raise ServiceError("controller is shut down")
                record.submission = submission
                record.state = RUNNING
                record.error = None
                record.cancel_requested = False
                record.thread = threading.Thread(
                    target=self._run_campaign, args=(record,),
                    name=f"campaign-{campaign_id}", daemon=True)
                record.thread.start()
            self.tracer.count("service.campaigns_resumed", 1)
            return campaign_id
        if db_path is None:
            raise ServiceError("resume needs a campaign_id or a db_path")
        return self.submit(db_path=db_path, resume=True,
                           jobs=jobs if jobs is not None else 1)

    def heal(self, campaign_id=None, *, db_path=None, jobs=1,
             budget=None, rounds=None, target=None, experiment=None,
             tracer=None):
        """Diagnose and auto-remediate a campaign database in place.

        Two forms mirror :meth:`resume`: *campaign_id* heals a campaign
        this controller ran (waiting for it to reach ``done`` first, so
        a running campaign that trips a diagnosis can queue its own
        heal); *db_path* heals any campaign database on disk.  Returns
        the heal's record id immediately — :meth:`wait` on it like any
        campaign.  *budget*/*rounds*/*target*/*experiment* pass through
        to :func:`repro.remedy.heal_campaign`.
        """
        after = None
        if campaign_id is not None:
            with self._lock:
                db_path = self._record(campaign_id).db_path
            after = campaign_id
        if db_path is None:
            raise ServiceError("heal needs a campaign_id or a db_path")
        submission = {
            "kind": "heal", "after": after,
            "db_path": os.fspath(db_path), "jobs": jobs,
            "budget": budget, "rounds": rounds, "target": target,
            "experiment": experiment, "tracer": tracer,
        }
        with self._lock:
            if self._closed:
                raise ServiceError("controller is shut down")
            active = sum(1 for r in self._records.values()
                         if r.state == RUNNING)
            if active >= self.max_active:
                raise ServiceBusy(
                    f"{active} campaign(s) already in flight "
                    f"(max_active={self.max_active}); retry when one "
                    f"finishes")
            heal_id = f"h{self._next_id:03d}"
            self._next_id += 1
            record = CampaignRecord(heal_id, submission)
            self._records[heal_id] = record
            record.thread = threading.Thread(
                target=self._run_heal, args=(record,),
                name=f"heal-{heal_id}", daemon=True)
            record.thread.start()
        self.tracer.count("service.heals_submitted", 1)
        return heal_id

    def wait(self, campaign_id, timeout=None):
        """Block until the campaign reaches a terminal state; returns
        its record dict.  ``None`` on timeout."""
        with self._lock:
            record = self._record(campaign_id)
            while record.state not in _TERMINAL:
                if not self._lock.wait(timeout=timeout):
                    return None
            return record.to_dict()

    def shutdown(self, *, abort=False):
        """Stop the controller.  Graceful (default) waits for running
        campaigns to finish; ``abort=True`` is the kill switch — queued
        trials are dropped and every running campaign is left as a
        shard checkpoint a resume will complete."""
        with self._lock:
            self._closed = True
            threads = [r.thread for r in self._records.values()
                       if r.thread is not None and r.thread.is_alive()]
            if abort:
                for record in self._records.values():
                    if record.state == RUNNING:
                        record.cancel_requested = True
        if abort:
            for record in list(self._records.values()):
                self.fleet.cancel(record.campaign_id)
        for thread in threads:
            thread.join(timeout=30)
        self.fleet.close()

    # -- execution ---------------------------------------------------------

    def _record(self, campaign_id):
        record = self._records.get(campaign_id)
        if record is None:
            raise ServiceError(f"unknown campaign {campaign_id!r}")
        return record

    def _run_campaign(self, record):
        """One campaign's controller thread: shard, lease, run, merge."""
        sub = record.submission
        cid = record.campaign_id
        shard = None
        lease = None
        try:
            shard = self._open_shard(sub)
            campaign = self._build_campaign(sub, shard, cid)
            lease = self.fleet.attach(cid, campaign._worker_runner,
                                      ceiling=sub["jobs"])
            with self._lock:
                if record.cancel_requested:
                    lease.cancel()
            report = self._execute(campaign, sub, lease,
                                   self.aggregator.tap(cid))
            self._finalize(record, shard, report)
            shard = None                 # _finalize closed and removed it
        except CampaignCancelled as error:
            self._settle(record, CANCELLED, str(error))
        except Exception as error:       # noqa: BLE001 — the record is
            # the daemon's error channel; nothing above this frame.
            self._settle(record, FAILED, f"{type(error).__name__}: {error}")
        finally:
            if lease is not None:
                lease.close()
            if shard is not None:
                shard.close()

    def _open_shard(self, sub):
        """The campaign's private shard database, next to its final
        path.  Resume picks up a leftover shard; a resume with no shard
        (the campaign already merged) restarts from the final database
        copied back into a fresh shard."""
        path = shard_path(sub["db_path"])
        if sub["resume"] and not os.path.exists(path) \
                and os.path.exists(sub["db_path"]):
            final = ResultsDatabase(sub["db_path"])
            try:
                shard = ResultsDatabase(path)
                shard.absorb_shard(final)
                return shard
            finally:
                final.close()
        if sub["resume"] and not os.path.exists(path) \
                and not os.path.exists(sub["db_path"]):
            raise ServiceError(
                f"nothing to resume: neither {path} nor "
                f"{sub['db_path']} exists")
        return ResultsDatabase(path)

    def _build_campaign(self, sub, shard, cid):
        tracer = sub.get("tracer")
        if sub["tbl_text"] is None:
            if shard.get_meta(META_TBL) is None:
                raise ServiceError(
                    "checkpoint carries no campaign meta; submit the "
                    "TBL text explicitly")
            return ObservationCampaign.from_database(shard, tracer=tracer,
                                                     tenant=cid)
        return ObservationCampaign(
            sub["tbl_text"], mof_text=sub["mof_text"], database=shard,
            node_count=sub["node_count"], tbl_source=f"<submit {cid}>",
            tracer=tracer, faults=sub["faults"], retry=sub["retry"],
            tenant=cid)

    def _execute(self, campaign, sub, lease, tap):
        """Dispatch to the right run loop.  A resume without explicit
        planner parameters recovers them from the checkpoint meta, the
        same way :func:`repro.api.resume_campaign` does."""
        policy = sub["policy"]
        budget = sub["budget"]
        experiment = sub["experiment"]
        fidelity = sub.get("fidelity")
        if fidelity is None and sub["resume"]:
            fidelity = campaign.database.get_meta(META_FIDELITY)
        if fidelity is None:
            fidelity = DES
        if policy is None and sub["resume"]:
            policy = campaign.database.get_meta(META_PLANNER_POLICY)
            if policy is not None:
                stored = campaign.database.get_meta(META_PLANNER_BUDGET)
                budget = int(stored) if stored is not None else None
                experiment = campaign.database.get_meta(
                    META_PLANNER_EXPERIMENT)
        if policy is not None:
            return campaign.run_adaptive(
                policy, experiment_name=experiment, budget=budget,
                executor=lease, on_result=tap, replace=sub["replace"],
                resume=sub["resume"], fidelity=fidelity)
        return campaign.run(
            sub["experiments"], executor=lease, on_result=tap,
            replace=sub["replace"], resume=sub["resume"],
            fidelity=fidelity)

    def _finalize(self, record, shard, report):
        """Shard -> final database: merge, verify, drop the shard."""
        destination = record.db_path
        if os.path.exists(destination):
            os.unlink(destination)
        merged = merge_shards([shard], destination)
        try:
            problems = merged.integrity_check()
            if problems:
                raise ResultsError(
                    f"merged database failed integrity check: "
                    f"{'; '.join(problems)}")
        finally:
            merged.close()
        shard.close()
        os.unlink(shard_path(destination))
        with self._lock:
            record.state = DONE
            record.summary = report.summary()
            record.trials = report.trials
            record.skipped = report.skipped
            record.cache_stats = report.cache_stats
            self._lock.notify_all()
        self.tracer.count("service.campaigns_done", 1)

    def _run_heal(self, record):
        """One heal's controller thread.

        Heals are not fleet tenants: the remediation loop runs directly
        against the final database with its own bounded worker pool,
        exactly like a CLI ``repro heal`` — so the fleet's fair-share
        plane never sees shadow trials, and the heal's byte-identity
        contract is the pipeline's own.
        """
        from repro.remedy import heal_campaign

        sub = record.submission
        database = None
        try:
            if sub["after"] is not None:
                finished = self.wait(sub["after"])
                if finished["state"] != DONE:
                    raise ServiceError(
                        f"campaign {sub['after']!r} finished "
                        f"{finished['state']}; heal needs a completed "
                        f"database (resume it first)")
            if not os.path.exists(sub["db_path"]):
                raise ServiceError(
                    f"no campaign database at {sub['db_path']}")
            database = ResultsDatabase(sub["db_path"])
            report = heal_campaign(
                database, jobs=sub["jobs"], budget=sub["budget"],
                rounds=sub["rounds"], target=sub["target"],
                experiment=sub["experiment"], tracer=sub.get("tracer"))
            problems = database.integrity_check()
            if problems:
                raise ResultsError(
                    f"healed database failed integrity check: "
                    f"{'; '.join(problems)}")
            with self._lock:
                record.state = DONE
                record.summary = report.describe()
                record.trials = report.trials
                record.skipped = report.reused
                self._lock.notify_all()
            self.tracer.count("service.heals_done", 1)
        except Exception as error:       # noqa: BLE001 — the record is
            # the daemon's error channel; nothing above this frame.
            self._settle(record, FAILED, f"{type(error).__name__}: {error}")
        finally:
            if database is not None:
                database.close()

    def _settle(self, record, state, error):
        with self._lock:
            record.state = state
            record.error = error
            self._lock.notify_all()
        self.tracer.count(f"service.campaigns_{state}", 1)
