"""The shared worker fleet: one pool, many campaigns, fair shares.

A :class:`WorkerFleet` owns one persistent
:class:`~repro.experiments.scheduler.SchedulerSession` of thread
workers and multiplexes every attached campaign's trial tasks over it.
The dispatcher enforces the service plane's scheduling invariants:

- **round-robin fair share** — each dispatch sweep admits at most one
  task per campaign, walking campaigns in attach order, so a campaign
  with thousands of queued trials cannot starve one with ten;
- **per-campaign ceilings** — a campaign never holds more in-flight
  workers than its submitted ``jobs`` ceiling;
- **fleet backpressure** — admissions stop at the fleet's worker
  count; queued tasks simply wait;
- **analytic fast lane** — trials carrying ``fidelity="analytic"``
  dispatch onto a small dedicated worker pool, so millisecond-scale
  analytic sweeps never queue behind seconds-scale DES simulations
  from other tenants (or their own campaign's confirmation trials).

Determinism is inherited, not scheduled-for: trials are pure functions
of their task, and each campaign's results are delivered to its store
in task-submission order (out-of-order completions buffer), so a
campaign's shard rows are byte-identical no matter how its tasks
interleave with other tenants on the pool.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import CampaignCancelled, ServiceError
from repro.experiments.scheduler import THREAD, TrialScheduler
from repro.obs.tracer import as_tracer
from repro.sim import ANALYTIC, DES


class _TenantQueue:
    """One campaign's seat on the fleet: queue, ceiling, ordering."""

    def __init__(self, campaign_id, runner_factory, ceiling):
        self.campaign_id = campaign_id
        self.runner_factory = runner_factory
        self.ceiling = max(1, ceiling)
        self.pending = deque()       # (seq, task) not yet admitted
        self.in_flight = 0           # admitted, not yet completed
        self.next_seq = 0            # submission counter
        self.next_deliver = 0        # the seq the store gets next
        self.buffered = {}           # seq -> result (completed early)
        self.cancelled = False
        self.batch = None            # the active _Batch, if any

    def admissible(self):
        return (not self.cancelled and self.pending
                and self.in_flight < self.ceiling)


class _Batch:
    """One ``run_tasks`` call in flight: what's owed and to whom."""

    def __init__(self, expected, on_result):
        self.expected = expected
        self.on_result = on_result
        self.results = []
        self.error = None

    def settled(self):
        return self.error is not None or len(self.results) >= self.expected


class FleetLease:
    """A campaign's handle on the fleet — its executor.

    Satisfies the :meth:`ObservationCampaign.run` executor protocol:
    ``run_tasks(tasks, on_result)`` blocks until every task is
    delivered (in task order) and returns the results.  ``cancel()``
    drops the campaign's queued tasks and makes the blocked
    ``run_tasks`` raise :class:`CampaignCancelled` once in-flight work
    drains; ``close()`` detaches the campaign and retires its worker
    runners.
    """

    def __init__(self, fleet, campaign_id):
        self.fleet = fleet
        self.campaign_id = campaign_id

    def run_tasks(self, tasks, on_result=None):
        return self.fleet.run_tasks(self.campaign_id, tasks, on_result)

    def cancel(self):
        self.fleet.cancel(self.campaign_id)

    def close(self):
        self.fleet.detach(self.campaign_id)


class WorkerFleet:
    """``jobs`` persistent thread workers shared by every campaign."""

    def __init__(self, *, jobs=4, tracer=None):
        if jobs < 1:
            raise ServiceError(f"fleet needs at least 1 worker, got {jobs}")
        self.jobs = jobs
        # The analytic fast lane: a small second pool sized off the
        # main one.  Analytic trials take ~1ms each, so a handful of
        # workers absorbs any tenant's exploration round.
        self.fast_jobs = max(2, min(4, jobs))
        self.tracer = as_tracer(tracer)
        self._scheduler = TrialScheduler(_no_default_runner, jobs=jobs,
                                         backend=THREAD, tracer=tracer)
        self._session = self._scheduler.session()
        self._fast_scheduler = TrialScheduler(
            _no_default_runner, jobs=self.fast_jobs, backend=THREAD,
            tracer=tracer)
        self._fast_session = self._fast_scheduler.session()
        self._cond = threading.Condition()
        self._queues = {}            # campaign_id -> _TenantQueue
        self._in_flight = 0          # main-lane admitted tasks
        self._fast_in_flight = 0     # fast-lane admitted tasks
        self._dispatched = 0         # lifetime admission counter
        self._closed = False
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="fleet-dispatcher",
                                            daemon=True)
        self._dispatcher.start()

    # -- campaign lifecycle ------------------------------------------------

    def attach(self, campaign_id, runner_factory, *, ceiling=1):
        """Give *campaign_id* a seat on the fleet; returns its lease.

        *runner_factory* builds the campaign's per-worker runner (each
        worker thread keeps one per tenant); *ceiling* is the
        campaign's ``jobs`` cap — how many fleet workers it may hold at
        once, regardless of how idle the fleet is.
        """
        with self._cond:
            if self._closed:
                raise ServiceError("worker fleet is shut down")
            if campaign_id in self._queues:
                raise ServiceError(
                    f"campaign {campaign_id!r} is already attached")
            self._queues[campaign_id] = _TenantQueue(
                campaign_id, runner_factory, ceiling)
        return FleetLease(self, campaign_id)

    def detach(self, campaign_id):
        """Remove the campaign's seat and retire its worker runners."""
        with self._cond:
            queue = self._queues.pop(campaign_id, None)
        if queue is not None:
            self._session.forget_tenant(campaign_id)
            self._fast_session.forget_tenant(campaign_id)

    def cancel(self, campaign_id):
        """Drop the campaign's queued tasks; in-flight trials finish
        (and are delivered), then its blocked ``run_tasks`` raises
        :class:`CampaignCancelled`."""
        with self._cond:
            queue = self._queues.get(campaign_id)
            if queue is None:
                return
            queue.cancelled = True
            queue.pending.clear()
            self._cond.notify_all()

    # -- execution ---------------------------------------------------------

    def run_tasks(self, campaign_id, tasks, on_result=None):
        """Execute *tasks* for *campaign_id*; blocks until delivered.

        Results return (and *on_result* fires) in task-submission
        order.  One batch per campaign at a time — campaigns drive
        their batches sequentially (a fixed grid is one batch, an
        adaptive exploration one batch per planner round).
        """
        tasks = list(tasks)
        with self._cond:
            queue = self._queues.get(campaign_id)
            if queue is None:
                raise ServiceError(
                    f"campaign {campaign_id!r} is not attached")
            if queue.cancelled:
                raise CampaignCancelled(
                    f"campaign {campaign_id!r} was cancelled")
            if queue.batch is not None and not queue.batch.settled():
                raise ServiceError(
                    f"campaign {campaign_id!r} already has a batch in "
                    f"flight")
            batch = _Batch(len(tasks), on_result)
            queue.batch = batch
            for task in tasks:
                queue.pending.append((queue.next_seq, task))
                queue.next_seq += 1
            self._cond.notify_all()
            while not batch.settled():
                if queue.cancelled and queue.in_flight == 0 \
                        and not queue.pending:
                    raise CampaignCancelled(
                        f"campaign {campaign_id!r} cancelled with "
                        f"{batch.expected - len(batch.results)} trial(s) "
                        f"undelivered")
                self._cond.wait()
            queue.batch = None
            if batch.error is not None:
                raise batch.error
            return batch.results

    def _dispatch_loop(self):
        """Round-robin admission: at most one task per campaign per
        sweep, in attach order, until the fleet is saturated."""
        while True:
            with self._cond:
                if self._closed:
                    return
                admitted = self._admit_locked()
                if not admitted:
                    # Nothing admissible: wait for a completion, a new
                    # batch, a cancel, or shutdown.  The timeout is a
                    # liveness backstop, not a scheduling quantum.
                    self._cond.wait(timeout=0.5)

    def _admit_locked(self):
        """One full round-robin sweep; returns how many were admitted.

        Each queue's *head* task picks its lane: analytic trials go to
        the fast pool, everything else to the main pool.  A lane at
        capacity skips the queue for this sweep (the task waits for its
        own lane rather than crossing over and queueing behind the
        other tier's work)."""
        admitted = 0
        for queue in list(self._queues.values()):
            if self._in_flight >= self.jobs \
                    and self._fast_in_flight >= self.fast_jobs:
                break
            if not queue.admissible():
                continue
            seq, task = queue.pending[0]
            fast = getattr(task, "fidelity", DES) == ANALYTIC
            if fast:
                if self._fast_in_flight >= self.fast_jobs:
                    continue
            elif self._in_flight >= self.jobs:
                continue
            queue.pending.popleft()
            queue.in_flight += 1
            if fast:
                self._fast_in_flight += 1
            else:
                self._in_flight += 1
            self._dispatched += 1
            admitted += 1
            session = self._fast_session if fast else self._session
            session.submit(
                task, tenant=queue.campaign_id,
                runner_factory=queue.runner_factory,
                on_done=lambda future, q=queue, s=seq, f=fast:
                    self._task_done(q, s, future, fast=f))
        if admitted:
            self.tracer.count("fleet.tasks_admitted", admitted)
        return admitted

    def _task_done(self, queue, seq, future, fast=False):
        """Completion callback (worker thread): deliver in seq order.

        The store callback runs under the fleet lock — it must not
        call back into the fleet.  The campaign ingest closures only
        touch their own shard database, which is exactly the contract.
        """
        with self._cond:
            queue.in_flight -= 1
            if fast:
                self._fast_in_flight -= 1
            else:
                self._in_flight -= 1
            batch = queue.batch
            error = future.exception()
            if error is not None:
                # An undeliverable trial (no retry policy absorbing the
                # failure) aborts the campaign's batch; its queued
                # tasks are dropped so the fleet moves on.
                queue.pending.clear()
                if batch is not None and batch.error is None:
                    batch.error = error
                self.tracer.count("fleet.tasks_failed", 1)
            else:
                queue.buffered[seq] = future.result()
                while queue.next_deliver in queue.buffered:
                    result = queue.buffered.pop(queue.next_deliver)
                    queue.next_deliver += 1
                    if batch is not None:
                        batch.results.append(result)
                        if batch.on_result is not None:
                            batch.on_result(result)
                self.tracer.count("fleet.tasks_done", 1)
            self._cond.notify_all()

    # -- observability and lifecycle ---------------------------------------

    def stats(self):
        """A snapshot of the fleet's scheduling state."""
        with self._cond:
            return {
                "workers": self.jobs,
                "in_flight": self._in_flight,
                "fast_workers": self.fast_jobs,
                "fast_in_flight": self._fast_in_flight,
                "dispatched": self._dispatched,
                "campaigns": {
                    cid: {
                        "pending": len(q.pending),
                        "in_flight": q.in_flight,
                        "ceiling": q.ceiling,
                        "cancelled": q.cancelled,
                    }
                    for cid, q in self._queues.items()
                },
            }

    def saturated(self):
        """Whether every fleet worker is currently held."""
        with self._cond:
            return self._in_flight >= self.jobs

    def close(self):
        """Stop the dispatcher and shut the worker pool down."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for queue in self._queues.values():
                queue.cancelled = True
                queue.pending.clear()
            self._cond.notify_all()
        self._dispatcher.join(timeout=5)
        self._session.close()
        self._fast_session.close()


def _no_default_runner():
    raise ServiceError(
        "the fleet has no default runner; every task carries its "
        "campaign's runner factory")
