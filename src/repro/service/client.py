"""The thin client for a running campaign daemon.

A :class:`CampaignClient` speaks the daemon's JSON-over-HTTP control
API (see :mod:`repro.service.http`) with nothing but the stdlib —
``repro submit``/``status``/``cancel`` are this class plus argument
parsing.  Service-side rejections come back as the exceptions the
controller raised: :class:`~repro.errors.ServiceBusy` for
backpressure, :class:`~repro.errors.ServiceError` for the rest, and a
:class:`ServiceError` with the connection failure for an unreachable
daemon.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.errors import ServiceBusy, ServiceError

#: Longest single server-side block one /wait request asks for.  A
#: wait with no deadline polls in slices of this length, each with a
#: bounded HTTP timeout — so a daemon that dies mid-wait surfaces as
#: a :class:`ServiceError` instead of a request that hangs forever.
WAIT_SLICE_S = 30


class CampaignClient:
    """Submit/status/cancel/resume against a ``repro serve`` daemon."""

    def __init__(self, url="http://127.0.0.1:8642", *, timeout=60):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _call(self, method, path, body=None, timeout=None):
        request = urllib.request.Request(self.url + path, method=method)
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(
                    request, data=data,
                    timeout=timeout or self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, OSError):
                payload = {"error": str(error), "kind": "ServiceError"}
            if payload.get("kind") == "ServiceBusy":
                raise ServiceBusy(payload["error"]) from None
            raise ServiceError(payload.get("error", str(error))) from None
        except (urllib.error.URLError, OSError) as error:
            raise ServiceError(
                f"campaign daemon unreachable at {self.url}: "
                f"{getattr(error, 'reason', error)}") from None

    # -- the API -----------------------------------------------------------

    def ping(self):
        """True when a daemon answers at :attr:`url`."""
        try:
            return bool(self._call("GET", "/ping").get("ok"))
        except ServiceError:
            return False

    def submit(self, tbl_text=None, *, db_path, jobs=1, policy=None,
               budget=None, experiment=None, experiments=None,
               mof_text=None, node_count=None, faults=None, retry=None,
               replace=None, resume=False, fidelity=None):
        """Submit a campaign; returns its campaign id.

        Mirrors :meth:`CampaignController.submit` — *faults* is a
        :class:`~repro.faults.FaultPlan` (or its JSON), *retry* an
        attempt count or policy dict; both cross the wire as JSON.
        *fidelity* picks the campaign's solver tier (``"des"``,
        ``"analytic"``, or ``"auto"`` for tiered explorations).
        """
        body = {"db_path": str(db_path), "jobs": jobs, "resume": resume}
        if tbl_text is not None:
            body["tbl_text"] = tbl_text
        for key, value in (("policy", policy), ("budget", budget),
                           ("experiment", experiment),
                           ("experiments", experiments),
                           ("mof_text", mof_text),
                           ("node_count", node_count),
                           ("replace", replace), ("retry", retry),
                           ("fidelity", fidelity)):
            if value is not None:
                body[key] = value
        if faults is not None:
            body["faults"] = faults if isinstance(faults, (str, dict)) \
                else faults.to_json()
        return self._call("POST", "/submit", body)["id"]

    def status(self, campaign_id=None):
        """One campaign's record dict, or the whole service state."""
        path = "/status" if campaign_id is None \
            else f"/status?id={campaign_id}"
        return self._call("GET", path)

    def cancel(self, campaign_id):
        self._call("POST", "/cancel", {"id": campaign_id})

    def resume(self, campaign_id=None, *, db_path=None, jobs=None):
        """Resume by live campaign id, or by checkpoint path after the
        daemon was killed; returns the (possibly new) campaign id."""
        body = {}
        if campaign_id is not None:
            body["id"] = campaign_id
        if db_path is not None:
            body["db_path"] = str(db_path)
        if jobs is not None:
            body["jobs"] = jobs
        return self._call("POST", "/resume", body)["id"]

    def wait(self, campaign_id, *, timeout=None, poll=None):
        """Block until the campaign settles; its record dict, or
        ``None`` on timeout.

        The wait is a poll in bounded slices of *poll* seconds
        (default :data:`WAIT_SLICE_S`): each slice is one ``/wait``
        request with a finite HTTP timeout, so ``timeout=None`` means
        "wait for the campaign forever", never "hang forever on a
        dead socket" — a daemon that stops answering raises
        :class:`~repro.errors.ServiceError` within one slice.
        """
        slice_s = poll if poll is not None else WAIT_SLICE_S
        remaining = timeout
        while True:
            ask = slice_s if remaining is None \
                else max(0, min(slice_s, remaining))
            record = self._call("POST", "/wait",
                                {"id": campaign_id, "timeout": ask},
                                timeout=ask + 10)
            if not record.get("timed_out"):
                return record
            if remaining is not None:
                remaining -= ask
                if remaining <= 0:
                    return None

    def heal(self, campaign_id=None, *, db_path=None, jobs=1,
             budget=None, rounds=None, target=None, experiment=None):
        """Auto-remediate a campaign database; returns the heal id.

        Mirrors :meth:`CampaignController.heal`: pass a *campaign_id*
        the daemon ran (the heal waits for it to finish) or a
        *db_path* on disk.  :meth:`wait` on the returned id for the
        heal report summary.
        """
        body = {"jobs": jobs}
        if campaign_id is not None:
            body["id"] = campaign_id
        if db_path is not None:
            body["db_path"] = str(db_path)
        for key, value in (("budget", budget), ("rounds", rounds),
                           ("target", target),
                           ("experiment", experiment)):
            if value is not None:
                body[key] = value
        return self._call("POST", "/heal", body)["id"]

    def aggregate(self):
        """The streaming aggregator's ``{"report", "snapshot"}``."""
        return self._call("GET", "/aggregate")

    def shutdown(self, *, abort=False):
        """Stop the daemon; graceful by default, ``abort=True`` kills
        (running campaigns survive as shard checkpoints)."""
        self._call("POST", "/shutdown", {"abort": abort})
