"""The campaign service plane: campaigns as schedulable service units.

Instead of one CLI invocation per campaign — each building and tearing
down its own scheduler, caches, and results database — the service
plane runs a long-lived :class:`CampaignController` (``repro serve``)
that accepts submit/status/cancel/resume requests over a local HTTP
API and executes every accepted campaign on one shared
:class:`WorkerFleet`:

- **fair-share scheduling**: the fleet dispatcher round-robins over
  the attached campaigns' task queues, honouring each campaign's
  ``jobs`` ceiling and the fleet-wide worker count, with admission
  backpressure when the controller's queue is full;
- **tenant-shared caches**: the hot-path caching plane is shared by
  every campaign, with per-campaign hit/miss attribution
  (``hotpath.stats(tenant=...)``) and per-campaign cache switches;
- **sharded results**: each campaign's write-behind ingest lands in
  its own shard database, feeding a :class:`StreamingAggregator`;
  :func:`repro.results.merge_shards` turns shards into final
  databases byte-identical to a sequential CLI run's.

The DiPerF-style controller/tester split, applied to observation
campaigns: the controller coordinates, the fleet measures.
"""

from repro.service.aggregate import StreamingAggregator
from repro.service.client import CampaignClient
from repro.service.controller import (
    CAMPAIGN_STATES,
    CampaignController,
    CampaignRecord,
)
from repro.service.fleet import FleetLease, WorkerFleet
from repro.service.http import ServiceDaemon, serve

__all__ = [
    "CAMPAIGN_STATES",
    "CampaignClient",
    "CampaignController",
    "CampaignRecord",
    "FleetLease",
    "ServiceDaemon",
    "StreamingAggregator",
    "WorkerFleet",
    "serve",
]
