"""The daemon's wire surface: a local JSON-over-HTTP control API.

``repro serve`` runs a :class:`ServiceDaemon`: a stdlib
:class:`~http.server.ThreadingHTTPServer` translating requests into
:class:`~repro.service.controller.CampaignController` calls.  The wire
format is deliberately small — JSON bodies, five verbs — because the
daemon is a *local* coordination point (the paper's experiments ran
from one driver host too), not a public service:

====== ============ ===========================================
method path         action
====== ============ ===========================================
GET    /ping        liveness probe
POST   /submit      accept a campaign; returns ``{"id": ...}``
GET    /status      service state (``?id=`` for one campaign)
POST   /cancel      stop a campaign, keep its shard checkpoint
POST   /resume      restart a cancelled/failed/killed campaign
POST   /heal        auto-remediate a campaign's database in place
POST   /wait        block until a campaign settles
GET    /aggregate   the streaming aggregator's report + snapshot
POST   /shutdown    stop the daemon (``{"abort": true}`` = kill)
====== ============ ===========================================

Service errors travel as JSON ``{"error", "kind"}`` with the status
code carrying the class: 429 for :class:`ServiceBusy` backpressure,
404 for an unknown campaign, 400 for everything else the controller
rejects.  The matching client is
:class:`repro.service.client.CampaignClient`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ServiceBusy, ServiceError
from repro.faults.plan import FaultPlan
from repro.service.controller import CampaignController


def _submit_kwargs(body):
    """Decode a /submit (or /resume-by-path) body into controller
    kwargs.  Fault plans travel as their JSON form; retry policies as
    an attempt count or policy dict (the campaign normalizes both)."""
    kwargs = {"db_path": body["db_path"]}
    for key in ("mof_text", "node_count", "jobs", "experiments",
                "policy", "budget", "experiment", "replace", "resume",
                "fidelity"):
        if key in body:
            kwargs[key] = body[key]
    faults = body.get("faults")
    if faults is not None:
        if isinstance(faults, dict):
            faults = json.dumps(faults)
        kwargs["faults"] = FaultPlan.from_json(faults)
    if body.get("retry") is not None:
        kwargs["retry"] = body["retry"]
    return body.get("tbl_text"), kwargs


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # The controller lives on the server object; handlers are per-request.

    @property
    def controller(self):
        return self.server.controller

    def log_message(self, format, *args):   # noqa: A002 — stdlib name
        pass                                # the tracer observes, not stderr

    def _body(self):
        length = int(self.headers.get("Content-Length", 0))
        if not length:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _reply(self, payload, status=200):
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _fail(self, error):
        status = 400
        if isinstance(error, ServiceBusy):
            status = 429
        elif isinstance(error, ServiceError) \
                and "unknown campaign" in str(error):
            status = 404
        self._reply({"error": str(error),
                     "kind": type(error).__name__}, status=status)

    def do_GET(self):  # noqa: N802 — stdlib dispatch name
        path, _, query = self.path.partition("?")
        try:
            if path == "/ping":
                self._reply({"ok": True})
            elif path == "/status":
                campaign_id = None
                for part in query.split("&"):
                    if part.startswith("id="):
                        campaign_id = part[3:]
                self._reply(self.controller.status(campaign_id))
            elif path == "/aggregate":
                self._reply({
                    "report": self.controller.aggregator.render(),
                    "snapshot": self.controller.aggregator.snapshot(),
                })
            else:
                self._reply({"error": f"no such endpoint {path}",
                             "kind": "ServiceError"}, status=404)
        except ReproError as error:
            self._fail(error)

    def do_POST(self):  # noqa: N802 — stdlib dispatch name
        try:
            body = self._body()
            if self.path == "/submit":
                tbl_text, kwargs = _submit_kwargs(body)
                campaign_id = self.controller.submit(tbl_text, **kwargs)
                self._reply({"id": campaign_id})
            elif self.path == "/cancel":
                self.controller.cancel(body["id"])
                self._reply({"ok": True})
            elif self.path == "/resume":
                campaign_id = self.controller.resume(
                    body.get("id"), db_path=body.get("db_path"),
                    jobs=body.get("jobs"))
                self._reply({"id": campaign_id})
            elif self.path == "/heal":
                heal_id = self.controller.heal(
                    body.get("id"), db_path=body.get("db_path"),
                    jobs=body.get("jobs", 1),
                    budget=body.get("budget"),
                    rounds=body.get("rounds"),
                    target=body.get("target"),
                    experiment=body.get("experiment"))
                self._reply({"id": heal_id})
            elif self.path == "/wait":
                record = self.controller.wait(
                    body["id"], timeout=body.get("timeout"))
                if record is None:
                    self._reply({"timed_out": True})
                else:
                    self._reply(record)
            elif self.path == "/shutdown":
                self._reply({"ok": True})
                self.server.daemon_ref.stop(abort=body.get("abort", False))
            else:
                self._reply({"error": f"no such endpoint {self.path}",
                             "kind": "ServiceError"}, status=404)
        except ReproError as error:
            self._fail(error)
        except (KeyError, ValueError) as error:
            self._reply({"error": f"bad request: {error!r}",
                         "kind": "ServiceError"}, status=400)


class ServiceDaemon:
    """The ``repro serve`` process body: controller + HTTP front-end.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` is the
    bound ``(host, port)`` either way.  :meth:`start` serves on a
    background thread and returns; :meth:`run_forever` serves on the
    calling thread until :meth:`stop` (or a ``/shutdown`` request).
    """

    def __init__(self, *, host="127.0.0.1", port=0, jobs=4, max_active=8,
                 tracer=None):
        self.controller = CampaignController(jobs=jobs,
                                             max_active=max_active,
                                             tracer=tracer)
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.controller = self.controller
        self._server.daemon_ref = self
        self._thread = None
        self._stopping = threading.Lock()
        self._stopped = False

    @property
    def address(self):
        return self._server.server_address[:2]

    @property
    def url(self):
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self):
        """Serve on a background thread; returns the bound url."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self.url

    def run_forever(self):
        """Serve on the calling thread until stopped."""
        try:
            self._server.serve_forever()
        finally:
            self.stop()

    def stop(self, *, abort=False):
        """Stop serving and shut the controller down.  Idempotent;
        safe from request-handler threads (the server shutdown runs on
        a helper so the handler's own request can finish)."""
        with self._stopping:
            if self._stopped:
                return
            self._stopped = True
        threading.Thread(target=self._server.shutdown,
                         daemon=True).start()
        self.controller.shutdown(abort=abort)
        self._server.server_close()
        if self._thread is not None and self._thread.is_alive() \
                and self._thread is not threading.current_thread():
            self._thread.join(timeout=5)


def serve(*, host="127.0.0.1", port=8642, jobs=4, max_active=8,
          tracer=None, on_ready=None):
    """Run a campaign daemon until interrupted — the ``repro serve``
    entry point.  *on_ready* receives the bound url before serving."""
    daemon = ServiceDaemon(host=host, port=port, jobs=jobs,
                           max_active=max_active, tracer=tracer)
    if on_ready is not None:
        on_ready(daemon.url)
    try:
        daemon.run_forever()
    except KeyboardInterrupt:
        daemon.stop(abort=True)
    return daemon
