"""Streaming cross-campaign aggregation for the service plane.

Every trial a campaign's write-behind ingest delivers to its shard also
flows through the daemon's :class:`StreamingAggregator`, so the service
always has an up-to-the-trial view across every tenant — counts,
throughput envelopes, retry pressure — without ever re-reading a shard.
This is the observation loop of the paper lifted one level: the
controller observes its *campaigns* the way a campaign observes its
trials.
"""

from __future__ import annotations

import threading


class _CampaignWindow:
    """Rolling per-campaign aggregates, updated one trial at a time."""

    def __init__(self, campaign_id):
        self.campaign_id = campaign_id
        self.trials = 0
        self.completed = 0
        self.dnf = 0
        self.retried = 0
        self.failed_attempts = 0
        self.by_experiment = {}
        self.peak_throughput = 0.0
        self.peak_workload = None        # workload at peak throughput
        self.max_workload = 0
        self.response_total_ms = 0.0     # over completed trials

    def observe(self, result):
        self.trials += 1
        name = result.experiment_name
        self.by_experiment[name] = self.by_experiment.get(name, 0) + 1
        self.max_workload = max(self.max_workload, result.workload)
        if result.completed:
            self.completed += 1
            throughput = result.throughput()
            if throughput > self.peak_throughput:
                self.peak_throughput = throughput
                self.peak_workload = result.workload
            self.response_total_ms += result.response_time_ms()
        else:
            self.dnf += 1
        if result.retried:
            self.retried += 1
        self.failed_attempts += max(0, result.attempts - 1)

    def snapshot(self):
        mean_response = (self.response_total_ms / self.completed
                         if self.completed else None)
        return {
            "trials": self.trials,
            "completed": self.completed,
            "dnf": self.dnf,
            "retried": self.retried,
            "failed_attempts": self.failed_attempts,
            "by_experiment": dict(self.by_experiment),
            "peak_throughput": round(self.peak_throughput, 3),
            "peak_workload": self.peak_workload,
            "max_workload": self.max_workload,
            "mean_response_ms": round(mean_response, 3)
            if mean_response is not None else None,
        }


class StreamingAggregator:
    """Consumes every tenant's trial stream; answers for all of them.

    Thread-safe: campaigns deliver results from fleet worker threads.
    ``observe(campaign_id, result)`` is the ingest tap (the controller
    wires it into each campaign's ``on_result``); ``snapshot()``
    returns the JSON-friendly state the status API serves, and
    ``render()`` the human report the CI job archives.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._windows = {}
        self._total = 0

    def observe(self, campaign_id, result):
        with self._lock:
            window = self._windows.get(campaign_id)
            if window is None:
                window = self._windows[campaign_id] = \
                    _CampaignWindow(campaign_id)
            window.observe(result)
            self._total += 1

    def tap(self, campaign_id):
        """An ``on_result`` callback bound to *campaign_id*."""
        return lambda result: self.observe(campaign_id, result)

    def snapshot(self):
        with self._lock:
            return {
                "trials_observed": self._total,
                "campaigns": {cid: window.snapshot()
                              for cid, window in self._windows.items()},
            }

    def render(self):
        """The aggregate as a plain-text report, one campaign a block."""
        snap = self.snapshot()
        lines = ["campaign service aggregate",
                 "=" * 25,
                 f"trials observed: {snap['trials_observed']}",
                 ""]
        for cid in sorted(snap["campaigns"]):
            window = snap["campaigns"][cid]
            lines.append(f"[{cid}]")
            lines.append(
                f"  trials {window['trials']} "
                f"({window['completed']} completed, {window['dnf']} DNF, "
                f"{window['retried']} retried)")
            if window["peak_workload"] is not None:
                lines.append(
                    f"  peak throughput {window['peak_throughput']:.3f}"
                    f" ops/s at workload {window['peak_workload']}"
                    f" (swept to {window['max_workload']})")
            if window["mean_response_ms"] is not None:
                lines.append(
                    f"  mean response {window['mean_response_ms']:.3f} ms"
                    f" over completed trials")
            for name in sorted(window["by_experiment"]):
                lines.append(
                    f"  - {name}: {window['by_experiment'][name]} trial(s)")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"
