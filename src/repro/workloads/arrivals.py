"""Open-loop arrival processes for session-driven workloads.

The paper's closed-loop driver keeps a fixed population of users in a
request/think cycle, so offered load can never exceed what the system
sustains.  Production traffic is open loop: sessions arrive whether or
not the system keeps up ("Characterizing Workload of Web Applications
on Virtualized Servers", PAPERS.md).  This module defines the seeded
arrival-process family — constant rate, diurnal sinusoid, MMPP-style
bursty, flash-crowd step — that drives session arrivals through the
existing :class:`~repro.workloads.interactions.TransitionMatrix` mixes.

Every draw comes from named :class:`~repro.sim.rng.RandomStreams`
streams (``arrivals`` for the thinned Poisson gaps, ``arrival-mod``
for the bursty modulation chain), so a trace is a pure function of
``(spec, base_rate, seed)`` — identical across worker counts and
resume cut points, which is what the scenario plane's byte-identity
contract rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import WorkloadError

CONSTANT = "constant"
DIURNAL = "diurnal"
BURSTY = "bursty"
FLASH = "flash"

ARRIVAL_KINDS = (CONSTANT, DIURNAL, BURSTY, FLASH)

#: Stream names — one for the thinned gap/acceptance draws, one for the
#: bursty modulation chain, one for session state walks.
ARRIVAL_STREAM = "arrivals"
MODULATION_STREAM = "arrival-mod"
SESSION_STREAM = "session"


@dataclass(frozen=True)
class ArrivalSpec:
    """One open-loop arrival pattern, declaratively.

    ``rate`` is the base request arrival rate in requests/second; when
    ``None`` the driver derives it from the sweep's workload axis as
    ``users / think_time`` — the offered load an equally sized
    closed-loop population would present below saturation, which keeps
    open-loop knees comparable to closed-loop ones on the same ladder.
    """

    kind: str = CONSTANT
    rate: float = None
    #: Diurnal: relative amplitude of the sinusoid, in [0, 1].
    amplitude: float = 0.5
    #: Diurnal period / bursty mean cycle length, seconds.
    period: float = 120.0
    #: Bursty/flash: rate multiplier while the burst or crowd is on.
    burst: float = 4.0
    #: Bursty: fraction of a cycle spent in the burst state.
    #: Flash: crowd duration as a fraction of warmup+run.
    duty: float = 0.2
    #: Flash: step onset as a fraction of warmup+run.
    at: float = 0.5
    #: Interactions per session (think time between them); the session
    #: arrival rate is the request rate divided by this.
    session_length: int = 1

    def __post_init__(self):
        if self.kind not in ARRIVAL_KINDS:
            raise WorkloadError(
                f"unknown arrival kind {self.kind!r}; "
                f"known: {list(ARRIVAL_KINDS)}"
            )
        if self.rate is not None and self.rate <= 0:
            raise WorkloadError(f"arrival rate must be positive: {self.rate}")
        if not 0 <= self.amplitude <= 1:
            raise WorkloadError(
                f"diurnal amplitude outside [0, 1]: {self.amplitude}"
            )
        if self.period <= 0:
            raise WorkloadError(f"arrival period must be positive: {self.period}")
        if self.burst < 1:
            raise WorkloadError(f"burst factor must be >= 1: {self.burst}")
        if not 0 < self.duty < 1:
            raise WorkloadError(f"duty fraction outside (0, 1): {self.duty}")
        if not 0 <= self.at <= 1:
            raise WorkloadError(f"flash onset outside [0, 1]: {self.at}")
        if self.session_length < 1:
            raise WorkloadError(
                f"session length must be >= 1: {self.session_length}"
            )

    def to_dict(self):
        """JSON-ready form (scenario tables, run cards)."""
        out = {"kind": self.kind}
        for field_name in ("rate", "amplitude", "period", "burst", "duty",
                           "at", "session_length"):
            value = getattr(self, field_name)
            default = type(self).__dataclass_fields__[field_name].default
            if value != default:
                out[field_name] = value
        return out

    @classmethod
    def from_dict(cls, data):
        data = dict(data)
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise WorkloadError(
                f"unknown arrival parameters: {sorted(unknown)}"
            )
        return cls(**data)


def analytic_supported(spec):
    """Whether the analytic tier has an operating-point solve for *spec*.

    ``None`` (closed loop) and constant-rate open loop solve as fluid
    fixed points; time-varying patterns (diurnal/bursty/flash) are
    DES-only and raise :class:`~repro.errors.AnalyticUnsupported`
    upstream.
    """
    return spec is None or spec.kind == CONSTANT


def request_rate(spec, workload, think_time):
    """The base request arrival rate for one sweep point."""
    if spec.rate is not None:
        return spec.rate
    if think_time <= 0:
        raise WorkloadError(f"think time must be positive: {think_time}")
    return workload / think_time


class ArrivalProcess:
    """Lazy, seeded arrival-time generator for one trial.

    Non-homogeneous patterns use thinning: candidate gaps are drawn
    from a Poisson process at the pattern's peak rate and accepted with
    probability ``rate_at(t) / peak``.  The bursty pattern modulates
    between a normal and a burst state with exponential sojourns drawn
    from a dedicated stream, advanced lazily as time moves forward.
    """

    def __init__(self, spec, *, base_rate, streams, span):
        if base_rate <= 0:
            raise WorkloadError(f"base rate must be positive: {base_rate}")
        if span <= 0:
            raise WorkloadError(f"arrival span must be positive: {span}")
        self.spec = spec
        self.rate = spec.rate if spec.rate is not None else base_rate
        self.session_rate = self.rate / spec.session_length
        self.streams = streams
        self.span = span
        self._in_burst = False
        self._next_switch = 0.0
        if spec.kind == BURSTY:
            self._next_switch = streams.exponential(
                MODULATION_STREAM, spec.period * (1.0 - spec.duty)
            )

    @property
    def peak_rate(self):
        spec = self.spec
        if spec.kind == DIURNAL:
            return self.session_rate * (1.0 + spec.amplitude)
        if spec.kind in (BURSTY, FLASH):
            return self.session_rate * spec.burst
        return self.session_rate

    def rate_at(self, t):
        """Instantaneous session arrival rate at simulated time *t*."""
        spec = self.spec
        base = self.session_rate
        if spec.kind == CONSTANT:
            return base
        if spec.kind == DIURNAL:
            return base * (1.0 + spec.amplitude
                           * math.sin(2.0 * math.pi * t / spec.period))
        if spec.kind == FLASH:
            onset = spec.at * self.span
            if onset <= t < onset + spec.duty * self.span:
                return base * spec.burst
            return base
        # Bursty: advance the modulation chain lazily up to t.
        while t >= self._next_switch:
            self._in_burst = not self._in_burst
            mean = (spec.period * spec.duty if self._in_burst
                    else spec.period * (1.0 - spec.duty))
            self._next_switch += self.streams.exponential(
                MODULATION_STREAM, mean
            )
        return base * spec.burst if self._in_burst else base

    def next_after(self, t):
        """The next session arrival time strictly after *t*."""
        peak = self.peak_rate
        stream = self.streams.stream(ARRIVAL_STREAM)
        while True:
            t += self.streams.exponential(ARRIVAL_STREAM, 1.0 / peak)
            if stream.random() * peak <= self.rate_at(t):
                return t


def arrival_trace(spec, *, base_rate, seed, span, limit=100_000):
    """Every arrival time in ``[0, span)`` — a pure function of its
    arguments, used by the determinism property tests."""
    from repro.sim.rng import RandomStreams

    process = ArrivalProcess(spec, base_rate=base_rate,
                             streams=RandomStreams(seed), span=span)
    times = []
    t = process.next_after(0.0)
    while t < span:
        times.append(t)
        if len(times) > limit:
            raise WorkloadError(
                f"arrival trace exceeded {limit} arrivals in {span}s"
            )
        t = process.next_after(t)
    return times
