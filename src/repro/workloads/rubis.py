"""RUBiS workload model: 26 interactions, browse/bid mixes, morphing.

RUBiS (Rice University Bidding System) is an eBay-style auction
benchmark with 26 interaction types — browsing by categories or
regions, bidding, buying, selling, registering, commenting (Section
III.B).  It ships two transition matrices (read-only *browsing* and
*bidding* with 15% writes); the paper extends the write ratio from 0%
to 90%, which this module reproduces via stationary-mix morphing.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.calibration import RUBIS
from repro.workloads.interactions import (
    Interaction,
    TransitionMatrix,
    mix_for_write_ratio,
    normalized_demands,
)

#: The 26 RUBiS interaction states.  app/db weights express relative
#: costliness inside the read or write class (ViewItem renders item,
#: bid history and seller data; AboutMe aggregates a user's activity).
INTERACTIONS = (
    Interaction("Home", False, app_weight=0.3, db_weight=0.2,
                popularity=3.0),
    Interaction("Register", False, app_weight=0.3, db_weight=0.2,
                popularity=0.4),
    Interaction("Browse", False, app_weight=0.4, db_weight=0.3,
                popularity=2.5),
    Interaction("BrowseCategories", False, app_weight=0.8, db_weight=0.8,
                popularity=2.5),
    Interaction("SearchItemsByCategory", False, app_weight=1.4,
                db_weight=1.4, popularity=3.0),
    Interaction("BrowseRegions", False, app_weight=0.8, db_weight=0.8,
                popularity=1.5),
    Interaction("BrowseCategoriesByRegion", False, app_weight=0.9,
                db_weight=0.9, popularity=1.2),
    Interaction("SearchItemsByRegion", False, app_weight=1.5,
                db_weight=1.5, popularity=1.8),
    Interaction("ViewItem", False, app_weight=1.6, db_weight=1.3,
                popularity=3.5),
    Interaction("ViewUserInfo", False, app_weight=1.1, db_weight=1.0,
                popularity=1.2),
    Interaction("ViewBidHistory", False, app_weight=1.3, db_weight=1.2,
                popularity=1.0),
    Interaction("AboutMe", False, app_weight=1.8, db_weight=1.6,
                popularity=0.8),
    Interaction("BuyNowAuth", False, app_weight=0.5, db_weight=0.4,
                popularity=0.4),
    Interaction("BuyNow", False, app_weight=1.0, db_weight=0.9,
                popularity=0.4),
    Interaction("PutBidAuth", False, app_weight=0.5, db_weight=0.4,
                popularity=1.0),
    Interaction("PutBid", False, app_weight=1.2, db_weight=1.1,
                popularity=1.0),
    Interaction("PutCommentAuth", False, app_weight=0.5, db_weight=0.4,
                popularity=0.4),
    Interaction("PutComment", False, app_weight=0.9, db_weight=0.8,
                popularity=0.4),
    Interaction("Sell", False, app_weight=0.5, db_weight=0.4,
                popularity=0.5),
    Interaction("SelectCategoryToSellItem", False, app_weight=0.6,
                db_weight=0.5, popularity=0.5),
    Interaction("SellItemForm", False, app_weight=0.6, db_weight=0.4,
                popularity=0.5),
    # Write interactions: the transaction itself is database work; the
    # app tier mostly forwards it ("most operations involve writes to
    # the database which does not stress the application tier much").
    Interaction("RegisterUser", True, app_weight=1.0, db_weight=1.1,
                popularity=0.5),
    Interaction("StoreBuyNow", True, app_weight=1.0, db_weight=1.2,
                popularity=0.7),
    Interaction("StoreBid", True, app_weight=1.0, db_weight=0.9,
                popularity=2.5),
    Interaction("StoreComment", True, app_weight=1.0, db_weight=1.0,
                popularity=0.8),
    Interaction("RegisterItem", True, app_weight=1.0, db_weight=1.3,
                popularity=0.7),
)

STATE_NAMES = tuple(i.name for i in INTERACTIONS)

#: The write ratio of the stock bidding matrix (Section III.B).
BIDDING_WRITE_RATIO = 0.15


class RubisModel:
    """The complete workload model for one (mix, write ratio) point."""

    def __init__(self, write_ratio):
        if not 0 <= write_ratio <= 0.95:
            raise WorkloadError(
                f"RUBiS write ratio must be within [0, 0.95]: {write_ratio}"
            )
        self.benchmark = "rubis"
        self.write_ratio = write_ratio
        self.calibration = RUBIS
        mix = mix_for_write_ratio(INTERACTIONS, write_ratio)
        self.matrix = TransitionMatrix.memoryless(STATE_NAMES, mix)
        self.demands = normalized_demands(
            INTERACTIONS, mix,
            web_s=RUBIS.web_s,
            app_read_s=RUBIS.app_read_s,
            app_write_s=RUBIS.app_write_s,
            db_read_s=RUBIS.db_read_s,
            db_write_s=RUBIS.db_write_s,
        )
        self.initial_state = "Home"

    def demand(self, state):
        try:
            return self.demands[state]
        except KeyError:
            raise WorkloadError(f"unknown RUBiS interaction {state!r}")

    def mean_demands(self):
        """Mix-weighted mean (web, app, db) demands — the calibration
        formulas, recovered from the per-interaction table."""
        stationary = self.matrix.stationary()
        web = app = db = 0.0
        for state, probability in stationary.items():
            demand = self.demands[state]
            web += probability * demand.web_s
            app += probability * demand.app_s
            db += probability * demand.db_s
        return web, app, db


def build_model(write_ratio, mix=None):
    """Build the RUBiS model; *mix* is accepted for interface symmetry.

    The browsing matrix is exactly the zero-write-ratio morphing; the
    bidding matrix is the 15% point, so the (mix, write_ratio) pair
    degenerates to write_ratio alone.
    """
    if mix == "browsing" and write_ratio != 0:
        raise WorkloadError(
            "the browsing mix is read-only; write ratio must be 0"
        )
    return RubisModel(write_ratio)


def browsing_matrix():
    """The stock read-only matrix."""
    return RubisModel(0.0).matrix


def bidding_matrix():
    """The stock 15%-writes matrix."""
    return RubisModel(BIDDING_WRITE_RATIO).matrix
