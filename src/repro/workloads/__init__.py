"""Benchmark workload models: RUBiS, RUBBoS, calibration, matrices."""

from repro.errors import WorkloadError
from repro.workloads import rubbos, rubis, tpcapp
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    ArrivalSpec,
    arrival_trace,
)
from repro.workloads.calibration import (
    CALIBRATIONS,
    RUBBOS,
    RUBIS,
    BenchmarkCalibration,
    get_calibration,
)
from repro.workloads.interactions import (
    Interaction,
    InteractionDemand,
    TransitionMatrix,
    mix_for_write_ratio,
    normalized_demands,
)

_BUILDERS = {
    "rubis": rubis.build_model,
    "rubbos": rubbos.build_model,
    "tpcapp": tpcapp.build_model,
}


def build_model(benchmark, write_ratio, mix=None):
    """Build the workload model for *benchmark* at *write_ratio*."""
    try:
        builder = _BUILDERS[benchmark.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {benchmark!r}; known: {sorted(_BUILDERS)}"
        )
    return builder(write_ratio, mix=mix)


__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "ArrivalSpec",
    "arrival_trace",
    "CALIBRATIONS",
    "RUBBOS",
    "RUBIS",
    "BenchmarkCalibration",
    "get_calibration",
    "Interaction",
    "InteractionDemand",
    "TransitionMatrix",
    "mix_for_write_ratio",
    "normalized_demands",
    "build_model",
    "rubis",
    "rubbos",
    "tpcapp",
]
