"""Service-demand calibration, with derivations.

The substitution rule for this reproduction: the simulator replaces the
physical testbed, so per-interaction CPU demands are *calibrated* so
that the simulated system reproduces the paper's observed saturation
structure.  Every constant below is derived from a number reported in
the paper; none is free.

Closed-network operational law: with N users, mean think time Z and
bottleneck demand D per request, the saturation knee sits near
``N* ~= C * Z / D`` for a C-server bottleneck (R << Z below the knee).

RUBiS (Emulab, Section IV.A / V.B; Z = 7 s):

* Each JOnAS app server sustains ~250 users at the 15% write ratio
  (each added server buys ~250 users, V.B) =>
  D_app(0.15) = Z/250 = 28 ms.  The paper's write-ratio inversion
  ("when the write ratio is high ... the response time is relatively
  short", IV.A) makes app demand fall with write ratio; the linear
  morphing D_app(w) = (1-w)*APP_READ + w*APP_WRITE with APP_READ = 33 ms
  and APP_WRITE = 3 ms yields 28.5 ms at w = 0.15 and a baseline knee
  of 212-292 users for w in [0, 0.3] — matching Figure 1's bottleneck
  "for the region of more than 250 users and write ratio below 30%".
* One database serves ~1700 users (V.B / Conclusion) =>
  D_db(0.15) = Z/1700 = 4.1 ms; with DB_READ = 4.0 ms and
  DB_WRITE = 4.5 ms the 15% mix gives 4.075 ms (knee 1718).
  Under C-JDBC RAIDb-1, reads split over k replicas while writes hit
  every replica: per-backend demand (0.85*4.0/k + 0.15*4.5) ms puts the
  2-replica knee at ~2950 users — the paper's observed 2-DB saturation
  between 2700 and 2900 users falls out of the replication semantics,
  with no additional tuning.  (DB_WRITE stays below Z/250/5 = 5.6 ms so
  the baseline's 5x-slower 600 MHz DB host keeps the high-write-ratio
  corner of Figure 1 unsaturated at 250 users, per IV.A.)
* The web tier "performs as the workload distributor and does very
  little work" (V.B): WEB = 1.5 ms keeps 1 Apache good for ~4600 users.
* Weblogic's ~2x capacity (IV.B) is hardware: the Warp nodes have two
  3.06 GHz CPUs (Table 2) versus one 3 GHz CPU on Emulab nodes.

RUBBoS (Emulab, Section IV.C; Z = 7 s, users 500..5000):

* The database is the bottleneck and the *read-only* mix saturates at a
  much lower workload than the 85/15 mix (Figure 4): read-only pages
  (ViewStory with its comment tree) are DB-heavy.  DB_READ_HEAVY =
  3.5 ms puts the read-only knee at 2000 users; the submission matrix
  visits lighter pages (DB_READ_LIGHT = 2.3 ms) and cheap writes
  (DB_WRITE = 1.5 ms), mean 2.18 ms, knee ~3200 users — both inside
  Figure 4's 500..5000 range with the read-only knee clearly first.
* The servlet tier is light (APP = 2 ms; it never bottlenecks below
  3500 users, consistent with "RUBBoS ... places a high load on the
  database tier").

All demands are in seconds on a 3.0 GHz reference core; node speed
factors (Table 2) and package efficiency scale them at simulation time.
The Emulab baseline's deliberately slow 600 MHz database host
(Section IV.A) is therefore a 5x DB-demand inflation, exactly as on the
testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError

#: Demands are expressed for one core at this clock (GHz).
REFERENCE_GHZ = 3.0

#: Disk service demands per database operation (seconds at the
#: 10000 RPM reference spindle): a read mostly hits the buffer pool and
#: occasionally the platter; a write always flushes the log.  These sit
#: well below the DB CPU demands, so the knees stay CPU-located (as the
#: paper's Figure 8 CPU plots imply), but they make the sysstat disk
#: channel a real measurement and let Table 2's RPM differences show.
DB_DISK_READ_S = 0.0008
DB_DISK_WRITE_S = 0.0015
REFERENCE_DISK_RPM = 10000


def disk_speed_factor(node_type):
    """Disk speed relative to the 10000 RPM reference spindle."""
    return node_type.disk_rpm / REFERENCE_DISK_RPM


@dataclass(frozen=True)
class BenchmarkCalibration:
    """Aggregate class-mean demands (seconds at the reference core)."""

    benchmark: str
    think_time_s: float
    web_s: float
    app_read_s: float
    app_write_s: float
    db_read_s: float
    db_write_s: float

    def app_mean(self, write_ratio):
        """Aggregate app demand at *write_ratio* (the morphing formula)."""
        self._check_ratio(write_ratio)
        return ((1.0 - write_ratio) * self.app_read_s
                + write_ratio * self.app_write_s)

    def db_mean(self, write_ratio):
        self._check_ratio(write_ratio)
        return ((1.0 - write_ratio) * self.db_read_s
                + write_ratio * self.db_write_s)

    def db_backend_mean(self, write_ratio, replicas):
        """Per-backend DB demand under RAIDb-1 with *replicas* copies.

        Reads are balanced over the replicas; writes execute on all of
        them.  This is the mechanism behind the paper's 1700 -> ~2900
        user crossover from one to two database servers.
        """
        self._check_ratio(write_ratio)
        if replicas < 1:
            raise WorkloadError(f"replicas must be >= 1, got {replicas}")
        return ((1.0 - write_ratio) * self.db_read_s / replicas
                + write_ratio * self.db_write_s)

    def saturation_users(self, demand_s, servers=1, cores=1):
        """Operational-law knee for a tier with the given demand."""
        if demand_s <= 0:
            raise WorkloadError("demand must be positive")
        return servers * cores * self.think_time_s / demand_s

    @staticmethod
    def _check_ratio(write_ratio):
        if not 0 <= write_ratio <= 1:
            raise WorkloadError(
                f"write ratio outside [0, 1]: {write_ratio}"
            )


RUBIS = BenchmarkCalibration(
    benchmark="rubis",
    think_time_s=7.0,
    web_s=0.0015,
    app_read_s=0.033,
    app_write_s=0.003,
    db_read_s=0.004,
    db_write_s=0.0045,
)

#: RUBBoS read demands differ per mix: the read-only matrix emphasises
#: heavy story/comment pages, the submission matrix lighter ones.  The
#: BenchmarkCalibration carries the heavy (read-only) figure; the light
#: figure is exported separately and applied by the rubbos module.
RUBBOS = BenchmarkCalibration(
    benchmark="rubbos",
    think_time_s=7.0,
    web_s=0.0,
    app_read_s=0.002,
    app_write_s=0.002,
    db_read_s=0.0035,
    db_write_s=0.0015,
)

#: Mean DB read demand under the RUBBoS *submission* matrix (see above).
RUBBOS_DB_READ_LIGHT_S = 0.0023

CALIBRATIONS = {"rubis": RUBIS, "rubbos": RUBBOS}


def get_calibration(benchmark):
    try:
        return CALIBRATIONS[benchmark.lower()]
    except KeyError:
        raise WorkloadError(
            f"no calibration for benchmark {benchmark!r}; known: "
            f"{sorted(CALIBRATIONS)}"
        )
