"""Interactions and Markov transition matrices for benchmark workloads.

RUBiS and RUBBoS drive their emulated clients through first-order
Markov chains over interaction states (Section III.B); each interaction
imposes tier-specific service demands.  This module provides the shared
machinery: typed interactions, validated transition matrices, stationary
distributions, and mix construction from a target write ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Interaction:
    """One benchmark interaction state and its relative costliness.

    Weights are *relative within the read or write class*; the benchmark
    modules normalize them so the class-mean demands match the
    calibration targets exactly (see ``calibration.py``).
    """

    name: str
    is_write: bool
    app_weight: float = 1.0
    db_weight: float = 1.0
    popularity: float = 1.0

    def __post_init__(self):
        if self.app_weight <= 0 or self.db_weight <= 0:
            raise WorkloadError(
                f"interaction {self.name!r} needs positive weights"
            )
        if self.popularity <= 0:
            raise WorkloadError(
                f"interaction {self.name!r} needs positive popularity"
            )


@dataclass(frozen=True)
class InteractionDemand:
    """Absolute per-tier demands (reference-core seconds) for one state."""

    name: str
    is_write: bool
    web_s: float
    app_s: float
    db_s: float


class TransitionMatrix:
    """A validated row-stochastic matrix over interaction states."""

    def __init__(self, states, rows):
        self.states = tuple(states)
        if len(self.states) != len(set(self.states)):
            raise WorkloadError("duplicate interaction states")
        if len(rows) != len(self.states):
            raise WorkloadError(
                f"matrix has {len(rows)} rows for {len(self.states)} states"
            )
        self.rows = []
        for state, row in zip(self.states, rows):
            if len(row) != len(self.states):
                raise WorkloadError(
                    f"row for {state!r} has {len(row)} entries"
                )
            total = sum(row)
            if any(p < 0 for p in row):
                raise WorkloadError(f"negative probability in row {state!r}")
            if abs(total - 1.0) > 1e-9:
                raise WorkloadError(
                    f"row for {state!r} sums to {total}, expected 1"
                )
            self.rows.append(tuple(row))
        self._index = {state: i for i, state in enumerate(self.states)}

    @classmethod
    def memoryless(cls, states, mix):
        """Rank-one matrix: every row equals *mix*.

        This is the memoryless limit of the benchmark matrices; it makes
        the stationary write ratio exactly the requested one, which is
        what the calibration (and the paper's "write ratio" axis)
        assumes.
        """
        if len(states) != len(mix):
            raise WorkloadError("mix length must match state count")
        row = tuple(mix)
        return cls(states, [row] * len(states))

    def next_state(self, current, uniform_draw):
        """The successor of *current* given a U(0,1) draw."""
        try:
            row = self.rows[self._index[current]]
        except KeyError:
            raise WorkloadError(f"unknown state {current!r}")
        cumulative = 0.0
        for state, probability in zip(self.states, row):
            cumulative += probability
            if uniform_draw < cumulative:
                return state
        return self.states[-1]

    def stationary(self, iterations=200, tolerance=1e-12):
        """Stationary distribution by power iteration."""
        n = len(self.states)
        pi = [1.0 / n] * n
        for _ in range(iterations):
            nxt = [0.0] * n
            for i, weight in enumerate(pi):
                if weight == 0.0:
                    continue
                row = self.rows[i]
                for j, probability in enumerate(row):
                    nxt[j] += weight * probability
            delta = sum(abs(a - b) for a, b in zip(pi, nxt))
            pi = nxt
            if delta < tolerance:
                break
        return dict(zip(self.states, pi))

    def write_fraction(self, interactions):
        """Stationary probability mass on write states."""
        writes = {i.name for i in interactions if i.is_write}
        return sum(p for state, p in self.stationary().items()
                   if state in writes)


def mix_for_write_ratio(interactions, write_ratio):
    """Stationary mix with exactly *write_ratio* mass on write states.

    Within each class, mass is split by interaction popularity.  RUBiS
    extends its two default matrices to write ratios between 0 and 90%
    this way (Section III.B).
    """
    if not 0 <= write_ratio <= 1:
        raise WorkloadError(f"write ratio outside [0, 1]: {write_ratio}")
    reads = [i for i in interactions if not i.is_write]
    writes = [i for i in interactions if i.is_write]
    if write_ratio > 0 and not writes:
        raise WorkloadError("write ratio > 0 but no write interactions")
    if write_ratio < 1 and not reads:
        raise WorkloadError("write ratio < 1 but no read interactions")
    read_total = sum(i.popularity for i in reads)
    write_total = sum(i.popularity for i in writes)
    mix = []
    for interaction in interactions:
        if interaction.is_write:
            share = (write_ratio * interaction.popularity / write_total
                     if write_total else 0.0)
        else:
            share = ((1.0 - write_ratio) * interaction.popularity
                     / read_total if read_total else 0.0)
        mix.append(share)
    return mix


def normalized_demands(interactions, mix, web_s, app_read_s, app_write_s,
                       db_read_s, db_write_s):
    """Per-interaction demands whose mix-weighted class means are exact.

    Within each class, an interaction's demand is proportional to its
    weight; the proportionality constant is chosen so the mix-weighted
    mean over the class equals the calibration target.  The aggregate
    demand at any write ratio is then exactly the calibrated formula.
    """
    demands = {}
    for tier, read_target, write_target, attr in (
            ("app", app_read_s, app_write_s, "app_weight"),
            ("db", db_read_s, db_write_s, "db_weight")):
        for is_write, target in ((False, read_target), (True, write_target)):
            members = [(i, share) for i, share in zip(interactions, mix)
                       if i.is_write == is_write]
            class_mass = sum(share for _i, share in members)
            if class_mass <= 0:
                for interaction, _share in members:
                    demands.setdefault(interaction.name, {})[tier] = target
                continue
            weighted = sum(getattr(i, attr) * share
                           for i, share in members) / class_mass
            for interaction, _share in members:
                value = target * getattr(interaction, attr) / weighted
                demands.setdefault(interaction.name, {})[tier] = value
    result = {}
    for interaction in interactions:
        per_tier = demands[interaction.name]
        result[interaction.name] = InteractionDemand(
            name=interaction.name,
            is_write=interaction.is_write,
            web_s=web_s,
            app_s=per_tier["app"],
            db_s=per_tier["db"],
        )
    return result
