"""RUBBoS workload model: 24 states, read-only and submission mixes.

RUBBoS (Rice University Bulletin Board System) models a Slashdot-style
news site; it is effectively 2-tier and "places a high load on the
database tier" (Section III.B).  Its two stock matrices differ not just
in write ratio but in *which read pages* they visit: the read-only mix
lives on story/comment pages (DB-heavy), which is why it saturates at a
much lower workload than the 85/15 submission mix (Figure 4).
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import WorkloadError
from repro.workloads.calibration import RUBBOS, RUBBOS_DB_READ_LIGHT_S
from repro.workloads.interactions import (
    Interaction,
    TransitionMatrix,
    mix_for_write_ratio,
    normalized_demands,
)

#: The 24 RUBBoS interaction states with relative in-class weights.
INTERACTIONS = (
    Interaction("StoriesOfTheDay", False, app_weight=1.0, db_weight=1.2),
    Interaction("Home", False, app_weight=0.5, db_weight=0.3),
    Interaction("Register", False, app_weight=0.4, db_weight=0.2),
    Interaction("BrowseCategories", False, app_weight=0.7, db_weight=0.6),
    Interaction("BrowseStoriesByCategory", False, app_weight=1.0,
                db_weight=1.1),
    Interaction("OlderStories", False, app_weight=1.0, db_weight=1.3),
    Interaction("ViewStory", False, app_weight=1.3, db_weight=1.8),
    Interaction("ViewComment", False, app_weight=1.1, db_weight=1.5),
    Interaction("Search", False, app_weight=0.5, db_weight=0.4),
    Interaction("SearchInStories", False, app_weight=1.2, db_weight=1.6),
    Interaction("SearchInComments", False, app_weight=1.2, db_weight=1.7),
    Interaction("SearchInUsers", False, app_weight=0.8, db_weight=0.9),
    Interaction("ViewUserInfo", False, app_weight=0.7, db_weight=0.7),
    Interaction("ModerateComment", False, app_weight=0.6, db_weight=0.6),
    Interaction("AuthorLogin", False, app_weight=0.4, db_weight=0.3),
    Interaction("AuthorTasks", False, app_weight=0.6, db_weight=0.5),
    Interaction("ReviewStories", False, app_weight=1.0, db_weight=1.2),
    Interaction("SubmitStory", False, app_weight=0.5, db_weight=0.3),
    Interaction("SubmitComment", False, app_weight=0.5, db_weight=0.3),
    Interaction("RegisterUser", True, app_weight=1.0, db_weight=1.0),
    Interaction("StoreStory", True, app_weight=1.0, db_weight=1.2),
    Interaction("StoreComment", True, app_weight=1.0, db_weight=0.9),
    Interaction("StoreModeratorLog", True, app_weight=1.0, db_weight=0.8),
    Interaction("AcceptStory", True, app_weight=1.0, db_weight=1.1),
)

STATE_NAMES = tuple(i.name for i in INTERACTIONS)

#: Per-mix read-page popularity.  The read-only matrix concentrates on
#: the heavy story/comment pages; the submission matrix spreads over
#: lighter navigation pages.  Write popularity only matters in the
#: submission mix.
_READONLY_POPULARITY = {
    "StoriesOfTheDay": 3.0, "ViewStory": 4.0, "ViewComment": 3.0,
    "OlderStories": 2.0, "BrowseStoriesByCategory": 2.0,
    "SearchInStories": 1.5, "SearchInComments": 1.0,
}
_SUBMISSION_POPULARITY = {
    "StoriesOfTheDay": 2.0, "Home": 2.0, "BrowseCategories": 1.5,
    "ViewStory": 1.5, "ViewComment": 1.0, "Search": 1.5,
    "SubmitStory": 1.5, "SubmitComment": 1.5, "AuthorLogin": 1.0,
    "StoreStory": 1.5, "StoreComment": 2.5, "RegisterUser": 0.5,
    "StoreModeratorLog": 0.5, "AcceptStory": 0.5,
}

#: Stock submission-matrix write ratio (Section III.B).
SUBMISSION_WRITE_RATIO = 0.15


def _interactions_for(mix):
    popularity = _READONLY_POPULARITY if mix == "readonly" \
        else _SUBMISSION_POPULARITY
    return tuple(
        replace(i, popularity=popularity.get(i.name, 0.5))
        for i in INTERACTIONS
    )


class RubbosModel:
    """The complete RUBBoS workload model for one (mix, write ratio)."""

    def __init__(self, mix, write_ratio):
        if mix not in ("readonly", "submission"):
            raise WorkloadError(
                f"unknown RUBBoS mix {mix!r}; known: readonly, submission"
            )
        if mix == "readonly" and write_ratio != 0:
            raise WorkloadError("the readonly mix has write ratio 0")
        if not 0 <= write_ratio <= 0.95:
            raise WorkloadError(
                f"RUBBoS write ratio must be within [0, 0.95]: {write_ratio}"
            )
        self.benchmark = "rubbos"
        self.mix = mix
        self.write_ratio = write_ratio
        self.calibration = RUBBOS
        interactions = _interactions_for(mix)
        shares = mix_for_write_ratio(interactions, write_ratio)
        self.matrix = TransitionMatrix.memoryless(STATE_NAMES, shares)
        db_read = RUBBOS.db_read_s if mix == "readonly" \
            else RUBBOS_DB_READ_LIGHT_S
        self.demands = normalized_demands(
            interactions, shares,
            web_s=RUBBOS.web_s,
            app_read_s=RUBBOS.app_read_s,
            app_write_s=RUBBOS.app_write_s,
            db_read_s=db_read,
            db_write_s=RUBBOS.db_write_s,
        )
        self.initial_state = "StoriesOfTheDay"

    def demand(self, state):
        try:
            return self.demands[state]
        except KeyError:
            raise WorkloadError(f"unknown RUBBoS interaction {state!r}")

    def mean_demands(self):
        stationary = self.matrix.stationary()
        web = app = db = 0.0
        for state, probability in stationary.items():
            demand = self.demands[state]
            web += probability * demand.web_s
            app += probability * demand.app_s
            db += probability * demand.db_s
        return web, app, db


def build_model(write_ratio, mix=None):
    """Build the RUBBoS model from a driver (mix, write_ratio) pair."""
    if mix is None:
        mix = "readonly" if write_ratio == 0 else "submission"
    return RubbosModel(mix, write_ratio)
