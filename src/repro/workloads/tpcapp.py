"""TPC-App workload model — the paper's anticipated next benchmark.

Section I: "our experiments show promising results for two
representative benchmarks (RUBiS and RUBBoS) and potentially rapid
inclusion of new benchmarks such as TPC-App when a mature
implementation is released."  This module is that inclusion: TPC-App's
seven web-service interactions [18] with the standard transaction mix,
wired through the same catalog/generator/simulation pipeline as the
other two benchmarks — demonstrating the claimed extensibility.

TPC-App is application-server heavy (SOAP/XML processing per service
call) with a substantial write component (order capture), so its
bottleneck profile sits between RUBiS (app-bound) and RUBBoS
(db-bound).
"""

from __future__ import annotations



from repro.errors import WorkloadError
from repro.workloads.calibration import BenchmarkCalibration
from repro.workloads.interactions import (
    Interaction,
    TransitionMatrix,
    mix_for_write_ratio,
    normalized_demands,
)

#: TPC-App's seven service interactions.  Popularities follow the
#: specification's standard mix (CreateOrder-dominated); app weights
#: reflect per-call SOAP processing cost, db weights the transaction
#: footprint.
INTERACTIONS = (
    Interaction("NewProducts", False, app_weight=1.0, db_weight=1.0,
                popularity=7.0),
    Interaction("ProductDetail", False, app_weight=0.9, db_weight=0.9,
                popularity=13.0),
    Interaction("OrderStatus", False, app_weight=0.8, db_weight=1.1,
                popularity=5.0),
    Interaction("NewCustomer", True, app_weight=1.2, db_weight=1.3,
                popularity=1.0),
    Interaction("ChangePaymentMethod", True, app_weight=0.7,
                db_weight=0.8, popularity=5.0),
    Interaction("CreateOrder", True, app_weight=1.4, db_weight=1.5,
                popularity=50.0),
    Interaction("ChangeItem", True, app_weight=1.0, db_weight=1.0,
                popularity=19.0),
)

STATE_NAMES = tuple(i.name for i in INTERACTIONS)

#: Write share of the standard TPC-App mix (order-capture dominated).
STANDARD_WRITE_RATIO = 0.75

#: Calibration: SOAP processing keeps the app tier busy (~20 ms/call on
#: the reference core => ~350 users/app server at the standard mix);
#: transactional writes are the heavier DB operations.
CALIBRATION = BenchmarkCalibration(
    benchmark="tpcapp",
    think_time_s=7.0,
    web_s=0.0015,
    app_read_s=0.018,
    app_write_s=0.021,
    db_read_s=0.003,
    db_write_s=0.006,
)


class TpcAppModel:
    """The TPC-App workload model for one write-ratio point."""

    def __init__(self, write_ratio):
        if not 0.05 <= write_ratio <= 0.95:
            raise WorkloadError(
                f"TPC-App write ratio must be within [0.05, 0.95]: "
                f"{write_ratio} (the mix is transaction-dominated)"
            )
        self.benchmark = "tpcapp"
        self.mix = "standard"
        self.write_ratio = write_ratio
        self.calibration = CALIBRATION
        shares = mix_for_write_ratio(INTERACTIONS, write_ratio)
        self.matrix = TransitionMatrix.memoryless(STATE_NAMES, shares)
        self.demands = normalized_demands(
            INTERACTIONS, shares,
            web_s=CALIBRATION.web_s,
            app_read_s=CALIBRATION.app_read_s,
            app_write_s=CALIBRATION.app_write_s,
            db_read_s=CALIBRATION.db_read_s,
            db_write_s=CALIBRATION.db_write_s,
        )
        self.initial_state = "NewProducts"

    def demand(self, state):
        try:
            return self.demands[state]
        except KeyError:
            raise WorkloadError(f"unknown TPC-App interaction {state!r}")

    def mean_demands(self):
        stationary = self.matrix.stationary()
        web = app = db = 0.0
        for state, probability in stationary.items():
            demand = self.demands[state]
            web += probability * demand.web_s
            app += probability * demand.app_s
            db += probability * demand.db_s
        return web, app, db


def build_model(write_ratio, mix=None):
    """Build the TPC-App model; the standard mix is the only mix."""
    if mix not in (None, "standard"):
        raise WorkloadError(
            f"TPC-App defines only the standard mix, got {mix!r}"
        )
    return TpcAppModel(write_ratio)


# Register with the shared calibration lookup (kept here to avoid a
# circular import; rubis/rubbos are registered in calibration.py).
from repro.workloads import calibration as _calibration  # noqa: E402

_calibration.CALIBRATIONS.setdefault("tpcapp", CALIBRATION)
