"""The campaign hot-path caching plane: one switch, shared accounting.

The paper's observation-at-scale claim rests on the apparatus being
cheap to produce and run; this module is the control point for every
cache that amortizes apparatus cost across a campaign — the Mulini
bundle cache, the shellvm parse cache and the package-archive memo all
register here.  The caches are pure memoization: **they must never be
observable** in results, traces or fault injection.  A campaign run
with caches disabled stores a byte-identical database to one run with
caches on (``benchmarks/test_bench_hotpath.py`` enforces this), which
is why the switch exists at all — the identity tests need an honest
cache-free leg to diff against.

Use :func:`caches_disabled` to run a code block cache-free::

    with hotpath.caches_disabled():
        report = run_campaign(tbl)        # every artifact built fresh

Disabling clears every registered cache, so re-enabling starts cold;
:func:`stats` exposes per-cache hit/miss counters for the benchmark's
report (never for control flow).

Since the campaign service plane landed, the caches are also
*tenant-shared*: a ``repro serve`` daemon multiplexes many concurrent
campaigns over one cache plane, and each campaign wants its own
hit/miss attribution plus its own cache switch.  :func:`tenant` scopes
the current thread to one campaign::

    with hotpath.tenant("campaign-7"):
        mulini.generate(...)              # hits/misses attributed

``stats(tenant="campaign-7")`` then reports exactly that campaign's
lookups, and :func:`caches_disabled` *inside a tenant scope* turns the
caches off for that tenant alone — a concurrent campaign keeps its
shared entries and its hits.  Outside any tenant scope the historical
global behaviour is unchanged.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_state_lock = threading.Lock()
_enabled = True
_caches = {}                # name -> MemoCache
_disabled_tenants = set()   # tenants running cache-free right now
_scope = threading.local()  # .tenant — this thread's campaign identity


def enabled():
    """Whether the hot-path caches are active for the calling thread
    (the global switch, minus a tenant-scoped disable)."""
    if not _enabled:
        return False
    tenant = current_tenant()
    return tenant is None or tenant not in _disabled_tenants


def set_enabled(flag):
    """Flip the global cache switch; disabling drops cached entries.

    Meant for test/benchmark setup, not for flipping mid-campaign —
    workers observe the switch at their next cache lookup.  Inside a
    daemon use the tenant-scoped :func:`caches_disabled` instead: the
    global switch is shared by every campaign.
    """
    global _enabled
    with _state_lock:
        _enabled = bool(flag)
        if not _enabled:
            for cache in _caches.values():
                cache.clear()


@contextmanager
def tenant(name):
    """Scope the calling thread to campaign *name* for attribution.

    Every cache lookup inside the scope is counted against *name* (see
    :func:`stats`), and a :func:`caches_disabled` inside the scope
    disables the caches for *name* alone.  Scopes nest; the inner
    tenant wins.  Worker threads don't inherit the scope — the fleet
    re-enters it around every task it runs on a campaign's behalf.
    """
    previous = getattr(_scope, "tenant", None)
    _scope.tenant = name
    try:
        yield
    finally:
        _scope.tenant = previous


def current_tenant():
    """The campaign the calling thread is attributed to (or ``None``)."""
    return getattr(_scope, "tenant", None)


def set_tenant_enabled(name, flag):
    """Turn the cache plane on/off for one tenant without touching the
    shared tables or any other tenant's lookups."""
    with _state_lock:
        if flag:
            _disabled_tenants.discard(name)
        else:
            _disabled_tenants.add(name)


@contextmanager
def caches_disabled():
    """Run a block with the hot-path caches off.

    Outside a tenant scope this is the historical global switch: every
    cache is emptied and every thread builds fresh until the block
    exits.  Inside a :func:`tenant` scope it disables the caches for
    *that tenant only* — lookups on the tenant's behalf bypass the
    shared tables (building fresh, which is always correct: values are
    pure functions of their keys), while concurrent tenants keep their
    entries and their hit rates.
    """
    scoped = current_tenant()
    if scoped is None:
        with _state_lock:
            previous = _enabled
        set_enabled(False)
        try:
            yield
        finally:
            set_enabled(previous)
        return
    with _state_lock:
        already = scoped in _disabled_tenants
        _disabled_tenants.add(scoped)
    try:
        yield
    finally:
        if not already:
            set_tenant_enabled(scoped, True)


def clear():
    """Empty every registered cache (counters included, all tenants) —
    the cold start the benchmark's caches-on leg measures from."""
    with _state_lock:
        for cache in _caches.values():
            cache.clear()


def stats(tenant=None):
    """``{cache name: {"entries": n, "hits": h, "misses": m}}``.

    Without *tenant*, the counters aggregate every lookup since the
    last :func:`clear` (the historical shape).  With *tenant*, hits and
    misses are that campaign's alone; ``entries`` stays the shared
    table size, since entries belong to the plane, not to a tenant.
    """
    with _state_lock:
        return {name: cache.snapshot_stats(tenant=tenant)
                for name, cache in sorted(_caches.items())}


def tenants():
    """Every tenant any cache has attributed a lookup to, sorted."""
    with _state_lock:
        seen = set()
        for cache in _caches.values():
            seen.update(cache.tenants())
        return sorted(seen)


class MemoCache:
    """A bounded, thread-safe memo table honouring the global switch.

    Values must be immutable (or treated as such by every consumer):
    a hit returns the stored object itself, shared across threads.
    When the table reaches *capacity* the oldest entry is evicted
    (FIFO, by insertion order) — campaign working sets are far below
    any sane capacity, so eviction is a backstop against unbounded
    growth, not a tuning knob.

    Lookups made inside a :func:`tenant` scope are additionally
    attributed to that tenant, so a shared daemon can report per-
    campaign effectiveness from one table.
    """

    def __init__(self, name, capacity=4096):
        self.name = name
        self.capacity = capacity
        self._lock = threading.Lock()
        self._table = {}
        self._hits = 0
        self._misses = 0
        self._tenant_hits = {}      # tenant -> hits
        self._tenant_misses = {}    # tenant -> misses
        with _state_lock:
            _caches[name] = self

    def get(self, key, build):
        """The cached value for *key*, building (and storing) on miss.

        *build* runs outside the table lock; two threads racing the
        same key both build, and the later store wins — safe because
        values are pure functions of their key.
        """
        # Inlined enabled() + current_tenant(): one threading.local
        # read instead of two function calls — get() is the hottest
        # call in a warm campaign (every script compile, archive plan
        # and bundle lookup lands here).
        if not _enabled:
            return build()
        tenant = getattr(_scope, "tenant", None)
        if tenant is not None and tenant in _disabled_tenants:
            return build()
        with self._lock:
            try:
                value = self._table[key]
                self._hits += 1
                if tenant is not None:
                    self._tenant_hits[tenant] = \
                        self._tenant_hits.get(tenant, 0) + 1
                return value
            except KeyError:
                self._misses += 1
                if tenant is not None:
                    self._tenant_misses[tenant] = \
                        self._tenant_misses.get(tenant, 0) + 1
        value = build()
        with self._lock:
            while len(self._table) >= self.capacity:
                # Evict the oldest entry (dict preserves insertion
                # order) rather than flushing: a flush would wipe every
                # concurrent tenant's hot entries the moment one
                # campaign overflows the table.
                del self._table[next(iter(self._table))]
            self._table[key] = value
        return value

    def clear(self):
        with self._lock:
            self._table.clear()
            self._hits = 0
            self._misses = 0
            self._tenant_hits.clear()
            self._tenant_misses.clear()

    def snapshot_stats(self, tenant=None):
        with self._lock:
            if tenant is not None:
                return {"entries": len(self._table),
                        "hits": self._tenant_hits.get(tenant, 0),
                        "misses": self._tenant_misses.get(tenant, 0)}
            return {"entries": len(self._table), "hits": self._hits,
                    "misses": self._misses}

    def tenants(self):
        with self._lock:
            return set(self._tenant_hits) | set(self._tenant_misses)
