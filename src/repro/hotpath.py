"""The campaign hot-path caching plane: one switch, shared accounting.

The paper's observation-at-scale claim rests on the apparatus being
cheap to produce and run; this module is the control point for every
cache that amortizes apparatus cost across a campaign — the Mulini
bundle cache, the shellvm parse cache and the package-archive memo all
register here.  The caches are pure memoization: **they must never be
observable** in results, traces or fault injection.  A campaign run
with caches disabled stores a byte-identical database to one run with
caches on (``benchmarks/test_bench_hotpath.py`` enforces this), which
is why the switch exists at all — the identity tests need an honest
cache-free leg to diff against.

Use :func:`caches_disabled` to run a code block cache-free::

    with hotpath.caches_disabled():
        report = run_campaign(tbl)        # every artifact built fresh

Disabling clears every registered cache, so re-enabling starts cold;
:func:`stats` exposes per-cache hit/miss counters for the benchmark's
report (never for control flow).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_state_lock = threading.Lock()
_enabled = True
_caches = {}        # name -> MemoCache


def enabled():
    """Whether the hot-path caches are currently active."""
    return _enabled


def set_enabled(flag):
    """Flip the global cache switch; disabling drops cached entries.

    Meant for test/benchmark setup, not for flipping mid-campaign —
    workers observe the switch at their next cache lookup.
    """
    global _enabled
    with _state_lock:
        _enabled = bool(flag)
        if not _enabled:
            for cache in _caches.values():
                cache.clear()


@contextmanager
def caches_disabled():
    """Run a block with every hot-path cache off (and emptied)."""
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def clear():
    """Empty every registered cache (counters included) — the cold
    start the benchmark's caches-on leg measures from."""
    with _state_lock:
        for cache in _caches.values():
            cache.clear()


def stats():
    """``{cache name: {"entries": n, "hits": h, "misses": m}}``."""
    with _state_lock:
        return {name: cache.snapshot_stats()
                for name, cache in sorted(_caches.items())}


class MemoCache:
    """A bounded, thread-safe memo table honouring the global switch.

    Values must be immutable (or treated as such by every consumer):
    a hit returns the stored object itself, shared across threads.
    When the table reaches *capacity* it is emptied — campaign working
    sets are far below any sane capacity, so eviction is a backstop
    against unbounded growth, not a tuning knob.
    """

    def __init__(self, name, capacity=4096):
        self.name = name
        self.capacity = capacity
        self._lock = threading.Lock()
        self._table = {}
        self._hits = 0
        self._misses = 0
        with _state_lock:
            _caches[name] = self

    def get(self, key, build):
        """The cached value for *key*, building (and storing) on miss.

        *build* runs outside the table lock; two threads racing the
        same key both build, and the later store wins — safe because
        values are pure functions of their key.
        """
        if not _enabled:
            return build()
        with self._lock:
            try:
                value = self._table[key]
                self._hits += 1
                return value
            except KeyError:
                self._misses += 1
        value = build()
        with self._lock:
            if len(self._table) >= self.capacity:
                self._table.clear()
            self._table[key] = value
        return value

    def clear(self):
        with self._lock:
            self._table.clear()
            self._hits = 0
            self._misses = 0

    def snapshot_stats(self):
        with self._lock:
            return {"entries": len(self._table), "hits": self._hits,
                    "misses": self._misses}
