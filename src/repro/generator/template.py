"""Minimal line-oriented template engine for Mulini backends.

Mulini is fundamentally a template-driven generator (Section II), so
the backends share one small engine rather than string-concatenating
scripts ad hoc.  The language is deliberately tiny:

* ``{{ expr }}`` — substitution; ``expr`` is a dotted path resolved
  against the context (dict keys or attributes).
* ``{% for name in expr %}`` ... ``{% endfor %}`` — block repetition.
* ``{% if expr %}`` ... ``{% else %}`` ... ``{% endif %}`` — truthiness.

Directives must sit alone on their line; substitutions can appear
anywhere.  Unknown names are hard errors — a generated script with a
hole in it must never reach deployment.
"""

from __future__ import annotations

import re

from repro.errors import TemplateError

_SUBST_RE = re.compile(r"\{\{\s*([A-Za-z_][A-Za-z0-9_.]*)\s*\}\}")
_DIRECTIVE_RE = re.compile(r"^\s*\{%\s*(.+?)\s*%\}\s*$")
_FOR_RE = re.compile(
    r"^for\s+([A-Za-z_][A-Za-z0-9_]*)\s+in\s+([A-Za-z_][A-Za-z0-9_.]*)$"
)
_IF_RE = re.compile(r"^if\s+([A-Za-z_][A-Za-z0-9_.]*)$")


def lookup(context, path):
    """Resolve a dotted *path* against *context* (dicts then attributes)."""
    value = context
    for part in path.split("."):
        if isinstance(value, dict):
            if part not in value:
                raise TemplateError(f"unknown template name {path!r}")
            value = value[part]
        elif hasattr(value, part):
            value = getattr(value, part)
        else:
            raise TemplateError(f"unknown template name {path!r}")
    return value


def render(template, context):
    """Render *template* with *context*; returns the generated text."""
    lines = template.split("\n")
    output, index = _render_block(lines, 0, context, terminators=())
    if index != len(lines):
        raise TemplateError(
            f"unexpected directive at line {index + 1}: {lines[index]!r}"
        )
    return "\n".join(output)


def _render_block(lines, index, context, terminators):
    """Render until a terminating directive; returns (lines, next_index)."""
    output = []
    while index < len(lines):
        line = lines[index]
        directive_match = _DIRECTIVE_RE.match(line)
        if directive_match is None:
            output.append(_substitute(line, context, index))
            index += 1
            continue
        directive = directive_match.group(1)
        keyword = directive.split(None, 1)[0]
        if keyword in terminators or directive in terminators:
            return output, index
        if keyword == "for":
            for_match = _FOR_RE.match(directive)
            if for_match is None:
                raise TemplateError(
                    f"malformed for-directive at line {index + 1}: "
                    f"{directive!r}"
                )
            variable, path = for_match.groups()
            items = lookup(context, path)
            body_start = index + 1
            # Render once with a probe to find the matching endfor even
            # for empty sequences: scan for balance.
            end_index = _find_matching(lines, body_start, "for", "endfor",
                                       index)
            for item in items:
                loop_context = dict(_as_dict(context))
                loop_context[variable] = item
                body_output, stop = _render_block(
                    lines, body_start, loop_context, terminators=("endfor",)
                )
                if stop != end_index:
                    raise TemplateError(
                        f"inconsistent for-block nesting at line {index + 1}"
                    )
                output.extend(body_output)
            index = end_index + 1
            continue
        if keyword == "if":
            if_match = _IF_RE.match(directive)
            if if_match is None:
                raise TemplateError(
                    f"malformed if-directive at line {index + 1}: "
                    f"{directive!r}"
                )
            condition = bool(lookup(context, if_match.group(1)))
            branch_output, stop = _render_block(
                lines, index + 1, context, terminators=("else", "endif")
            )
            if stop >= len(lines):
                raise TemplateError(
                    f"unterminated if-directive at line {index + 1}"
                )
            took_else = _DIRECTIVE_RE.match(lines[stop]).group(1) == "else"
            if condition:
                output.extend(branch_output)
            if took_else:
                else_output, stop = _render_block(
                    lines, stop + 1, context, terminators=("endif",)
                )
                if not condition:
                    output.extend(else_output)
            if stop >= len(lines):
                raise TemplateError(
                    f"unterminated if-directive at line {index + 1}"
                )
            index = stop + 1
            continue
        raise TemplateError(
            f"unknown directive {keyword!r} at line {index + 1}"
        )
    return output, index


def _find_matching(lines, index, opener, closer, start_line):
    depth = 0
    while index < len(lines):
        match = _DIRECTIVE_RE.match(lines[index])
        if match is not None:
            keyword = match.group(1).split(None, 1)[0]
            if keyword == opener:
                depth += 1
            elif keyword == closer:
                if depth == 0:
                    return index
                depth -= 1
        index += 1
    raise TemplateError(
        f"unterminated {opener}-directive at line {start_line + 1}"
    )


def _substitute(line, context, index):
    def replace(match):
        value = lookup(context, match.group(1))
        return str(value)

    try:
        return _SUBST_RE.sub(replace, line)
    except TemplateError as error:
        raise TemplateError(f"line {index + 1}: {error}")


def _as_dict(context):
    if isinstance(context, dict):
        return context
    raise TemplateError("loop bodies require a dict context")
