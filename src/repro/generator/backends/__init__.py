"""Mulini generation backends: shell scripts and SmartFrog descriptions."""

from repro.generator.backends.shell import ServerInstance, ShellBackend
from repro.generator.backends.smartfrog import (
    SmartFrogBackend,
    parse_smartfrog,
)

__all__ = [
    "ServerInstance",
    "ShellBackend",
    "SmartFrogBackend",
    "parse_smartfrog",
]
