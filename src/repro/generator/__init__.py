"""Mulini code generator: templates, backends, artifacts, config files."""

from repro.generator.artifacts import Bundle, HostPlan
from repro.generator.mulini import Mulini, experiment_point_id
from repro.generator.template import render

__all__ = [
    "Bundle",
    "HostPlan",
    "Mulini",
    "experiment_point_id",
    "render",
]
