"""System- and application-level monitor generation (Section II).

Mulini "generates parameterized monitors as separate tools to gather
system-level metrics including CPU, memory usages, network I/O, and
disk I/O", customizing them per host so data files never collide.
This module owns the naming conventions and the monitor-side config;
the shell backend turns them into SYS_MON_* scripts.
"""

from __future__ import annotations

from repro.generator.configfiles import render_properties

SYSSTAT_ROOT = "/opt/sysstat"
SYSSTAT_DAEMON = SYSSTAT_ROOT + "/bin/sar"
MONITOR_OUTPUT_DIR = "/var/log/sysmon"
MONITOR_CONFIG_PATH = "/etc/sysmon.properties"

#: sar flag per TBL metric name.
METRIC_FLAGS = {"cpu": "-u", "memory": "-r", "disk": "-d", "network": "-n"}


def monitor_role(tier, index):
    """Script-name role for the monitor on a server host (``APP1``)."""
    return f"{tier.upper()}{index}"


def monitor_output_path(host_name):
    """Per-host data file, 'customized to each host' per the paper."""
    return f"{MONITOR_OUTPUT_DIR}/{host_name}.dat"


def sar_argv(monitor_spec, host_name):
    """The sar command line the ignition script starts on *host_name*."""
    argv = [SYSSTAT_DAEMON]
    for metric in monitor_spec.metrics:
        argv.append(METRIC_FLAGS[metric])
    argv.extend(["-i", f"{monitor_spec.interval:g}",
                 "-o", monitor_output_path(host_name)])
    return argv


def render_sysmon_properties(monitor_spec, host_name):
    """Host-customized monitor configuration file."""
    return render_properties(
        [
            ("sysmon.host", host_name),
            ("sysmon.interval", f"{monitor_spec.interval:g}"),
            ("sysmon.metrics", ",".join(monitor_spec.metrics)),
            ("sysmon.output", monitor_output_path(host_name)),
        ],
        header=f"sysstat monitor configuration for {host_name}",
    )
