"""Workload-driver parameter generation (Section II).

Mulini "generates a workload driver ... and then parameterizes it with
various settings (e.g., the number of concurrent users)".  Here the
driver program is the simulation's client population; what Mulini
generates is the driver *parameter file* deployed to the client host,
plus a small ignition wrapper.  The simulation layer parses the deployed
file — the sweep parameters reach the clients through the generated
artifact, exactly as in the paper.
"""

from __future__ import annotations

from repro.errors import DeployError, GenerationError, WorkloadError
from repro.generator.configfiles import parse_properties, render_properties
from repro.workloads.arrivals import ArrivalSpec

DRIVER_PATH = "/opt/driver"
DRIVER_CONFIG = DRIVER_PATH + "/driver.properties"
DRIVER_LOG_DIR = "/var/log/driver"


def mix_name(benchmark, write_ratio):
    """The transition-matrix name for a benchmark/write-ratio pair.

    RUBiS ships browse-only and bidding matrices; RUBBoS ships read-only
    and submission matrices (Section III.B).  A zero write ratio selects
    the read-only matrix; anything else the read-write one, morphed to
    the requested ratio by the workload model.
    """
    if benchmark == "rubis":
        return "browsing" if write_ratio == 0 else "bidding"
    if benchmark == "rubbos":
        return "readonly" if write_ratio == 0 else "submission"
    if benchmark == "tpcapp":
        return "standard"
    raise GenerationError(f"unknown benchmark {benchmark!r}")


def render_driver_properties(experiment, topology, workload, write_ratio,
                             target_host, target_port):
    """Render the parameter file the emulated-client driver reads."""
    if workload <= 0:
        raise GenerationError(f"workload must be positive, got {workload}")
    pairs = [
        ("driver.benchmark", experiment.benchmark),
        ("driver.mix", mix_name(experiment.benchmark, write_ratio)),
        ("driver.users", workload),
        ("driver.write_ratio", f"{write_ratio:g}"),
        ("driver.think_time", f"{experiment.think_time:g}"),
        ("driver.timeout", f"{experiment.timeout:g}"),
        ("driver.warmup", f"{experiment.trial.warmup:g}"),
        ("driver.run", f"{experiment.trial.run:g}"),
        ("driver.cooldown", f"{experiment.trial.cooldown:g}"),
        ("driver.seed", experiment.seed),
        ("driver.topology", topology.label()),
        ("driver.target.host", target_host),
        ("driver.target.port", target_port),
        ("driver.log", f"{DRIVER_LOG_DIR}/requests.log"),
    ]
    arrival = getattr(experiment, "arrival", None)
    if arrival is not None:
        # Open-loop arrivals ride the deployed artifact like every
        # other sweep parameter, so the simulation is driven by what
        # was actually deployed.
        pairs.append(("driver.arrival", arrival.kind))
        if arrival.rate is not None:
            pairs.append(("driver.arrival.rate", f"{arrival.rate:g}"))
        pairs.append(("driver.arrival.amplitude", f"{arrival.amplitude:g}"))
        pairs.append(("driver.arrival.period", f"{arrival.period:g}"))
        pairs.append(("driver.arrival.burst", f"{arrival.burst:g}"))
        pairs.append(("driver.arrival.duty", f"{arrival.duty:g}"))
        pairs.append(("driver.arrival.at", f"{arrival.at:g}"))
        pairs.append(("driver.arrival.session", arrival.session_length))
    return render_properties(pairs, header="emulated-client driver")


class DriverParameters:
    """Typed view over a deployed driver.properties file."""

    def __init__(self, benchmark, mix, users, write_ratio, think_time,
                 timeout, warmup, run, cooldown, seed, topology_label,
                 target_host, target_port, log_path, arrival=None):
        self.benchmark = benchmark
        self.mix = mix
        self.users = users
        self.write_ratio = write_ratio
        self.think_time = think_time
        self.timeout = timeout
        self.warmup = warmup
        self.run = run
        self.cooldown = cooldown
        self.seed = seed
        self.topology_label = topology_label
        self.target_host = target_host
        self.target_port = target_port
        self.log_path = log_path
        #: ArrivalSpec for open-loop trials; None keeps the closed loop.
        self.arrival = arrival


def parse_driver_properties(text):
    """Parse a deployed driver.properties back to typed parameters."""
    values = parse_properties(text)

    def require(key, convert=str):
        if key not in values:
            raise DeployError(f"driver.properties missing {key!r}")
        try:
            return convert(values[key])
        except ValueError:
            raise DeployError(
                f"driver.properties bad value for {key!r}: {values[key]!r}"
            )

    arrival = None
    if "driver.arrival" in values:
        params = {"kind": values["driver.arrival"]}
        for key, convert in (("rate", float), ("amplitude", float),
                             ("period", float), ("burst", float),
                             ("duty", float), ("at", float)):
            raw = values.get(f"driver.arrival.{key}")
            if raw is not None:
                try:
                    params[key] = convert(raw)
                except ValueError:
                    raise DeployError(
                        f"driver.properties bad value for "
                        f"driver.arrival.{key}: {raw!r}"
                    ) from None
        if "driver.arrival.session" in values:
            params["session_length"] = require("driver.arrival.session", int)
        try:
            arrival = ArrivalSpec(**params)
        except WorkloadError as error:
            raise DeployError(
                f"driver.properties carries a bad arrival spec: {error}"
            ) from None
    return DriverParameters(
        benchmark=require("driver.benchmark"),
        mix=require("driver.mix"),
        users=require("driver.users", int),
        write_ratio=require("driver.write_ratio", float),
        think_time=require("driver.think_time", float),
        timeout=require("driver.timeout", float),
        warmup=require("driver.warmup", float),
        run=require("driver.run", float),
        cooldown=require("driver.cooldown", float),
        seed=require("driver.seed", int),
        topology_label=require("driver.topology"),
        target_host=require("driver.target.host"),
        target_port=require("driver.target.port", int),
        log_path=require("driver.log"),
        arrival=arrival,
    )
