"""Generated-artifact bundles and host plans.

A :class:`Bundle` is everything Mulini generates for one experiment
point: the master ``run.sh``, per-server subscripts, vendor config
files, the workload-driver parameters and monitor scripts.  Bundles
know their own accounting (script/config line counts, file counts),
which is how the paper's Table 3/4/5 management-scale numbers are
regenerated rather than asserted.
"""

from __future__ import annotations

import posixpath

from repro.errors import GenerationError
from repro.spec.topology import TIER_ORDER


class HostPlan:
    """Mapping of logical experiment roles to concrete host names."""

    def __init__(self, control, client, tier_hosts):
        self.control = control
        self.client = client
        self._tier_hosts = {tier: list(hosts)
                            for tier, hosts in tier_hosts.items()}

    @classmethod
    def from_allocation(cls, allocation):
        return cls(
            control=allocation.control.name,
            client=allocation.client.name,
            tier_hosts={
                tier: [host.name for host in hosts]
                for tier, hosts in allocation.tier_hosts.items()
            },
        )

    @classmethod
    def synthetic(cls, topology):
        """A host plan with generated names, for offline generation.

        The paper generates scripts before machines are powered on; this
        mirrors that mode (used heavily by the Table 3/4/5 benches that
        only need the artifacts, not a live deployment).
        """
        tier_hosts = {}
        counter = 1
        for tier, count in topology.tiers():
            tier_hosts[tier] = [f"node-{counter + i}" for i in range(count)]
            counter += count
        return cls(control="control", client="client",
                   tier_hosts=tier_hosts)

    def fingerprint(self):
        """Hashable identity of the role->host mapping — part of the
        bundle cache key, since every generated script embeds the
        concrete host names."""
        return (self.control, self.client,
                tuple((tier, tuple(hosts))
                      for tier, hosts in sorted(self._tier_hosts.items())))

    def host_for(self, tier, index):
        hosts = self._tier_hosts.get(tier, [])
        if not 1 <= index <= len(hosts):
            raise GenerationError(
                f"host plan has no host for {tier}{index}"
            )
        return hosts[index - 1]

    def hosts_in(self, tier):
        return list(self._tier_hosts.get(tier, []))

    def server_hosts(self):
        """(tier, index, host) triples in deployment order."""
        for tier in TIER_ORDER:
            for index, host in enumerate(self._tier_hosts.get(tier, []), 1):
                yield tier, index, host

    def all_hosts(self):
        names = [self.control, self.client]
        for _tier, _index, host in self.server_hosts():
            names.append(host)
        return names


class Bundle:
    """The generated artifact set for one experiment point."""

    SCRIPT_DIR = "scripts"
    CONFIG_DIR = "config"

    def __init__(self, experiment_id, root="/experiments"):
        if "/" in experiment_id:
            raise GenerationError(
                f"experiment id must not contain '/': {experiment_id!r}"
            )
        self.experiment_id = experiment_id
        self.root = posixpath.join(root, experiment_id)
        self.files = {}
        self._manifest_cache = None
        self._install_plan = None
        self._line_totals = None

    # -- construction ------------------------------------------------------

    def add(self, relative_path, content):
        if relative_path in self.files:
            raise GenerationError(
                f"bundle already contains {relative_path!r}"
            )
        if not content.endswith("\n"):
            content += "\n"
        self.files[relative_path] = content
        self._manifest_cache = None
        self._install_plan = None
        self._line_totals = None
        return relative_path

    def add_script(self, name, content):
        return self.add(posixpath.join(self.SCRIPT_DIR, name), content)

    def add_config(self, name, content):
        return self.add(posixpath.join(self.CONFIG_DIR, name), content)

    # -- queries -----------------------------------------------------------

    def path_of(self, relative_path):
        return posixpath.join(self.root, relative_path)

    def content(self, relative_path):
        try:
            return self.files[relative_path]
        except KeyError:
            raise GenerationError(
                f"bundle has no file {relative_path!r}; known: "
                f"{sorted(self.files)}"
            )

    def script_names(self):
        prefix = self.SCRIPT_DIR + "/"
        return sorted(p[len(prefix):] for p in self.files
                      if p.startswith(prefix))

    def config_names(self):
        prefix = self.CONFIG_DIR + "/"
        return sorted(p[len(prefix):] for p in self.files
                      if p.startswith(prefix))

    def line_count(self, relative_path):
        return self.content(relative_path).count("\n")

    def _count_lines(self):
        """Memoized (script, config) line totals.

        Every trial records both totals in its database row, and the
        generation cache shares one bundle across a sweep point's
        repetitions — recounting per trial made Table 3 accounting a
        measurable slice of campaign runtime.
        """
        if self._line_totals is None:
            scripts = self.line_count("run.sh") \
                if "run.sh" in self.files else 0
            script_prefix = self.SCRIPT_DIR + "/"
            config_prefix = self.CONFIG_DIR + "/"
            configs = 0
            for path in self.files:
                if path.startswith(script_prefix):
                    scripts += self.line_count(path)
                elif path.startswith(config_prefix):
                    configs += self.line_count(path)
            self._line_totals = (scripts, configs)
        return self._line_totals

    def script_line_total(self):
        """Total generated script lines (Table 3's 'generated scripts')."""
        return self._count_lines()[0]

    def config_line_total(self):
        """Total configuration-file lines (Table 3's 'config changes')."""
        return self._count_lines()[1]

    def file_count(self):
        return len(self.files)

    def manifest(self):
        """Human-readable inventory of the bundle.

        Memoized: bundles are shared across every trial of a sweep
        point through the generation cache, and each trial installs the
        manifest — recounting every file's lines per install would make
        the inventory the most expensive artifact in the bundle.
        """
        if self._manifest_cache is not None:
            return self._manifest_cache
        lines = [f"# Mulini bundle {self.experiment_id}",
                 f"# root: {self.root}",
                 f"# files: {self.file_count()}"]
        for path in sorted(self.files):
            lines.append(f"{self.line_count(path):6d}  {path}")
        lines.append(f"{self.script_line_total():6d}  TOTAL script lines")
        lines.append(f"{self.config_line_total():6d}  TOTAL config lines")
        self._manifest_cache = "\n".join(lines) + "\n"
        return self._manifest_cache

    # -- installation ------------------------------------------------------

    def install_to(self, control_host):
        """Write every artifact into the control host's filesystem.

        The install plan (absolute path, content pairs) is memoized for
        the same reason as the manifest: the generation cache shares one
        bundle across every repetition of a sweep point, and each trial
        re-installs it onto a fresh control host.
        """
        if self._install_plan is None:
            items = [(self.path_of(path), content)
                     for path, content in self.files.items()]
            items.append((self.path_of("manifest.txt"), self.manifest()))
            self._install_plan = tuple(items)
        control_host.fs.write_many(self._install_plan)
        return self.path_of("run.sh")
