"""The Mulini code generator (Section II) — the paper's enabling artifact.

Mulini consumes a CIM/MOF resource model plus a TBL experiment spec and
generates, per experiment point, the complete apparatus: deployment
scripts, vendor configuration files, workload-driver parameters and
per-host monitors.  "We modify Mulini's input specification once and
the necessary modifications are propagated automatically" (III.C).
"""

from __future__ import annotations

import re

from repro import hotpath
from repro.errors import GenerationError
from repro.generator.artifacts import HostPlan
from repro.generator.backends.shell import ShellBackend
from repro.generator.backends.smartfrog import SmartFrogBackend
from repro.spec import catalog
from repro.spec.validation import validate


def experiment_point_id(experiment, topology, workload, write_ratio):
    """Stable identifier for one sweep point, usable as a path segment."""
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", experiment.name)
    return (f"{experiment.benchmark}-{name}-{topology.label()}"
            f"-u{workload}-w{round(write_ratio * 100)}")


class Mulini:
    """Generator facade bound to one resource model."""

    def __init__(self, resource_model, testbed_spec=None):
        self.resource_model = resource_model
        if testbed_spec is not None:
            # Fail fast: an inconsistent spec pair must never generate.
            self.validation_warnings = validate(resource_model, testbed_spec)
        else:
            self.validation_warnings = []

    def effective_stack(self, experiment):
        """Tier -> package tuple, with app-server and MOF overrides applied."""
        stack = catalog.stack_for(experiment.benchmark,
                                  app_server=experiment.app_server)
        return {
            tier: tuple(self.resource_model.package(p.name)
                        for p in packages)
            for tier, packages in stack.items()
        }

    def generate(self, experiment, topology, workload, write_ratio,
                 host_plan=None, backend="shell"):
        """Generate the artifact bundle for one experiment point.

        Without a *host_plan* a synthetic plan is used (offline
        generation, as when scripts are produced before node assignment).
        The ``shell`` backend returns a :class:`Bundle`; the
        ``smartfrog`` backend returns the description text.
        """
        self._check_point(experiment, topology, workload, write_ratio)
        if host_plan is None:
            host_plan = HostPlan.synthetic(topology)
        stack = self.effective_stack(experiment)
        point_id = experiment_point_id(experiment, topology, workload,
                                       write_ratio)
        if backend == "shell":
            generator = ShellBackend(self.resource_model, stack)
            if hotpath.enabled():
                # Memoized path: byte-identical to the uncached one
                # (the hot-path identity tests diff the two), but a
                # sweep re-renders only the parameter-bearing files.
                from repro.generator.cache import cached_generate
                return cached_generate(generator, experiment, topology,
                                       workload, write_ratio, host_plan,
                                       point_id)
        elif backend == "smartfrog":
            generator = SmartFrogBackend(self.resource_model, stack)
        else:
            raise GenerationError(
                f"unknown backend {backend!r}; known: shell, smartfrog"
            )
        return generator.generate(experiment, topology, workload,
                                  write_ratio, host_plan, point_id)

    def generate_sweep(self, experiment, backend="shell"):
        """Yield ``(topology, workload, write_ratio, bundle)`` for every
        point of *experiment* with synthetic host plans.

        This is the mode behind the management-scale accounting of
        Table 3: hundreds of thousands of generated script lines flow
        out of a single TBL change.
        """
        for topology, workload, write_ratio in experiment.points():
            bundle = self.generate(experiment, topology, workload,
                                   write_ratio, backend=backend)
            yield topology, workload, write_ratio, bundle

    def _check_point(self, experiment, topology, workload, write_ratio):
        if workload <= 0:
            raise GenerationError(f"workload must be positive: {workload}")
        if not 0 <= write_ratio <= 1:
            raise GenerationError(
                f"write ratio outside [0, 1]: {write_ratio}"
            )
        for tier in ("app", "db"):
            if tier not in self.resource_model.tiers \
                    and topology.count(tier) > 0:
                raise GenerationError(
                    f"resource model does not assign tier {tier!r} "
                    f"needed by topology {topology.label()}"
                )
