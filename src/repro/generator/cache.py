"""Memoizing bundle cache: amortize Mulini generation across a sweep.

The paper's sweeps run the *same* experiment family over thousands of
points; the generated bundles differ only in the experiment-point id
(embedded in paths and script headers) and in the two parameter-bearing
files (``config/driver.properties`` and ``scripts/CLIENT_ignition.sh``,
which carry workload, write ratio, mix and seed).  The cache exploits
that structure at two levels:

* **L1 (exact point)** — keyed on everything including the seed; a hit
  (a retried trial, a resumed point) reuses the complete file set.
* **L2 (chassis)** — keyed with the seed normalized out and without the
  point's workload/write-ratio; a hit reuses every point-invariant file
  with the experiment id substituted and re-renders only the
  :data:`~repro.generator.backends.shell.ShellBackend.POINT_FILES`.

Both levels key on the resource model's :meth:`fingerprint` and the
host plan's :meth:`fingerprint`, so a model override or a different
node assignment invalidates naturally.  Hits rebuild a **fresh**
:class:`~repro.generator.artifacts.Bundle` sharing the immutable
content strings, so no mutable state crosses trials or workers, and
the returned bundle is byte-identical to an uncached generation —
the hot-path identity invariant.
"""

from __future__ import annotations

from dataclasses import replace

from repro import hotpath
from repro.generator.artifacts import Bundle

#: Stand-in for the experiment-point id inside stored chassis files.
#: Distinctive enough never to occur in generated artifact text.
_POINT_TOKEN = "@@repro-point-id@@"

_L1 = hotpath.MemoCache("generator.bundle", capacity=4096)
_L2 = hotpath.MemoCache("generator.chassis", capacity=1024)


def cached_generate(backend, experiment, topology, workload, write_ratio,
                    host_plan, point_id):
    """A bundle for one point, via the cache hierarchy.

    *backend* is a ready :class:`ShellBackend`; non-shell backends
    bypass this module entirely (their output is plain text, cheap to
    rebuild and not worth a placeholder scheme).
    """
    model_fp = backend.resource_model.fingerprint()
    plan_fp = host_plan.fingerprint()
    l1_key = (model_fp, experiment, topology.label(), workload,
              write_ratio, plan_fp)

    def build_point():
        chassis_key = (model_fp, replace(experiment, seed=0),
                       topology.label(), plan_fp)
        files, param_paths = _L2.get(
            chassis_key,
            lambda: _build_chassis(backend, experiment, topology,
                                   workload, write_ratio, host_plan,
                                   point_id))
        param = backend.point_files(experiment, topology, workload,
                                    write_ratio, host_plan, point_id)
        assembled = {}
        for path, content in files.items():
            if path in param_paths:
                assembled[path] = param[path]
            else:
                assembled[path] = content.replace(_POINT_TOKEN, point_id)
        return assembled

    bundle = Bundle(point_id)
    bundle.files = dict(_L1.get(l1_key, build_point))
    return bundle


def _build_chassis(backend, experiment, topology, workload, write_ratio,
                   host_plan, point_id):
    """Generate the full bundle once and store it in chassis form:
    point-invariant files with the experiment id replaced by a token
    (file order preserved — installation order is part of identity)."""
    generated = backend.generate(experiment, topology, workload,
                                 write_ratio, host_plan, point_id)
    param_paths = frozenset(backend.POINT_FILES)
    files = {}
    for path, content in generated.files.items():
        if path in param_paths:
            files[path] = content         # placeholder; replaced per point
        else:
            files[path] = content.replace(point_id, _POINT_TOKEN)
    return files, param_paths
