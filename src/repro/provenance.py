"""Run cards: every campaign database describes its own production.

The paper's workflow is "modify the specification once and re-derive
everything"; a campaign database should hold the same property — given
nothing but the database, a reader can see exactly what produced it
(command line, environment, resolved parameters, input digests, cache
effectiveness, table digests) and re-run the campaign to the same
bytes.  The *run card* is that record: one canonical-JSON document per
campaign run, persisted into the database's ``run_cards`` table and —
for file-backed databases — exported beside the file as
``<db>.run_card.json`` where shell tools can read it without sqlite.

The card complements ``campaign_meta``: meta stores the *inputs* a
resume needs verbatim (TBL/MOF text, fault plan, retry policy); the
card stores the *observation* of one particular run — what was
actually executed, under which engine and worker count, and digests of
both the inputs and the resulting tables.  Re-derivation is therefore
checkable: rebuild the campaign from meta, re-run with the card's
parameters, and compare :func:`table_digests`.

:func:`preflight` runs the cheap checks that catch a doomed or
silently-misconfigured campaign before any trial runs — most notably a
mistyped ``REPRO_SHELLVM`` value, which the engine selector would
otherwise quietly resolve to the compiled default.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import sys
import time

#: Card layout version, bumped on any incompatible shape change.
RUN_CARD_VERSION = 1

#: Tables whose digests certify the run's observable output — the same
#: five surfaces the engine/cache identity benchmarks byte-compare.
DIGEST_TABLES = ("trials", "host_cpu", "state_metrics", "spans",
                 "failures")


def _sha256(text):
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def table_digests(database):
    """``{table: {"rows": n, "sha256": hex}}`` over the result tables.

    The digest covers the repr of every row in rowid order — exactly
    the surface :meth:`ResultsDatabase.dump_rows` exposes and the
    identity tests compare, so two databases with equal digests are
    byte-identical where it matters.
    """
    digests = {}
    for table in DIGEST_TABLES:
        rows = database.dump_rows(table)
        body = "\n".join(repr(row) for row in rows)
        digests[table] = {"rows": len(rows), "sha256": _sha256(body)}
    return digests


def build_run_card(*, report, state, engine, jobs, fidelity,
                   command=None, environment=None, wall_s=None):
    """Assemble the run-card dict for one finished campaign run.

    *report* is the :class:`CampaignReport`, *state* the
    :class:`CampaignState` that ran.  *command* defaults to this
    process's argv; *environment* to the ``REPRO_*`` variables that
    influence execution.  The result is JSON-ready (sorted keys give
    the canonical form via :func:`canonical_json`).
    """
    if command is None:
        command = list(sys.argv)
    if environment is None:
        environment = {key: value for key, value in os.environ.items()
                       if key.startswith("REPRO_")}
    card = {
        "version": RUN_CARD_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "command": command,
        "engine": engine,
        "runtime": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "environment": environment,
        "parameters": {
            "node_count": state.node_count,
            "jobs": jobs,
            "fidelity": fidelity,
            "experiments": sorted(report.by_experiment),
            "scenarios": sorted({
                experiment.scenario
                for experiment in state.spec.experiments
                if getattr(experiment, "scenario", "")}),
            "fault_plan": state.fault_plan is not None,
            "retry_policy": state.retry_policy is not None,
        },
        "inputs": {
            "tbl_sha256": _sha256(state.tbl_text),
            "mof_sha256": _sha256(state.mof_text),
        },
        "results": {
            "trials": report.trials,
            "completed": report.completed,
            "dnf": report.dnf,
            "skipped": report.skipped,
            "retried": report.retried,
        },
        "cache_stats": report.cache_stats,
        "tables": table_digests(report.database),
    }
    if wall_s is not None:
        card["wall_s"] = round(wall_s, 3)
    return card


def canonical_json(card):
    """The card's canonical serialized form (sorted keys, stable)."""
    return json.dumps(card, sort_keys=True, indent=2)


def export_run_card(card, database_path):
    """Write the card beside a file-backed database.

    ``campaign.sqlite`` gets ``campaign.sqlite.run_card.json``; in-
    memory databases (``:memory:``/None) export nowhere and return
    ``None``.  Returns the path written.
    """
    if database_path in (None, ":memory:"):
        return None
    path = pathlib.Path(str(database_path) + ".run_card.json")
    path.write_text(canonical_json(card) + "\n")
    return path


def verify_run_card(card, database):
    """Mismatch list between a card's table digests and *database*.

    Empty means the database still contains byte-for-byte what the
    card certified — the check ``repro card --verify`` and the
    re-derivation tests run.
    """
    problems = []
    current = table_digests(database)
    for table, recorded in card.get("tables", {}).items():
        actual = current.get(table)
        if actual != recorded:
            problems.append(
                f"{table}: card records {recorded}, database has {actual}"
            )
    return problems


# -- preflight ----------------------------------------------------------

#: ``REPRO_SHELLVM`` values the engine selector understands; anything
#: else silently resolves to the compiled default, which is exactly the
#: misconfiguration preflight exists to surface.
KNOWN_ENGINE_VALUES = ("", "interp", "interpreter", "compiled")


def preflight(state, *, jobs=1, database_path=None):
    """Cheap pre-run checks; returns a list of problem strings.

    Fatal misconfigurations (bad jobs, unwritable database directory)
    and silent ones (a mistyped engine selector) are caught before the
    first trial allocates a cluster.  Spec validation warnings are not
    repeated here — the campaign already reports those.
    """
    problems = []
    if not isinstance(jobs, int) or jobs < 1:
        problems.append(f"jobs must be a positive integer, got {jobs!r}")
    engine = os.environ.get("REPRO_SHELLVM", "").strip().lower()
    if engine not in KNOWN_ENGINE_VALUES:
        problems.append(
            f"REPRO_SHELLVM={engine!r} is not a known engine "
            f"(interp/compiled); the selector would silently fall back "
            f"to the compiled engine"
        )
    needed = max(e.max_machine_count() for e in state.spec.experiments)
    if needed > state.node_count:
        problems.append(
            f"spec needs up to {needed} machines but the cluster has "
            f"only {state.node_count} nodes"
        )
    if database_path not in (None, ":memory:"):
        parent = pathlib.Path(database_path).resolve().parent
        if not parent.is_dir():
            problems.append(
                f"database directory does not exist: {parent}"
            )
        elif not os.access(parent, os.W_OK):
            problems.append(
                f"database directory is not writable: {parent}"
            )
    return problems
