"""Deployment: executes generated bundles, recovers and verifies state."""

from repro.deploy.engine import Deployment, DeploymentEngine
from repro.deploy.state import (
    AppServer,
    DatabaseBackend,
    DbController,
    DeployedSystem,
    MonitorProcess,
    WebServer,
    extract_deployed_system,
)
from repro.deploy.verify import verify_deployment

__all__ = [
    "Deployment",
    "DeploymentEngine",
    "AppServer",
    "DatabaseBackend",
    "DbController",
    "DeployedSystem",
    "MonitorProcess",
    "WebServer",
    "extract_deployed_system",
    "verify_deployment",
]
