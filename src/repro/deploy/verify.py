"""Post-deployment verification.

The Elba project's staging use case (Section VI / [12]) validates that a
deployment matches its specification before the benchmark runs.  The
checks here compare the recovered :class:`DeployedSystem` against the
topology and experiment the scripts were generated from, and raise
:class:`VerificationError` with *every* discrepancy, not just the first.
"""

from __future__ import annotations

from repro.errors import VerificationError
from repro.generator.workload import mix_name


def verify_deployment(system, experiment, topology, workload, write_ratio):
    """Raise unless *system* matches the requested experiment point."""
    problems = []
    deployed = system.topology()
    if deployed != topology:
        problems.append(
            f"topology mismatch: wanted {topology.label()}, "
            f"deployed {deployed.label()}"
        )
    _check_driver(system, experiment, workload, write_ratio, problems)
    _check_web_tier(system, problems)
    _check_db_tier(system, problems)
    _check_monitors(system, experiment, problems)
    if problems:
        raise VerificationError(
            "deployment verification failed:\n  - " + "\n  - ".join(problems)
        )
    return True


def _check_driver(system, experiment, workload, write_ratio, problems):
    driver = system.driver
    if driver.users != workload:
        problems.append(
            f"driver configured for {driver.users} users, wanted {workload}"
        )
    if abs(driver.write_ratio - write_ratio) > 1e-9:
        problems.append(
            f"driver write ratio {driver.write_ratio}, wanted {write_ratio}"
        )
    if driver.benchmark != experiment.benchmark:
        problems.append(
            f"driver benchmark {driver.benchmark!r}, wanted "
            f"{experiment.benchmark!r}"
        )
    expected_mix = mix_name(experiment.benchmark, write_ratio)
    if driver.mix != expected_mix:
        problems.append(
            f"driver mix {driver.mix!r}, wanted {expected_mix!r}"
        )
    if abs(driver.run - experiment.trial.run) > 1e-9:
        problems.append(
            f"driver run period {driver.run}s, wanted "
            f"{experiment.trial.run}s"
        )


def _check_web_tier(system, problems):
    app_hosts = {server.host.name for server in system.app_servers}
    for web in system.web_servers:
        worker_hosts = {worker["host"] for worker in web.workers}
        if worker_hosts != app_hosts:
            problems.append(
                f"web server on {web.host.name} balances over "
                f"{sorted(worker_hosts)}, app tier is {sorted(app_hosts)}"
            )
    if system.web_servers:
        target = system.driver.target_host
        web_hosts = {web.host.name for web in system.web_servers}
        if target not in web_hosts:
            problems.append(
                f"driver targets {target!r} which runs no web server"
            )


def _check_db_tier(system, problems):
    if system.controller is None:
        problems.append("no C-JDBC controller running")
        return
    declared = {spec["host"] for spec in system.controller.backend_specs}
    running = {backend.host.name for backend in system.db_backends}
    if declared != running:
        problems.append(
            f"controller declares backends {sorted(declared)} but "
            f"mysqld runs on {sorted(running)}"
        )


def _check_monitors(system, experiment, problems):
    monitored = set(system.monitored_hosts())
    expected = {host.name for host in system.server_hosts()}
    expected.add(system.client_host.name)
    missing = expected - monitored
    if missing:
        problems.append(f"hosts without system monitors: {sorted(missing)}")
    for monitor in system.monitors:
        if abs(monitor.interval - experiment.monitor.interval) > 1e-9:
            problems.append(
                f"monitor on {monitor.host.name} samples every "
                f"{monitor.interval}s, wanted {experiment.monitor.interval}s"
            )
