"""Deployment engine: executes generated bundles on the virtual cluster.

The engine is deliberately thin — all deployment knowledge lives in the
generated scripts.  It installs a bundle onto the control host, runs
``run.sh`` through the shell interpreter, recovers the deployed system
from cluster state, verifies it, and offers ``collect``/``teardown``
phases (also script-driven) for the experiment runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deploy.state import extract_deployed_system
from repro.deploy.verify import verify_deployment
from repro.deprecation import absorb_positional
from repro.errors import DeployError, ReproError, ShellError
from repro.faults.injector import NULL_INJECTOR
from repro.obs.tracer import as_tracer
from repro.shellvm import ShellInterpreter


@dataclass
class Deployment:
    """A live deployment plus the artifacts and hosts behind it."""

    bundle: object
    allocation: object
    system: object               # DeployedSystem
    transcript: str              # run.sh output

    def results_dir(self):
        return f"/results/{self.bundle.experiment_id}"


class DeploymentEngine:
    """Runs Mulini bundles against one virtual cluster.

    Construct with keywords (``cluster=``, ``tracer=``); the legacy
    positional form still works but is deprecated.  The tracer flows
    into the shell interpreter, so every generated script this engine
    executes shows up as a ``script`` span.
    """

    def __init__(self, *args, cluster=None, tracer=None, faults=None):
        merged = absorb_positional("DeploymentEngine", ("cluster",),
                                   args, {"cluster": cluster})
        cluster = merged["cluster"]
        if cluster is None:
            raise DeployError("DeploymentEngine requires cluster=")
        self.cluster = cluster
        self.tracer = as_tracer(tracer)
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.interpreter = ShellInterpreter(cluster.network,
                                            tracer=self.tracer,
                                            faults=self.faults)

    def deploy(self, bundle, allocation, experiment=None, topology=None,
               workload=None, write_ratio=None):
        """Install and execute *bundle*; returns a :class:`Deployment`.

        When the experiment point is supplied the deployment is verified
        against it before returning (the Elba staging check).
        """
        control = allocation.control
        run_path = bundle.install_to(control)
        # Fault point: an ``archive-corrupt`` armed for this trial
        # damages a package tarball in the control host's repository
        # right before run.sh unpacks it (repaired before any retry).
        self.faults.fire("deploy.install", control=control, bundle=bundle)
        try:
            status, output = self.interpreter.run_script_file(control,
                                                              run_path)
        except ShellError as error:
            # set -e aborts surface as exceptions; a deployment that
            # stopped mid-script is a deployment failure.
            raise DeployError(
                f"run.sh aborted for {bundle.experiment_id}: {error}"
            )
        if status != 0:
            raise DeployError(
                f"run.sh exited with status {status} for "
                f"{bundle.experiment_id}:\n{output}"
            )
        hosts = [allocation.client] + allocation.all_server_hosts()
        system = extract_deployed_system(hosts)
        self.tracer.annotate(transcript_lines=output.count("\n"))
        if experiment is not None:
            self.verify(system, experiment, topology, workload,
                        write_ratio)
        return Deployment(bundle=bundle, allocation=allocation,
                          system=system, transcript=output)

    def verify(self, system, experiment, topology, workload, write_ratio):
        """Verify a recovered system against its experiment point."""
        verify_deployment(system, experiment, topology, workload,
                          write_ratio)

    def collect(self, deployment):
        """Run the generated collect.sh; returns the results directory."""
        self._run_phase(deployment, "collect.sh")
        return deployment.results_dir()

    def teardown(self, deployment):
        """Run the generated teardown.sh, stopping every process."""
        self._run_phase(deployment, "teardown.sh")
        leftovers = []
        for host in deployment.allocation.all_server_hosts():
            leftovers.extend(host.live_processes())
        for process in deployment.allocation.client.live_processes():
            leftovers.append(process)
        if leftovers:
            raise DeployError(
                "teardown left processes running: "
                + ", ".join(f"{p.host}:{p.name}" for p in leftovers)
            )

    def cleanup_failed(self, bundle, allocation):
        """Best-effort cleanup after a failed trial attempt.

        The pool wipes the server hosts on release, but the shared
        client and control hosts keep their state between trials, so a
        failed attempt must not leave half-started processes or a
        half-collected results directory behind for the retry (or the
        next trial) to trip over.  Never raises: cleanup of an
        already-broken attempt must not mask the original failure, and
        running it twice is a no-op.
        """
        for host in (allocation.client, allocation.control):
            if getattr(host, "crashed", False):
                continue
            for process in host.live_processes():
                host.kill(process.pid, strict=False)
        results_dir = f"/results/{bundle.experiment_id}"
        try:
            if allocation.control.fs.exists(results_dir):
                allocation.control.fs.remove(results_dir, recursive=True)
        except ReproError:
            pass

    def _run_phase(self, deployment, script_name):
        control = deployment.allocation.control
        path = deployment.bundle.path_of(script_name)
        if not control.fs.is_file(path):
            raise DeployError(f"bundle lacks {script_name}")
        status, output = self.interpreter.run_script_file(control, path)
        if status != 0:
            raise DeployError(
                f"{script_name} exited with status {status}:\n{output}"
            )
        return output
