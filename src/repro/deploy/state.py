"""Deployed-system state extraction.

After the generated ``run.sh`` has executed, the virtual cluster holds
running daemons and deployed configuration files.  This module rebuilds
the logical n-tier system *from that state alone* — process tables and
the very config files the scripts placed — so the simulation is driven
by what was actually deployed, never by what was merely intended.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeployError
from repro.generator import configfiles, workload
from repro.generator.monitors import METRIC_FLAGS
from repro.spec import catalog
from repro.spec.topology import Topology


@dataclass
class WebServer:
    host: object                 # VirtualHost
    port: int
    max_clients: int
    workers: list                # [{"name", "host", "port"}]


@dataclass
class AppServer:
    host: object
    servlet_port: int
    servlet_threads: int
    server_name: str             # jonas / weblogic / tomcat
    worker_pool: int
    efficiency: float


@dataclass
class DatabaseBackend:
    host: object
    port: int
    max_connections: int


@dataclass
class DbController:
    host: object
    port: int
    database: str
    backend_specs: list          # [{"name", "host", "port"}]


@dataclass
class MonitorProcess:
    host: object
    interval: float
    output_path: str
    metrics: tuple


@dataclass
class DeployedSystem:
    """The logical n-tier application recovered from cluster state."""

    driver: object               # DriverParameters
    client_host: object
    web_servers: list = field(default_factory=list)
    app_servers: list = field(default_factory=list)
    controller: DbController = None
    db_backends: list = field(default_factory=list)
    monitors: list = field(default_factory=list)

    def topology(self):
        return Topology(web=len(self.web_servers),
                        app=len(self.app_servers),
                        db=len(self.db_backends))

    def monitored_hosts(self):
        return [monitor.host.name for monitor in self.monitors]

    def server_hosts(self):
        hosts = []
        for server in self.web_servers:
            hosts.append(server.host)
        for server in self.app_servers:
            hosts.append(server.host)
        for backend in self.db_backends:
            hosts.append(backend.host)
        return hosts


def extract_deployed_system(hosts):
    """Recover the :class:`DeployedSystem` from a list of virtual hosts."""
    driver, client_host = _find_driver(hosts)
    system = DeployedSystem(driver=driver, client_host=client_host)
    for host in hosts:
        _scan_web(system, host)
        _scan_app(system, host)
        _scan_controller(system, host)
        _scan_monitor(system, host)
    _resolve_db_backends(system, hosts)
    if not system.app_servers:
        raise DeployError("no application servers are running")
    if not system.db_backends:
        raise DeployError("no database backends are running")
    system.app_servers.sort(key=lambda s: s.host.name)
    system.web_servers.sort(key=lambda s: s.host.name)
    return system


def _find_driver(hosts):
    for host in hosts:
        for process in host.processes_named("driver.sh"):
            config_path = process.arg_value("--config")
            if config_path is None:
                raise DeployError(
                    f"driver on {host.name} started without --config"
                )
            if not host.fs.is_file(config_path):
                raise DeployError(
                    f"driver config {config_path} missing on {host.name}"
                )
            params = workload.parse_driver_properties(
                host.fs.read(config_path)
            )
            return params, host
    raise DeployError("no workload driver process found on any host")


def _scan_web(system, host):
    for process in host.processes_named("httpd"):
        config_path = process.arg_value("--config")
        if config_path is None or not host.fs.is_file(config_path):
            raise DeployError(f"httpd on {host.name} has no config file")
        conf = configfiles.parse_simple_conf(host.fs.read(config_path))
        workers_file = conf.get("JkWorkersFile")
        if workers_file is None or not host.fs.is_file(workers_file):
            raise DeployError(
                f"httpd on {host.name} lacks a workers2.properties"
            )
        workers = configfiles.parse_workers2(host.fs.read(workers_file))
        system.web_servers.append(WebServer(
            host=host,
            port=int(process.arg_value("--port", conf.get("Listen", "80"))),
            max_clients=int(conf.get("MaxClients", "256")),
            workers=workers,
        ))


def _scan_app(system, host):
    servlet = None
    for process in host.processes_named("catalina.sh"):
        config_path = process.arg_value("--config")
        if config_path is None or not host.fs.is_file(config_path):
            raise DeployError(f"tomcat on {host.name} has no server.xml")
        servlet = configfiles.parse_tomcat_server_xml(
            host.fs.read(config_path)
        )
    ejb = None
    for name in ("jonas", "startWLS.sh"):
        for process in host.processes_named(name):
            config_path = process.arg_value("--config")
            if config_path is None or not host.fs.is_file(config_path):
                raise DeployError(
                    f"app server on {host.name} has no config file"
                )
            values = configfiles.parse_properties(
                host.fs.read(config_path)
            )
            ejb = {
                "name": values.get("server.name", name),
                "pool": int(values.get("server.worker.pool", "256")),
            }
    if servlet is None and ejb is None:
        return
    if ejb is not None:
        server_name = ejb["name"]
        worker_pool = ejb["pool"]
    else:
        server_name = "tomcat"
        worker_pool = servlet["max_threads"]
    package = catalog.get_package(server_name)
    system.app_servers.append(AppServer(
        host=host,
        servlet_port=servlet["port"] if servlet else 0,
        servlet_threads=servlet["max_threads"] if servlet else worker_pool,
        server_name=server_name,
        worker_pool=worker_pool,
        efficiency=package.efficiency,
    ))


def _scan_controller(system, host):
    for process in host.processes_named("controller.sh"):
        config_path = process.arg_value("--config")
        if config_path is None or not host.fs.is_file(config_path):
            raise DeployError(
                f"C-JDBC controller on {host.name} has no config file"
            )
        database, backends = configfiles.parse_raidb_config(
            host.fs.read(config_path)
        )
        if system.controller is not None:
            raise DeployError("multiple C-JDBC controllers are running")
        system.controller = DbController(
            host=host,
            port=int(process.arg_value("--port", "25322")),
            database=database,
            backend_specs=backends,
        )


def _scan_monitor(system, host):
    for process in host.processes_named("sar"):
        output_path = process.arg_value("-o")
        interval = process.arg_value("-i")
        if output_path is None or interval is None:
            raise DeployError(
                f"sar on {host.name} missing -i/-o arguments"
            )
        flags = set(process.argv)
        metrics = tuple(metric for metric, flag in METRIC_FLAGS.items()
                        if flag in flags)
        system.monitors.append(MonitorProcess(
            host=host,
            interval=float(interval),
            output_path=output_path,
            metrics=metrics or ("cpu",),
        ))


def _resolve_db_backends(system, hosts):
    """Match controller backend specs to live mysqld processes."""
    if system.controller is None:
        raise DeployError("no C-JDBC controller is running")
    hosts_by_name = {host.name: host for host in hosts}
    for spec in system.controller.backend_specs:
        host = hosts_by_name.get(spec["host"])
        if host is None:
            raise DeployError(
                f"controller references unknown host {spec['host']!r}"
            )
        mysqlds = host.processes_named("mysqld")
        if not mysqlds:
            raise DeployError(
                f"controller expects mysqld on {spec['host']}, none running"
            )
        process = mysqlds[0]
        config_path = process.arg_value("--defaults-file") or \
            process.arg_value("--config")
        max_connections = 500
        if config_path and host.fs.is_file(config_path):
            conf = configfiles.parse_simple_conf(host.fs.read(config_path))
            max_connections = int(conf.get("max_connections", "500"))
        system.db_backends.append(DatabaseBackend(
            host=host,
            port=spec["port"],
            max_connections=max_connections,
        ))
