"""Deprecation shims for the keyword-only API normalization.

Constructor options across the pipeline layers (``cluster=``,
``resource_model=``, ``jobs=``, ``tracer=``, ...) are keyword-only as
of the ``repro.api`` facade; the legacy positional forms still work but
emit a :class:`DeprecationWarning` through :func:`absorb_positional`.
"""

from __future__ import annotations

import os.path
import sys
import warnings

_PACKAGE_DIR = os.path.dirname(os.path.abspath(__file__))


def _caller_stacklevel():
    """The ``stacklevel`` pointing at the first frame outside repro.

    A fixed level only points at the caller when the deprecated
    constructor is invoked directly; through a wrapper (a subclass
    ``__init__``, a facade helper) it blames repro's own internals.
    Walking the stack to the first out-of-package frame pins the
    warning on the user's code regardless of call depth.
    """
    frame = sys._getframe(1)
    level = 1
    while frame is not None:
        filename = os.path.abspath(frame.f_code.co_filename)
        if not filename.startswith(_PACKAGE_DIR + os.sep):
            return level
        frame = frame.f_back
        level += 1
    return level


def warn_deprecated(owner, what, instead):
    """Emit one DeprecationWarning for a superseded knob or form.

    *owner* names the API surface (``"mva_vs_observation"``), *what*
    the deprecated thing (``"db_node_speed="``), *instead* the
    replacement.  The ``stacklevel`` is computed dynamically so the
    warning lands on the user's call site, never on repro's internals.
    """
    warnings.warn(
        f"{what} on {owner} is deprecated; {instead}",
        DeprecationWarning, stacklevel=_caller_stacklevel(),
    )


def absorb_positional(owner, names, args, current):
    """Map deprecated positional *args* onto the keyword slots *names*.

    *current* is the dict of keyword values the caller actually passed
    (or their defaults); positional values fill the leading slots and
    must not collide with an explicitly passed keyword.  Returns the
    merged dict.  The warning's ``stacklevel`` is computed dynamically
    so it always points at the caller's line, never at repro's own
    frames.
    """
    if not args:
        return current
    if len(args) > len(names):
        raise TypeError(
            f"{owner} takes at most {len(names)} positional "
            f"argument(s) ({', '.join(names)}), got {len(args)}"
        )
    taken = names[:len(args)]
    warnings.warn(
        f"passing {', '.join(taken)} to {owner} positionally is "
        f"deprecated; use keyword arguments "
        f"({', '.join(f'{n}=...' for n in taken)})",
        DeprecationWarning, stacklevel=_caller_stacklevel(),
    )
    merged = dict(current)
    for name, value in zip(names, args):
        merged[name] = value
    return merged
