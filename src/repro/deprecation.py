"""Deprecation shims for the keyword-only API normalization.

Constructor options across the pipeline layers (``cluster=``,
``resource_model=``, ``jobs=``, ``tracer=``, ...) are keyword-only as
of the ``repro.api`` facade; the legacy positional forms still work but
emit a :class:`DeprecationWarning` through :func:`absorb_positional`.
"""

from __future__ import annotations

import warnings


def absorb_positional(owner, names, args, current):
    """Map deprecated positional *args* onto the keyword slots *names*.

    *current* is the dict of keyword values the caller actually passed
    (or their defaults); positional values fill the leading slots and
    must not collide with an explicitly passed keyword.  Returns the
    merged dict.
    """
    if not args:
        return current
    if len(args) > len(names):
        raise TypeError(
            f"{owner} takes at most {len(names)} positional "
            f"argument(s) ({', '.join(names)}), got {len(args)}"
        )
    taken = names[:len(args)]
    warnings.warn(
        f"passing {', '.join(taken)} to {owner} positionally is "
        f"deprecated; use keyword arguments "
        f"({', '.join(f'{n}=...' for n in taken)})",
        DeprecationWarning, stacklevel=3,
    )
    merged = dict(current)
    for name, value in zip(names, args):
        merged[name] = value
    return merged
