"""repro — reproduction of "An Observation-Based Approach to Performance
Characterization of Distributed n-tier Applications" (IISWC 2007).

The package implements the Elba/Mulini pipeline end to end: CIM/MOF +
TBL specifications are parsed, Mulini generates the deployment bundle,
a shell interpreter deploys it onto a virtual cluster, a discrete-event
simulation plays the benchmark against the deployed system, sysstat
monitors record host metrics, and results land in a SQLite database the
characterization/capacity-planning APIs query.

Quickstart (the :mod:`repro.api` facade is the stable surface)::

    from repro import run_experiment

    results = run_experiment('''
        benchmark rubis; platform emulab;
        experiment "baseline" {
            topology 1-1-1;
            workload 50 to 250 step 50;
            write_ratio 15%;
            trial { warmup 6s; run 30s; cooldown 6s; }
        }
    ''')
    print(results[0].response_time_ms())

See README.md for the architecture tour and examples/ for runnable
scenarios.
"""

from repro.api import (
    heal_campaign,
    open_results,
    plan_campaign,
    reproduce_figure,
    resume_campaign,
    run_adaptive,
    run_campaign,
    run_experiment,
    trace_report,
)
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.core import (
    CampaignReport,
    CapacityPlan,
    CapacityPlanner,
    InfeasiblePlan,
    ObservationCampaign,
    PerformanceMap,
    ScaleOutStrategy,
    detect_bottleneck,
)
from repro.errors import ReproError
from repro.experiments import ExperimentRunner, TrialResult, build_experiment
from repro.generator import Bundle, HostPlan, Mulini
from repro.obs import Tracer
from repro.results import ResultsDatabase
from repro.spec import Topology
from repro.vcluster import VirtualCluster

__version__ = "1.2.0"

__all__ = [
    "heal_campaign",
    "open_results",
    "plan_campaign",
    "reproduce_figure",
    "resume_campaign",
    "run_adaptive",
    "run_campaign",
    "run_experiment",
    "trace_report",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "Tracer",
    "CampaignReport",
    "CapacityPlan",
    "CapacityPlanner",
    "InfeasiblePlan",
    "ObservationCampaign",
    "PerformanceMap",
    "ScaleOutStrategy",
    "detect_bottleneck",
    "ReproError",
    "ExperimentRunner",
    "TrialResult",
    "build_experiment",
    "Bundle",
    "HostPlan",
    "Mulini",
    "ResultsDatabase",
    "Topology",
    "VirtualCluster",
    "__version__",
]
