"""Virtual clusters: pools of hosts plus allocation for experiments.

A cluster owns its hosts, a network, and a control host whose package
repository carries the synthetic tarballs (Section III.A's role of the
experiment-management machine).  The allocator hands out hosts per tier,
honouring node-type requests — the Emulab baseline deliberately places
the database on a 600 MHz node (Section IV.A).
"""

from __future__ import annotations

import threading
import time
from collections import Counter

from repro import hotpath
from repro.errors import AllocationError, ClusterError
from repro.faults.injector import NULL_INJECTOR
from repro.spec import catalog
from repro.vcluster.archives import build_archive
from repro.vcluster.host import VirtualHost, consolidate
from repro.vcluster.network import VirtualNetwork

CONTROL_HOST = "control"
CLIENT_HOST = "client"


class Allocation:
    """Hosts assigned to one experiment, by role."""

    def __init__(self, control, client, tier_hosts, physical_hosts=None):
        self.control = control
        self.client = client
        self.tier_hosts = tier_hosts      # tier -> [VirtualHost]
        #: PhysicalHost groupings when the allocation is consolidated;
        #: empty for dedicated allocations.
        self.physical_hosts = list(physical_hosts or [])

    def host_for(self, tier, index):
        """Host running the *index*-th (1-based) server of *tier*."""
        hosts = self.tier_hosts.get(tier, [])
        if not 1 <= index <= len(hosts):
            raise ClusterError(
                f"no host allocated for {tier}{index} "
                f"(tier has {len(hosts)})"
            )
        return hosts[index - 1]

    def all_server_hosts(self):
        hosts = []
        for tier in ("web", "app", "db"):
            hosts.extend(self.tier_hosts.get(tier, []))
        return hosts

    def machine_count(self):
        return len(self.all_server_hosts()) + 2  # + client + control


class VirtualCluster:
    """A named pool of virtual hosts on one hardware platform."""

    def __init__(self, platform, node_count=None, name=None,
                 _control_state=None):
        if isinstance(platform, str):
            platform = catalog.get_platform(platform)
        self.platform = platform
        self.name = name or platform.name
        self.network = VirtualNetwork(
            link_gbps=platform.node_type().network_gbps
        )
        self.hosts = {}
        self._free = []
        self._host_order = {}
        # Allocation is shared state when scheduler workers run trials
        # concurrently on one cluster; the condition serializes the
        # pool bookkeeping and lets `allocate(wait=True)` block until a
        # `release` makes nodes available again.
        self._nodes_available = threading.Condition(threading.RLock())
        # The fault plane: a runner arms its injector here so allocate /
        # release fire the vcluster fault points.  Defaults to the null
        # injector, so fault-free clusters never branch.
        self.faults = NULL_INJECTOR
        self._quarantined = {}        # host name -> reason
        node_count = node_count or platform.total_nodes
        if node_count < 3:
            raise ClusterError("a cluster needs at least 3 nodes")
        self.node_count = node_count
        self.control = self._add_host(CONTROL_HOST, platform.node_type())
        self.client = self._add_host(CLIENT_HOST, platform.node_type())
        for index in range(1, node_count - 1):
            node_type = self._node_type_for_index(index, node_count - 2)
            host = self._add_host(f"node-{index}", node_type)
            self._free.append(host)
        self._pool_capacity = Counter(host.node_type.name
                                      for host in self._free)
        if _control_state is not None:
            # Clone fast path: the parent's pristine control-host tree
            # (package repository included) restored copy-on-write —
            # archive contents are shared immutable strings, so no
            # re-rendering and no duplicated repository per worker.
            self.control.fs.restore(_control_state)
        else:
            self._stock_package_repository()
        # Captured before any trial runs, so clones always start from
        # an intact repository even if this cluster's archives are
        # later corrupted by an armed fault plan.
        self._pristine_control = self.control.fs.snapshot()

    def clone(self):
        """A fresh cluster with this one's platform and pool shape.

        Scheduler workers each own a clone, so virtual-host state never
        crosses workers and every trial starts from pristine hosts —
        exactly what a sequential run sees after `release` wipes them.
        With the hot-path caches on, the clone shares the pristine
        control-host state copy-on-write instead of re-stocking the
        package repository from scratch; host state is never shared.
        """
        state = self._pristine_control if hotpath.enabled() else None
        return VirtualCluster(self.platform, node_count=self.node_count,
                              name=self.name, _control_state=state)

    def _node_type_for_index(self, index, total):
        """Mixed platforms (Emulab) get a blend of node types.

        One quarter of Emulab nodes are the low-end 600 MHz machines the
        paper's baseline uses for the database tier; everything else is
        the platform default.
        """
        types = self.platform.node_types
        if len(types) == 1:
            return self.platform.node_type()
        names = sorted(types)
        if index > total - max(2, total // 4):
            low_end = [n for n in names if "low" in n]
            if low_end:
                return types[low_end[0]]
        return self.platform.node_type()

    def _add_host(self, name, node_type):
        host = VirtualHost(name, node_type)
        self.hosts[name] = host
        self._host_order[name] = len(self._host_order)
        self.network.attach(host)
        return host

    def _stock_package_repository(self):
        self.control.fs.mkdir("/packages")
        for package in catalog.SOFTWARE.values():
            self.control.fs.write(package.archive_path(),
                                  build_archive(package))

    # -- queries ---------------------------------------------------------

    def host(self, name):
        try:
            return self.hosts[name]
        except KeyError:
            raise ClusterError(
                f"unknown host {name!r} in cluster {self.name!r}"
            )

    def free_count(self, node_type_name=None):
        with self._nodes_available:
            if node_type_name is None:
                return len(self._free)
            return sum(1 for h in self._free
                       if h.node_type.name == node_type_name)

    # -- allocation ------------------------------------------------------

    def allocate(self, topology, tier_node_types=None, wait=False,
                 timeout=None, consolidation_ratio=1):
        """Allocate hosts for *topology*; returns an :class:`Allocation`.

        *tier_node_types* optionally maps tier -> node type name.  Raises
        :class:`AllocationError` (leaving the pool untouched) when the
        request cannot be satisfied — the paper notes experiment scale was
        limited by available nodes (Section III.C).

        With ``consolidation_ratio > 1`` the allocated tier instances
        are packed, in allocation order, onto shared physical hosts
        (*ratio* tenants each); every packed host gets a deterministic
        :class:`~repro.vcluster.host.Colocation` stamp carrying the
        CPU-steal/disk-contention interference the simulation applies.

        With ``wait=True`` a request that the cluster could satisfy but
        cannot *right now* (nodes held by concurrent trials) blocks
        until a release frees them, for up to *timeout* seconds; a
        request exceeding the cluster's total capacity still raises
        immediately, since no release could ever satisfy it.
        """
        tier_node_types = tier_node_types or {}
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._nodes_available:
            self.faults.fire("vcluster.allocate", cluster=self,
                             topology=topology)
            while True:
                try:
                    allocation = self._allocate_now(topology,
                                                    tier_node_types)
                    if consolidation_ratio > 1:
                        allocation.physical_hosts = consolidate(
                            allocation.all_server_hosts(),
                            consolidation_ratio,
                        )
                    self.faults.fire(
                        "vcluster.allocated", cluster=self,
                        hosts=allocation.all_server_hosts())
                    return allocation
                except AllocationError:
                    if not wait:
                        raise
                    self._require_satisfiable(topology, tier_node_types)
                    if deadline is None:
                        self._nodes_available.wait()
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or \
                            not self._nodes_available.wait(remaining):
                        raise AllocationError(
                            f"cluster {self.name!r}: timed out after "
                            f"{timeout}s waiting for nodes for topology "
                            f"{topology.label()}"
                        )

    def _allocate_now(self, topology, tier_node_types):
        taken = []
        tier_hosts = {}
        try:
            for tier, count in topology.tiers():
                wanted_type = tier_node_types.get(tier)
                hosts = []
                for _ in range(count):
                    host = self._take(wanted_type)
                    taken.append(host)
                    hosts.append(host)
                tier_hosts[tier] = hosts
        except AllocationError:
            # Requeue the partially-taken nodes and wake waiters: a
            # blocked request for a *different* node type may have been
            # satisfiable all along and must re-check, not sleep until
            # some unrelated release happens to poke it.
            self._free.extend(taken)
            self._nodes_available.notify_all()
            raise
        return Allocation(control=self.control, client=self.client,
                          tier_hosts=tier_hosts)

    def preview_allocation(self, topology, tier_node_types=None):
        """Which hosts an allocation *would* pick, without taking them.

        Simulates :meth:`allocate` against a fresh (fully free) pool and
        returns ``{tier: [(host_name, NodeType), ...]}``.  Because
        `_take` always hands out the lowest-numbered matching node, the
        preview is a pure function of the request — it matches what a
        sequential run's allocator does, which is what lets the analytic
        fidelity tier report the same host names as a DES trial without
        holding any nodes.  Raises :class:`AllocationError` when the
        pool could never satisfy the request.
        """
        tier_node_types = tier_node_types or {}
        with self._nodes_available:
            self._require_satisfiable(topology, tier_node_types)
            default_name = self.platform.node_type().name
            free = sorted(
                (host for host in self.hosts.values()
                 if host.name not in (CONTROL_HOST, CLIENT_HOST)
                 and host.name not in self._quarantined),
                key=lambda host: self._host_order[host.name],
            )
            preview = {}
            for tier, count in topology.tiers():
                wanted = tier_node_types.get(tier) or default_name
                picked = []
                for host in free:
                    if len(picked) == count:
                        break
                    if host.node_type.name == wanted:
                        picked.append(host)
                if len(picked) < count:
                    raise AllocationError(
                        f"cluster {self.name!r} has no free {wanted!r} "
                        f"node for tier {tier!r} in preview"
                    )
                for host in picked:
                    free.remove(host)
                preview[tier] = [(host.name, host.node_type)
                                 for host in picked]
            return preview

    def _require_satisfiable(self, topology, tier_node_types):
        """Raise unless the whole pool (free + held) could fit the
        request — the blocking-wait guard against waiting forever."""
        default_name = self.platform.node_type().name
        needed = Counter()
        for tier, count in topology.tiers():
            needed[tier_node_types.get(tier) or default_name] += count
        for type_name, count in needed.items():
            if count > self._pool_capacity.get(type_name, 0):
                raise AllocationError(
                    f"cluster {self.name!r} has only "
                    f"{self._pool_capacity.get(type_name, 0)} "
                    f"{type_name!r} node(s) in total but topology "
                    f"{topology.label()} needs {count}"
                )

    def _take(self, node_type_name=None):
        if node_type_name is None:
            # Unconstrained requests get the platform's default node
            # type; silently handing out a 600 MHz Emulab node instead
            # of a 3 GHz one would corrupt an experiment, so exhaustion
            # is an error rather than a degradation.
            wanted_name = self.platform.node_type().name
            exhausted = AllocationError(
                f"cluster {self.name!r} has no free {wanted_name!r} "
                f"node ({len(self._free)} other nodes free; request a "
                f"node type explicitly to use them)"
            )
        else:
            wanted_name = node_type_name
            exhausted = AllocationError(
                f"cluster {self.name!r} has no free {wanted_name!r} node"
            )
        # Always hand out the lowest-numbered matching node, so which
        # host runs which tier is a function of the request alone — a
        # fresh worker cluster and a long-lived sequential one agree on
        # host names, keeping parallel and sequential runs equivalent.
        best = None
        for host in self._free:
            if host.node_type.name != wanted_name:
                continue
            if best is None or \
                    self._host_order[host.name] < self._host_order[best.name]:
                best = host
        if best is None:
            raise exhausted
        self._free.remove(best)
        return best

    def release(self, allocation):
        """Return an allocation's hosts to the pool, wiping their state.

        Called from both success and failure paths — a failed trial's
        nodes must come back (and waiters must wake) exactly like a
        completed trial's, or one broken trial starves every blocked
        ``allocate(wait=True)`` in a parallel campaign.  A crashed host
        is replaced by a fresh one (the "reboot"); a quarantined host
        is wiped but kept out of the free pool.
        """
        with self._nodes_available:
            for host in allocation.all_server_hosts():
                fresh = VirtualHost(host.name, host.node_type)
                # Replace in-place so the network keeps a valid registry.
                self.hosts[host.name] = fresh
                self.network._hosts[host.name] = fresh
                if host.name not in self._quarantined:
                    self._free.append(fresh)
            self._nodes_available.notify_all()

    # -- quarantine ------------------------------------------------------

    def quarantine(self, host_name, reason="repeated failures"):
        """Stop allocating onto *host_name*; returns True if newly
        quarantined.

        The host leaves the free pool (now, or on release if a trial
        still holds it) and the pool's capacity accounting shrinks, so
        blocked ``allocate(wait=True)`` callers whose requests became
        unsatisfiable raise instead of waiting forever.
        """
        if host_name not in self.hosts:
            raise ClusterError(
                f"unknown host {host_name!r} in cluster {self.name!r}"
            )
        if host_name in (CONTROL_HOST, CLIENT_HOST):
            raise ClusterError(
                f"cannot quarantine structural host {host_name!r}"
            )
        with self._nodes_available:
            if host_name in self._quarantined:
                return False
            self._quarantined[host_name] = reason
            host = self.hosts[host_name]
            self._free = [h for h in self._free if h.name != host_name]
            self._pool_capacity[host.node_type.name] -= 1
            self._nodes_available.notify_all()
            return True

    def release_quarantine(self, host_name):
        """Return a quarantined host to the pool; True if it was held.

        The probation release: the host comes back as a fresh
        :class:`VirtualHost` (the "reimage"), the pool's capacity
        accounting grows back, and blocked ``allocate(wait=True)``
        callers wake — the exact inverse of :meth:`quarantine`.  The
        caller (the runner's probation countdown, or a remediation
        patch) decides *when* release is safe; the cluster only does
        the bookkeeping.
        """
        with self._nodes_available:
            if host_name not in self._quarantined:
                return False
            del self._quarantined[host_name]
            stale = self.hosts[host_name]
            fresh = VirtualHost(host_name, stale.node_type)
            self.hosts[host_name] = fresh
            self.network._hosts[host_name] = fresh
            self._pool_capacity[fresh.node_type.name] += 1
            self._free.append(fresh)
            self._nodes_available.notify_all()
            return True

    def quarantined(self):
        """``{host name: reason}`` for every quarantined host."""
        with self._nodes_available:
            return dict(self._quarantined)

    def is_quarantined(self, host_name):
        with self._nodes_available:
            return host_name in self._quarantined
