"""Virtual hosts: a filesystem, a process table and hardware identity."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ClusterError
from repro.vcluster.filesystem import VirtualFileSystem

_STANDARD_DIRS = ("/opt", "/var/log", "/tmp", "/etc", "/usr/local/bin")

# -- virtualization interference model -----------------------------------
#
# Consolidating tier instances onto shared physical machines buys
# deterministic interference: each *additional* tenant on a physical
# host steals a fixed fraction of every tenant's CPU (hypervisor
# scheduling overhead + cache pressure) and stretches disk service
# times (shared spindle/queue).  The model is a static function of the
# tenant count — not of instantaneous load — so the DES and analytic
# fidelity tiers apply identical adjustments and campaign results stay
# a pure function of the specification.

#: CPU fraction stolen per additional colocated tenant.
CPU_STEAL_PER_TENANT = 0.12
#: Ceiling on total CPU steal however many tenants share a host.
CPU_STEAL_CAP = 0.45
#: Disk service-time stretch per additional colocated tenant.
DISK_CONTENTION_PER_TENANT = 0.35


def cpu_steal(tenant_count):
    """Fraction of CPU stolen from each tenant by its cotenants."""
    if tenant_count < 1:
        raise ClusterError(f"tenant count must be >= 1: {tenant_count}")
    return min(CPU_STEAL_CAP, CPU_STEAL_PER_TENANT * (tenant_count - 1))


def disk_contention(tenant_count):
    """Multiplier on disk service times under shared storage."""
    if tenant_count < 1:
        raise ClusterError(f"tenant count must be >= 1: {tenant_count}")
    return 1.0 + DISK_CONTENTION_PER_TENANT * (tenant_count - 1)


@dataclass(frozen=True)
class Colocation:
    """One tenant's view of the physical host it shares.

    Stamped onto every consolidated :class:`VirtualHost` by the
    allocator; the simulation reads ``cpu_steal``/``disk_contention``
    when building stations, and the runner surfaces ``physical``/
    ``tenants`` into ``host_cpu`` so the bottleneck report can
    attribute saturation to a colocated tenant.
    """

    physical: str
    tenants: tuple                  # every VM name on this physical host
    cpu_steal: float
    disk_contention: float

    @property
    def tenant_count(self):
        return len(self.tenants)

    def cotenants(self, host_name):
        return tuple(name for name in self.tenants if name != host_name)


def plan_colocation(host_names, consolidation_ratio):
    """``{vm name: Colocation}`` packing *host_names* (allocation order)
    onto physical hosts in chunks of *consolidation_ratio*.

    A pure function of its arguments, so the analytic fidelity tier can
    derive the identical packing from ``preview_allocation`` names that
    the DES allocator stamps onto live hosts.
    """
    if consolidation_ratio < 1:
        raise ClusterError(
            f"consolidation ratio must be >= 1: {consolidation_ratio}"
        )
    plan = {}
    if consolidation_ratio == 1:
        return plan
    names = list(host_names)
    for start in range(0, len(names), consolidation_ratio):
        group = tuple(names[start:start + consolidation_ratio])
        colocation = Colocation(
            physical=f"phys-{start // consolidation_ratio}",
            tenants=group,
            cpu_steal=cpu_steal(len(group)),
            disk_contention=disk_contention(len(group)),
        )
        for name in group:
            plan[name] = colocation
    return plan


class PhysicalHost:
    """A physical machine hosting one or more consolidated tenants.

    Construction stamps the shared :class:`Colocation` record onto every
    tenant, which is how the interference model reaches the simulation:
    stations read ``host.colocation`` when computing speeds.
    """

    def __init__(self, name, tenants, colocation=None):
        if not tenants:
            raise ClusterError(f"physical host {name!r} needs tenants")
        self.name = name
        self.tenants = list(tenants)
        self.colocation = colocation or Colocation(
            physical=name,
            tenants=tuple(tenant.name for tenant in self.tenants),
            cpu_steal=cpu_steal(len(self.tenants)),
            disk_contention=disk_contention(len(self.tenants)),
        )
        for tenant in self.tenants:
            tenant.colocation = self.colocation

    def tenant_names(self):
        return tuple(tenant.name for tenant in self.tenants)

    def __repr__(self):
        return (f"PhysicalHost({self.name}, "
                f"tenants={list(self.tenant_names())})")


def consolidate(hosts, consolidation_ratio):
    """Pack live *hosts* (allocation order) onto physical hosts.

    Returns the :class:`PhysicalHost` list; every grouped host gets its
    ``colocation`` stamped.  Uses the same packing as
    :func:`plan_colocation`, which keeps DES and analytic trials on
    identical interference footing.
    """
    plan = plan_colocation([host.name for host in hosts],
                           consolidation_ratio)
    if not plan:
        return []
    groups = {}
    for host in hosts:
        colocation = plan[host.name]
        groups.setdefault(colocation.physical, ([], colocation))[0] \
            .append(host)
    return [PhysicalHost(name, members, colocation=colocation)
            for name, (members, colocation) in groups.items()]


@dataclass
class Process:
    """One entry in a host's process table."""

    pid: int
    argv: tuple
    host: str
    background: bool
    env: dict = field(default_factory=dict)
    alive: bool = True

    @property
    def command(self):
        return self.argv[0]

    @property
    def name(self):
        return self.argv[0].rsplit("/", 1)[-1]

    def arg_value(self, flag, default=None):
        """Value following *flag* in argv (``--port 80`` style)."""
        argv = list(self.argv)
        for index, arg in enumerate(argv):
            if arg == flag and index + 1 < len(argv):
                return argv[index + 1]
            if arg.startswith(flag + "="):
                return arg.split("=", 1)[1]
        return default

    def describe(self):
        state = "running" if self.alive else "dead"
        return f"[{self.pid}] {' '.join(self.argv)} ({state})"


class VirtualHost:
    """A single machine in the virtual cluster."""

    _pid_counter = itertools.count(1000)

    def __init__(self, name, node_type):
        self.name = name
        self.node_type = node_type
        self.fs = VirtualFileSystem()
        self.processes = {}
        self.installed_packages = {}
        self.crashed = False
        self.crash_reason = None
        self.degradations = set()     # {"disk", "nic"} -- see degrade()
        #: Colocation record when consolidated onto a shared physical
        #: host; None for dedicated hosts (the paper's regime).
        self.colocation = None
        for directory in _STANDARD_DIRS:
            self.fs.mkdir(directory)

    # -- failure state ---------------------------------------------------

    def crash(self, reason="host crashed"):
        """Take the host down hard: every process dies, and new work
        (spawn, ssh) is refused until the pool replaces the host.

        Crashing an already-crashed host is a no-op — the fault plane
        may fire while the host is still dark.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crash_reason = reason
        for process in self.processes.values():
            process.alive = False

    def degrade(self, resource):
        """Mark *resource* (``disk`` or ``nic``) as degraded.

        A degraded disk makes bulk filesystem writes stall (monitor
        flushes fail); a degraded NIC makes network transfers to or
        from this host stall.  Cleared when the pool replaces the host.
        """
        if resource not in ("disk", "nic"):
            raise ClusterError(
                f"{self.name}: unknown degradable resource {resource!r}"
            )
        self.degradations.add(resource)
        if resource == "disk":
            self.fs.stall_bulk_writes(self.name)

    def is_degraded(self, resource):
        return resource in self.degradations

    def check_up(self, action="use"):
        """Raise unless the host is reachable (not crashed)."""
        if self.crashed:
            raise ClusterError(
                f"{self.name}: host is down ({self.crash_reason}); "
                f"cannot {action}"
            )

    # -- processes -------------------------------------------------------

    def spawn(self, argv, background=False, env=None):
        """Start a process; daemons must point at an existing executable."""
        if not argv:
            raise ClusterError(f"{self.name}: cannot spawn empty command")
        self.check_up(action="spawn a process")
        executable = argv[0]
        if executable.startswith("/") and not self.fs.is_file(executable):
            raise ClusterError(
                f"{self.name}: no such executable: {executable}"
            )
        process = Process(
            pid=next(self._pid_counter),
            argv=tuple(argv),
            host=self.name,
            background=background,
            env=dict(env or {}),
        )
        self.processes[process.pid] = process
        return process

    def kill(self, pid, strict=True):
        """Kill process *pid*; killing an already-dead process is a
        no-op (returns it).  With ``strict=False`` an unknown pid also
        no-ops (returns None) — the idempotent form teardown paths use
        after a failed trial, where the process table may already have
        been wiped.
        """
        process = self.processes.get(pid)
        if process is None:
            if strict:
                raise ClusterError(f"{self.name}: no such process {pid}")
            return None
        process.alive = False
        return process

    def kill_by_name(self, name):
        """Kill every live process whose basename matches *name*.

        Idempotent: processes that already exited are skipped, and a
        second kill of the same name returns an empty list rather than
        raising — a double-teardown after a failed trial must no-op.
        """
        killed = []
        for process in self.live_processes():
            if process.name == name:
                process.alive = False
                killed.append(process)
        return killed

    def live_processes(self):
        return [p for p in self.processes.values() if p.alive]

    def processes_named(self, name):
        return [p for p in self.live_processes() if p.name == name]

    def daemon_running(self, executable_path):
        return any(p.command == executable_path for p in self.live_processes())

    # -- packages --------------------------------------------------------

    def record_install(self, package_name, install_root):
        self.installed_packages[package_name] = install_root

    def is_installed(self, package_name):
        return package_name in self.installed_packages

    def __repr__(self):
        return (f"VirtualHost({self.name}, {self.node_type.name}, "
                f"{len(self.live_processes())} procs)")
