"""Synthetic software archives for the virtual package repository.

Physical experiments unpack vendor tarballs; the virtual cluster ships
the same packages as text "tarballs" that the shell interpreter's
``tar`` builtin can unpack.  Each archive is a self-describing text
format::

    #!repro-tarball <package> <version>
    >>> relative/member/path
    ...member content lines...
    >>> next/member

Members carry enough content (daemon stubs, default config files,
version markers) for deployment verification and configuration parsing
to be meaningful.
"""

from __future__ import annotations

from repro import hotpath
from repro.errors import ClusterError

MAGIC = "#!repro-tarball"
MEMBER_MARKER = ">>> "

# Archive text is a pure function of the (frozen, hashable) package, so
# re-rendering it for every cluster construction — every scheduler
# worker clones one — is pure waste; the memo shares one immutable
# string per package across all clusters and workers.
_ARCHIVE_CACHE = hotpath.MemoCache("vcluster.archive", capacity=256)


def build_archive(package):
    """Render the archive text for a :class:`SoftwarePackage`."""
    return _ARCHIVE_CACHE.get(package, lambda: _build_archive(package))


def _build_archive(package):
    members = {
        "VERSION": f"{package.name} {package.version}\n",
        package.daemon: _daemon_stub(package),
    }
    for config in package.config_files:
        members[config] = _default_config(package, config)
    lines = [f"{MAGIC} {package.name} {package.version}"]
    for path in sorted(members):
        lines.append(f"{MEMBER_MARKER}{path}")
        content = members[path]
        if content.endswith("\n"):
            content = content[:-1]
        lines.extend(content.split("\n"))
    return "\n".join(lines) + "\n"


_PARSE_CACHE = hotpath.MemoCache("vcluster.unarchive", capacity=256)


def parse_archive(text):
    """Parse archive text back to ``{member_path: content}``.

    Memoized on the archive text: every host of a tier extracts the
    same package tarball, so a deployment parses each archive once.
    Callers must treat the returned dict as immutable (the ``tar``
    builtin only iterates it).
    """
    return _PARSE_CACHE.get(text, lambda: _parse_archive(text))


def _parse_archive(text):
    lines = text.split("\n")
    if not lines or not lines[0].startswith(MAGIC):
        raise ClusterError("not a repro tarball (bad magic)")
    members = {}
    current = None
    buffer = []
    for line in lines[1:]:
        if line.startswith(MEMBER_MARKER):
            if current is not None:
                members[current] = "\n".join(buffer) + "\n"
            current = line[len(MEMBER_MARKER):].strip()
            if not current:
                raise ClusterError("tarball member with empty path")
            buffer = []
        elif current is not None:
            buffer.append(line)
        elif line.strip():
            raise ClusterError(f"content before first member: {line!r}")
    if current is not None:
        # Drop the trailing empty line the serializer appends.
        if buffer and buffer[-1] == "":
            buffer = buffer[:-1]
        members[current] = "\n".join(buffer) + "\n"
    if not members:
        raise ClusterError("tarball has no members")
    return members


_PLAN_CACHE = hotpath.MemoCache("vcluster.extract", capacity=512)


def extraction_plan(text, dest):
    """Memoized ``((absolute path, content), ...)`` for extracting the
    archive *text* under directory *dest*.

    Every host of a tier extracts the same tarball to the same
    destination on every trial, so the per-member path arithmetic is
    done once and the ``tar`` builtin reduces to a bulk write.
    """
    return _PLAN_CACHE.get((text, dest),
                           lambda: _extraction_plan(text, dest))


def _extraction_plan(text, dest):
    from repro.vcluster.filesystem import normalize
    members = parse_archive(text)
    prefix = dest.rstrip("/") + "/"
    return tuple((normalize(prefix + member), content)
                 for member, content in members.items())


def archive_package_name(text):
    """Read the package name out of an archive header."""
    first_line = text.split("\n", 1)[0]
    if not first_line.startswith(MAGIC):
        raise ClusterError("not a repro tarball (bad magic)")
    parts = first_line.split()
    if len(parts) < 3:
        raise ClusterError("malformed tarball header")
    return parts[1]


def _daemon_stub(package):
    return (
        f"#!/bin/sh\n"
        f"# {package.name} {package.version} daemon stub\n"
        f"# role: {package.role}\n"
        f"exec {package.name}-service \"$@\"\n"
    )


def _default_config(package, config):
    return (
        f"# default {config} shipped with {package.name} "
        f"{package.version}\n"
        f"# replaced by Mulini-generated configuration at deploy time\n"
    )
