"""Virtual cluster substrate: hosts, filesystems, network, allocation."""

from repro.vcluster.archives import (
    archive_package_name,
    build_archive,
    parse_archive,
)
from repro.vcluster.cluster import (
    CLIENT_HOST,
    CONTROL_HOST,
    Allocation,
    VirtualCluster,
)
from repro.vcluster.filesystem import VirtualFileSystem, normalize
from repro.vcluster.host import Process, VirtualHost
from repro.vcluster.network import VirtualNetwork

__all__ = [
    "archive_package_name",
    "build_archive",
    "parse_archive",
    "CLIENT_HOST",
    "CONTROL_HOST",
    "Allocation",
    "VirtualCluster",
    "VirtualFileSystem",
    "normalize",
    "Process",
    "VirtualHost",
    "VirtualNetwork",
]
