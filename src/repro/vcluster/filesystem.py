"""In-memory filesystem for virtual hosts.

Generated deployment scripts manipulate files heavily (install trees,
configuration files, monitor output).  The virtual filesystem gives each
host a POSIX-flavoured namespace with directories, text files, recursive
operations and byte accounting — enough surface for the shell builtins
without pretending to be a block device.
"""

from __future__ import annotations

import posixpath

from repro.errors import ClusterError


def normalize(path, cwd="/"):
    """Resolve *path* against *cwd* into a normalized absolute path."""
    if path.startswith("/") and "//" not in path and "/." not in path \
            and (not path.endswith("/") or path == "/"):
        # Already normal — the common case by far: deployment scripts
        # use absolute paths, and compiled programs pre-normalize.
        return path
    if not path:
        raise ClusterError("empty path")
    if not path.startswith("/"):
        path = posixpath.join(cwd, path)
    normalized = posixpath.normpath(path)
    if not normalized.startswith("/"):
        raise ClusterError(f"path escapes root: {path!r}")
    return normalized


class VirtualFileSystem:
    """A tree of directories and text files with modification counters."""

    #: Bulk-write threshold for a stalled (degraded) disk: small writes
    #: (configs, markers) still land, but anything monitor-flush sized
    #: hangs and errors — the slow-disk fault's observable effect.
    STALL_THRESHOLD_BYTES = 1024

    def __init__(self):
        self._files = {}
        self._dirs = {"/"}
        self._mtime = 0
        self._stalled_owner = None

    def stall_bulk_writes(self, owner="host"):
        """Degrade the backing disk: writes of ``STALL_THRESHOLD_BYTES``
        or more raise :class:`ClusterError` from now on."""
        self._stalled_owner = owner

    # -- snapshots --------------------------------------------------------

    def snapshot(self):
        """An immutable-shared snapshot of the whole tree.

        File contents are immutable ``(text, mtime)`` tuples, so only
        the index structures are copied; restoring into another
        filesystem shares the strings copy-on-write — a later
        :meth:`write` replaces the dict entry without touching the
        snapshot or any sibling restored from it.
        """
        return (dict(self._files), set(self._dirs), self._mtime)

    def restore(self, snap):
        """Replace this filesystem's state with *snap* (mtime counter
        included, so restored trees evolve identically to originals)."""
        files, dirs, mtime = snap
        self._files = dict(files)
        self._dirs = set(dirs)
        self._mtime = mtime

    # -- queries ---------------------------------------------------------

    def exists(self, path):
        path = normalize(path)
        return path in self._files or path in self._dirs

    def is_file(self, path):
        return normalize(path) in self._files

    def is_dir(self, path):
        return normalize(path) in self._dirs

    def read(self, path):
        path = normalize(path)
        try:
            return self._files[path][0]
        except KeyError:
            raise ClusterError(f"no such file: {path}")

    def mtime(self, path):
        path = normalize(path)
        if path in self._files:
            return self._files[path][1]
        raise ClusterError(f"no such file: {path}")

    def size(self, path):
        return len(self.read(path))

    def line_count(self, path):
        content = self.read(path)
        if not content:
            return 0
        return content.count("\n") + (0 if content.endswith("\n") else 1)

    def listdir(self, path):
        path = normalize(path)
        if path not in self._dirs:
            raise ClusterError(f"no such directory: {path}")
        prefix = path.rstrip("/") + "/"
        names = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                remainder = candidate[len(prefix):]
                names.add(remainder.split("/", 1)[0])
        return sorted(names)

    def walk_files(self, path="/"):
        """Yield every file path under *path*, sorted."""
        path = normalize(path)
        prefix = path.rstrip("/") + "/" if path != "/" else "/"
        for candidate in sorted(self._files):
            if candidate == path or candidate.startswith(prefix):
                yield candidate

    def total_bytes(self, path="/"):
        return sum(self.size(f) for f in self.walk_files(path))

    # -- mutations -------------------------------------------------------

    def mkdir(self, path, parents=True):
        path = normalize(path)
        if path in self._files:
            raise ClusterError(f"file exists: {path}")
        if path in self._dirs:
            return
        # posixpath.dirname, inlined: paths are normalized here, so the
        # parent is everything before the last slash (or the root).
        parent = path.rpartition("/")[0] or "/"
        if parent not in self._dirs:
            if not parents:
                raise ClusterError(f"no such directory: {parent}")
            self.mkdir(parent, parents=True)
        self._dirs.add(path)

    def write(self, path, content, append=False):
        path = normalize(path)
        if path in self._dirs:
            raise ClusterError(f"is a directory: {path}")
        if not isinstance(content, str):
            raise ClusterError(
                f"virtual files hold text, got {type(content).__name__}"
            )
        if self._stalled_owner is not None \
                and len(content) >= self.STALL_THRESHOLD_BYTES:
            raise ClusterError(
                f"{self._stalled_owner}: disk degraded; write of "
                f"{len(content)} bytes to {path} stalled"
            )
        parent = path.rpartition("/")[0] or "/"
        if parent not in self._dirs:
            self.mkdir(parent, parents=True)
        self._mtime += 1
        if append and path in self._files:
            content = self._files[path][0] + content
        self._files[path] = (content, self._mtime)

    def write_many(self, items):
        """Write many ``(path, content)`` pairs in order.

        Semantically identical to calling :meth:`write` once per pair
        (same per-file mtime, same parent auto-creation, same stall
        behaviour at the same pair), but with the per-call ceremony
        hoisted out of the loop.  Paths must already be normalized
        absolute paths and contents must be ``str`` — archive
        extraction and bundle installation, the two bulk writers, both
        pre-normalize their plans.
        """
        files = self._files
        dirs = self._dirs
        stalled = self._stalled_owner
        for path, content in items:
            if path in dirs:
                raise ClusterError(f"is a directory: {path}")
            if stalled is not None \
                    and len(content) >= self.STALL_THRESHOLD_BYTES:
                raise ClusterError(
                    f"{stalled}: disk degraded; write of "
                    f"{len(content)} bytes to {path} stalled"
                )
            parent = path.rpartition("/")[0] or "/"
            if parent not in dirs:
                self.mkdir(parent, parents=True)
            self._mtime += 1
            files[path] = (content, self._mtime)

    def remove(self, path, recursive=False):
        path = normalize(path)
        if path in self._files:
            del self._files[path]
            return 1
        if path in self._dirs:
            if not recursive:
                raise ClusterError(f"is a directory: {path}")
            prefix = path.rstrip("/") + "/"
            removed = 0
            for candidate in [f for f in self._files if f.startswith(prefix)]:
                del self._files[candidate]
                removed += 1
            for candidate in [d for d in self._dirs if d == path
                              or d.startswith(prefix)]:
                self._dirs.discard(candidate)
            return removed
        raise ClusterError(f"no such file or directory: {path}")

    def copy(self, src, dst):
        """Copy a file, or a directory tree recursively."""
        src, dst = normalize(src), normalize(dst)
        if self.is_file(src):
            if self.is_dir(dst):
                dst = posixpath.join(dst, posixpath.basename(src))
            self.write(dst, self.read(src))
            return 1
        if self.is_dir(src):
            copied = 0
            prefix = src.rstrip("/") + "/"
            for path in list(self.walk_files(src)):
                relative = path[len(prefix):]
                self.write(posixpath.join(dst, relative), self.read(path))
                copied += 1
            return copied
        raise ClusterError(f"no such file or directory: {src}")
