"""Virtual network: reachability and file transfer between hosts.

The generated scripts use ``ssh``/``scp`` constantly, so the network is
the substrate those builtins run on.  It tracks transfer volume (useful
for sanity checks) and computes per-message latency from link speed for
the simulation layer.
"""

from __future__ import annotations

from repro.errors import ClusterError


class VirtualNetwork:
    """A flat switched network joining every host of one cluster."""

    def __init__(self, link_gbps=1.0, base_latency_s=0.0002):
        self.link_gbps = link_gbps
        self.base_latency_s = base_latency_s
        self._hosts = {}
        self.bytes_transferred = 0
        self.transfer_count = 0

    def attach(self, host):
        if host.name in self._hosts:
            raise ClusterError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host

    def host(self, name):
        try:
            return self._hosts[name]
        except KeyError:
            raise ClusterError(
                f"unknown host {name!r}; known: {sorted(self._hosts)}"
            )

    def hosts(self):
        return list(self._hosts.values())

    def reachable(self, src_name, dst_name):
        return src_name in self._hosts and dst_name in self._hosts

    def transfer(self, src_host, src_path, dst_host, dst_path):
        """Copy a file or tree between hosts (scp semantics)."""
        if not self.reachable(src_host.name, dst_host.name):
            raise ClusterError(
                f"{src_host.name} cannot reach {dst_host.name}"
            )
        for endpoint in (src_host, dst_host):
            if getattr(endpoint, "crashed", False):
                raise ClusterError(
                    f"{endpoint.name}: host is down "
                    f"({endpoint.crash_reason}); transfer failed"
                )
            if endpoint.is_degraded("nic"):
                raise ClusterError(
                    f"{endpoint.name}: NIC degraded; transfer "
                    f"{src_path} -> {dst_path} stalled"
                )
        if src_host.fs.is_file(src_path):
            content = src_host.fs.read(src_path)
            if dst_host.fs.is_dir(dst_path):
                basename = src_path.rstrip("/").rsplit("/", 1)[-1]
                dst_path = dst_path.rstrip("/") + "/" + basename
            dst_host.fs.write(dst_path, content)
            self.bytes_transferred += len(content)
            self.transfer_count += 1
            return 1
        if src_host.fs.is_dir(src_path):
            count = 0
            prefix = src_path.rstrip("/") + "/"
            for path in list(src_host.fs.walk_files(src_path)):
                relative = path[len(prefix):]
                content = src_host.fs.read(path)
                dst_host.fs.write(dst_path.rstrip("/") + "/" + relative,
                                  content)
                self.bytes_transferred += len(content)
                count += 1
            self.transfer_count += count
            return count
        raise ClusterError(
            f"{src_host.name}: no such file or directory: {src_path}"
        )

    def message_latency(self, payload_bytes=2048):
        """One-way latency for a payload of *payload_bytes* on this link.

        Used by the simulator to charge network time per tier hop; on a
        1 Gbps LAN this is dominated by the base switching latency.
        """
        bits = payload_bytes * 8
        return self.base_latency_s + bits / (self.link_gbps * 1e9)
