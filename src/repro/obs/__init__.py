"""Observability plane: tracing spans, counters and trace reports.

See :mod:`repro.obs.tracer` for the span model and
:mod:`repro.obs.report` for the ``repro trace`` rendering.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    TRIAL_PHASES,
    TRIAL_SPAN,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    as_tracer,
    flatten_span,
    worker_name,
)
from repro.obs.report import render_trace_report

__all__ = [
    "NULL_TRACER",
    "TRIAL_PHASES",
    "TRIAL_SPAN",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "as_tracer",
    "flatten_span",
    "worker_name",
    "render_trace_report",
]
