"""Render the trace plane of an observation database.

``repro trace <run-db>`` prints three sections built from the ``spans``
table: a per-trial breakdown of the eight lifecycle phases, a ranking
of the slowest phases across the whole run, and per-worker utilization
(how busy each scheduler worker was over the run's wall-clock window).
"""

from __future__ import annotations

from repro.errors import ResultsError
from repro.obs.tracer import TRIAL_PHASES, TRIAL_SPAN


def _ms(seconds):
    return seconds * 1000.0


def phase_durations(spans):
    """``{phase: seconds}`` for one trial's spans (direct phases only)."""
    durations = {}
    for span in spans:
        if span.name in TRIAL_PHASES:
            durations[span.name] = durations.get(span.name, 0.0) \
                + span.duration_s
    return durations


def trial_label(info):
    label = (f"{info['experiment_name']} {info['topology']} "
             f"u={info['workload']} wr={info['write_ratio']:.0%} "
             f"s{info['seed']}")
    # Scenario identity joins the label only when set, so plain-sweep
    # (and pre-scenario) traces render exactly as before.
    scenario = info.get("scenario")
    if scenario:
        label += f" [{scenario}]"
    return label


def render_phase_breakdown(traced, limit=None):
    """Per-trial table: one row per trial, one column per phase (ms),
    plus the fidelity tier each trial ran at (``des``/``analytic``)."""
    rows = []
    label_width = max([len(trial_label(info)) for info, _ in traced]
                      + [len("trial")])
    header = f"{'trial':<{label_width}} {'tier':<8}"
    for phase in TRIAL_PHASES:
        header += f" {phase[:8]:>9}"
    header += f" {'total':>9}"
    rows.append(header)
    rows.append("-" * len(header))
    shown = traced if limit is None else traced[:limit]
    for info, spans in shown:
        durations = phase_durations(spans)
        total = next((s.duration_s for s in spans
                      if s.name == TRIAL_SPAN), 0.0)
        tier = info.get("fidelity") or "des"
        line = f"{trial_label(info):<{label_width}} {tier:<8}"
        for phase in TRIAL_PHASES:
            line += f" {_ms(durations.get(phase, 0.0)):>9.2f}"
        line += f" {_ms(total):>9.2f}"
        rows.append(line)
    if limit is not None and len(traced) > limit:
        rows.append(f"... and {len(traced) - limit} more trials")
    return "\n".join(rows)


def render_phase_ranking(traced):
    """Phases ranked by mean duration across every traced trial."""
    totals = {phase: 0.0 for phase in TRIAL_PHASES}
    trials = len(traced)
    for _info, spans in traced:
        for phase, duration in phase_durations(spans).items():
            totals[phase] = totals.get(phase, 0.0) + duration
    grand = sum(totals.values()) or 1.0
    ranked = sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
    rows = [f"{'phase':<10} {'mean ms':>10} {'total s':>10} {'share':>7}",
            "-" * 40]
    for phase, total in ranked:
        rows.append(f"{phase:<10} {_ms(total) / max(trials, 1):>10.2f} "
                    f"{total:>10.3f} {total / grand:>6.1%}")
    return "\n".join(rows)


def render_worker_utilization(traced):
    """Per-worker busy time over the run's wall-clock window.

    The worker identity is the ``worker`` attribute the runner stamps
    on every trial span (``pid/thread``); utilization is that worker's
    summed trial time over the whole run's first-start..last-end span
    window, so idle gaps (waiting for tasks or cluster nodes) show up
    as missing utilization.
    """
    by_worker = {}
    window_start = None
    window_end = None
    for _info, spans in traced:
        for span in spans:
            if span.name != TRIAL_SPAN:
                continue
            worker = span.attributes.get("worker", "?")
            busy, trials = by_worker.get(worker, (0.0, 0))
            by_worker[worker] = (busy + span.duration_s, trials + 1)
            end = span.start_s + span.duration_s
            window_start = span.start_s if window_start is None \
                else min(window_start, span.start_s)
            window_end = end if window_end is None \
                else max(window_end, end)
    if not by_worker:
        return "no trial spans recorded"
    wall = max((window_end - window_start), 1e-9)
    rows = [f"{'worker':<24} {'trials':>7} {'busy s':>9} {'util':>7}",
            "-" * 50]
    for worker in sorted(by_worker):
        busy, trials = by_worker[worker]
        rows.append(f"{worker:<24} {trials:>7} {busy:>9.3f} "
                    f"{busy / wall:>6.1%}")
    rows.append(f"wall-clock window: {wall:.3f} s across "
                f"{len(by_worker)} worker(s)")
    return "\n".join(rows)


def render_slowest_scripts(traced, limit=10):
    """The generated scripts that cost the most interpreter time."""
    totals = {}
    for _info, spans in traced:
        for span in spans:
            if span.name != "script":
                continue
            path = span.attributes.get("path", "?")
            name = path.rsplit("/", 1)[-1]
            total, count = totals.get(name, (0.0, 0))
            totals[name] = (total + span.duration_s, count + 1)
    if not totals:
        return None
    ranked = sorted(totals.items(), key=lambda kv: kv[1][0], reverse=True)
    rows = [f"{'script':<34} {'runs':>6} {'total ms':>10} {'mean ms':>9}",
            "-" * 62]
    for name, (total, count) in ranked[:limit]:
        rows.append(f"{name:<34} {count:>6} {_ms(total):>10.2f} "
                    f"{_ms(total) / count:>9.2f}")
    return "\n".join(rows)


def render_injected_faults(traced):
    """Fault and quarantine spans the chaos plane recorded, per trial.

    Returns ``None`` for fault-free runs so the section only appears
    when a :class:`~repro.faults.FaultPlan` actually fired something.
    """
    rows = []
    quarantines = []
    for info, spans in traced:
        label = trial_label(info)
        for span in spans:
            if span.name == "fault":
                attrs = span.attributes
                rows.append((label, attrs.get("kind", "?"),
                             attrs.get("point", "?"),
                             attrs.get("host", "") or "-",
                             attrs.get("attempt", 1)))
            elif span.name == "quarantine":
                attrs = span.attributes
                quarantines.append(
                    f"quarantined {attrs.get('host', '?')}: "
                    f"{attrs.get('reason', 'no reason recorded')}")
    if not rows and not quarantines:
        return None
    out = []
    if rows:
        label_width = max([len(r[0]) for r in rows] + [len("trial")])
        out.append(f"{'trial':<{label_width}} {'fault':<16} "
                   f"{'point':<18} {'host':<10} {'attempt':>7}")
        out.append("-" * (label_width + 55))
        for label, kind, point, host, attempt in rows:
            out.append(f"{label:<{label_width}} {kind:<16} "
                       f"{point:<18} {host:<10} {attempt:>7}")
    out.extend(quarantines)
    return "\n".join(out)


def render_planner_decisions(database, limit=40):
    """The planner plane's decision log, round by round.

    Returns ``None`` when the database holds no planner decisions (the
    run was a fixed-grid campaign), so the section only appears for
    adaptive explorations.  A database written before the planner plane
    existed has no ``planner_decisions`` table at all; that renders as
    an explicit note rather than an error, so ``repro trace`` keeps
    working on old observation files.
    """
    if not database.has_table("planner_decisions"):
        return ("no planner decisions recorded (database predates the "
                "planner plane)")
    decisions = database.planner_decisions()
    if not decisions:
        return None
    policy = decisions[0]["policy"]
    rounds = decisions[-1]["round"]
    out = [f"policy {policy!r}: {len(decisions)} decision(s) across "
           f"{rounds} round(s)",
           f"{'round':>5} {'action':<17} {'tier':<8} {'point':<22} reason",
           "-" * 81]
    for decision in decisions[:limit]:
        if decision["topology"] is None:
            point = "-"
        elif decision["workload"] is None:
            point = decision["topology"]
        else:
            point = f"{decision['topology']} u={decision['workload']}"
        tier = decision.get("fidelity") or "des"
        out.append(f"{decision['round']:>5} {decision['action']:<17} "
                   f"{tier:<8} {point:<22} {decision['reason']}")
    if len(decisions) > limit:
        out.append(f"... and {len(decisions) - limit} more decisions")
    return "\n".join(out)


def render_scenarios(database, limit=20):
    """Scenario-matrix accounting: one row per scenario in the trials
    table, with open-loop backlog and DNF counts.

    Returns ``None`` when every trial is a plain sweep point (the
    section only appears for scenario runs).  A trials table written by
    a pre-scenario tool carries no ``scenario`` column at all; like the
    planner-decision guard, that renders as an explicit note rather
    than an error, so ``repro trace`` keeps working on old files.
    """
    if not database.has_column("trials", "scenario"):
        return ("no scenario identity recorded (database predates the "
                "scenario plane)")
    by_scenario = {}
    for result in database.query():
        if not result.scenario:
            continue
        stats = by_scenario.setdefault(
            result.scenario, {"trials": 0, "dnf": 0, "backlog": 0})
        stats["trials"] += 1
        if not result.completed:
            stats["dnf"] += 1
        stats["backlog"] = max(stats["backlog"],
                               getattr(result.metrics, "backlog", 0))
    if not by_scenario:
        return None
    name_width = max([len(name) for name in by_scenario]
                     + [len("scenario")])
    rows = [f"{'scenario':<{name_width}} {'trials':>7} {'dnf':>5} "
            f"{'max backlog':>12}",
            "-" * (name_width + 27)]
    for name in sorted(by_scenario)[:limit]:
        stats = by_scenario[name]
        rows.append(f"{name:<{name_width}} {stats['trials']:>7} "
                    f"{stats['dnf']:>5} {stats['backlog']:>12}")
    if len(by_scenario) > limit:
        rows.append(f"... and {len(by_scenario) - limit} more scenarios")
    return "\n".join(rows)


def render_interference(database, limit=20):
    """Colocated-tenant saturation: which saturated hosts share a
    physical machine, and with whom.

    Built from the synthetic ``physical``-tier ``host_cpu`` rows the
    runner records for consolidated trials; returns ``None`` when no
    trial recorded any (dedicated runs, or old databases).
    """
    from repro.core.bottleneck import interference_attribution

    rows = []
    for result in database.query():
        for found in interference_attribution(result):
            rows.append((
                f"{result.experiment_name} {result.topology_label} "
                f"u={result.workload}",
                found["host"], found["physical"],
                ",".join(found["cotenants"]), found["cpu"]))
    if not rows:
        return None
    label_width = max([len(r[0]) for r in rows] + [len("trial")])
    out = [f"{'trial':<{label_width}} {'host':<10} {'physical':<10} "
           f"{'cotenants':<20} {'cpu %':>6}",
           "-" * (label_width + 50)]
    for label, host, physical, cotenants, cpu in rows[:limit]:
        out.append(f"{label:<{label_width}} {host:<10} {physical:<10} "
                   f"{cotenants:<20} {cpu:>6.1f}")
    if len(rows) > limit:
        out.append(f"... and {len(rows) - limit} more saturated tenants")
    return "\n".join(out)


def render_cache_stats(database):
    """Hot-path cache effectiveness, from the run's persisted counters.

    Returns ``None`` when the run recorded no cache stats (it predates
    the planner plane or every counter is zero).
    """
    import json

    raw = database.get_meta("hotpath_stats")
    if raw is None:
        return None
    stats = json.loads(raw)
    if not any(c.get("hits", 0) or c.get("misses", 0)
               for c in stats.values()):
        return None
    rows = [f"{'cache':<28} {'entries':>8} {'hits':>8} {'misses':>8} "
            f"{'hit rate':>9}",
            "-" * 64]
    total_hits = total_misses = 0
    for name in sorted(stats):
        cache = stats[name]
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        total_hits += hits
        total_misses += misses
        lookups = hits + misses
        rate = f"{hits / lookups:.1%}" if lookups else "-"
        rows.append(f"{name:<28} {cache.get('entries', 0):>8} "
                    f"{hits:>8} {misses:>8} {rate:>9}")
    lookups = total_hits + total_misses
    rows.append(f"{'total':<28} {'':>8} {total_hits:>8} "
                f"{total_misses:>8} "
                f"{(total_hits / lookups if lookups else 0):>9.1%}")
    return "\n".join(rows)


def render_trace_report(database, experiment_name=None, limit=20):
    """The full ``repro trace`` report for one observation database."""
    traced = database.traced_trials(experiment_name=experiment_name)
    if not traced:
        raise ResultsError(
            "no spans recorded in this database; rerun with --trace "
            "(repro run --trace / repro figure --trace)"
        )
    span_total = sum(len(spans) for _info, spans in traced)
    sections = [
        f"Trace report: {len(traced)} traced trial(s), "
        f"{span_total} spans",
        "",
        "Per-trial phase breakdown (ms)",
        render_phase_breakdown(traced, limit=limit),
        "",
        "Slowest phases",
        render_phase_ranking(traced),
        "",
        "Worker utilization",
        render_worker_utilization(traced),
    ]
    scripts = render_slowest_scripts(traced)
    if scripts is not None:
        sections.extend(["", "Slowest generated scripts", scripts])
    faults = render_injected_faults(traced)
    if faults is not None:
        sections.extend(["", "Injected faults", faults])
    decisions = render_planner_decisions(database)
    if decisions is not None:
        sections.extend(["", "Planner decisions", decisions])
    scenarios = render_scenarios(database)
    if scenarios is not None:
        sections.extend(["", "Scenarios", scenarios])
    interference = render_interference(database)
    if interference is not None:
        sections.extend(["", "Colocation interference", interference])
    caches = render_cache_stats(database)
    if caches is not None:
        sections.extend(["", "Hot-path caches", caches])
    return "\n".join(sections)
