"""Lifecycle tracing: nested, timestamped spans plus worker counters.

The paper's thesis is *observation*, yet the reproduction's own
apparatus was a black box: one ``run_point`` trial walks eight phases
(allocate -> generate -> deploy -> verify -> simulate -> collect ->
analyze -> teardown) whose costs, retries and failure points were
invisible — which matters now that campaigns run trials in parallel.
This module is the observation plane for the observation testbed
itself (DiPerF's "the testing framework needs its own telemetry", and
Sage's "the observation infrastructure must itself be queryable").

A :class:`Tracer` produces nested :class:`Span` trees through a context
manager::

    tracer = Tracer()
    with tracer.span("trial", experiment="rubis-baseline") as trial:
        with tracer.span("allocate"):
            ...
    records = tracer.export(trial)      # flat SpanRecords, DFS order

Nesting is tracked per thread, so scheduler workers sharing one tracer
never interleave their span stacks; spans are exported per trial and
travel on the :class:`TrialResult`, so they survive the process-pool
backend (a forked worker's tracer state never has to cross back — the
pickled result carries the spans).

The default tracer everywhere is :data:`NULL_TRACER`, a no-op whose
spans cost two attribute lookups, so instrumented code never branches
on "is tracing on".
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
from dataclasses import dataclass, field
from typing import NamedTuple

#: Printable ASCII minus ``"`` and ``\`` — strings that JSON-encode as
#: themselves, needing no escape pass.
_PLAIN_JSON_STR = re.compile(r'^[ !#-\[\]-~]*$')

#: The eight lifecycle phases of one trial, in execution order.
TRIAL_PHASES = ("allocate", "generate", "deploy", "verify", "simulate",
                "collect", "analyze", "teardown")

#: Root span name for one trial.
TRIAL_SPAN = "trial"

OK = "ok"
ERROR = "error"


@dataclass(slots=True)
class Span:
    """One timed operation, possibly with children."""

    name: str
    start: float
    attributes: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    end: float = None
    status: str = OK

    @property
    def duration(self):
        return (self.end if self.end is not None else self.start) \
            - self.start

    def annotate(self, **attributes):
        self.attributes.update(attributes)


class SpanRecord(NamedTuple):
    """A flattened span, ready for the results database.

    ``span_id``/``parent_id`` number the trial's span tree in DFS
    preorder (the root is 1, its parent 0); ``start_s`` is an absolute
    monotonic-clock reading so spans from concurrent workers share one
    timeline.  A named tuple because every script execution of every
    trial flattens into one — frozen-dataclass construction was
    measurable across a campaign.
    """

    span_id: int
    parent_id: int
    name: str
    start_s: float
    duration_s: float
    status: str
    attributes: dict

    def attributes_json(self):
        """The attribute dict as canonical sorted-key JSON.

        Hand-assembled for the flat str/int/float/bool dicts every span
        carries (``json.dumps`` per span was a measurable slice of
        storing a campaign); anything fancier — nested values, strings
        needing escapes — falls back to the real encoder, whose output
        the fast path matches byte for byte.
        """
        parts = []
        for key in sorted(self.attributes):
            value = self.attributes[key]
            kind = type(value)
            if kind is str:
                if not _PLAIN_JSON_STR.match(value) \
                        or not _PLAIN_JSON_STR.match(key):
                    break
                parts.append(f'"{key}": "{value}"')
            elif kind is bool:
                parts.append(f'"{key}": {"true" if value else "false"}')
            elif kind is int or kind is float:
                if not _PLAIN_JSON_STR.match(key) \
                        or (kind is float and not math.isfinite(value)):
                    break
                parts.append(f'"{key}": {value!r}')
            else:
                break
        else:
            return "{" + ", ".join(parts) + "}"
        return json.dumps(self.attributes, sort_keys=True, default=str)


def flatten_span(root):
    """DFS-preorder :class:`SpanRecord` list for one span tree."""
    records = []

    def visit(span, parent_id):
        span_id = len(records) + 1
        # The record adopts the span's attribute dict rather than
        # copying it: flattening marks the end of the span's life, and
        # a campaign flattens one record per script execution.
        records.append(SpanRecord(
            span_id=span_id, parent_id=parent_id, name=span.name,
            start_s=span.start, duration_s=span.duration,
            status=span.status, attributes=span.attributes,
        ))
        for child in span.children:
            visit(child, span_id)

    visit(root, 0)
    return records


def merge_span_exports(exports):
    """Merge several flattened span trees into one record list.

    Retries give one trial several span trees (one per attempt); each
    tree numbers its spans 1..n from its own root, so concatenation
    re-bases every tree's ids past the previous ones.  Roots keep
    parent 0 — consumers see a forest, one root per attempt.  A single
    export passes through unchanged (ids and all), so the no-retry
    path stays byte-identical to pre-fault-plane traces.
    """
    exports = [list(records) for records in exports if records]
    if not exports:
        return []
    if len(exports) == 1:
        return exports[0]
    merged = []
    offset = 0
    for records in exports:
        for record in records:
            merged.append(SpanRecord(
                span_id=record.span_id + offset,
                parent_id=record.parent_id + offset
                if record.parent_id else 0,
                name=record.name, start_s=record.start_s,
                duration_s=record.duration_s, status=record.status,
                attributes=record.attributes,
            ))
        offset = len(merged)
    return merged


def worker_name():
    """This worker's identity for span attribution: ``pid/thread``."""
    return f"{os.getpid()}/{threading.current_thread().name}"


class _SpanContext:
    """Context manager that opens/closes one span on a tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, _exc, _tb):
        span = self._span
        span.end = self._tracer._clock()
        if exc_type is not None:
            span.status = ERROR
            span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(span)
        return False


class Tracer:
    """Produces nested spans and thread-safe counters.

    One tracer instance is threaded through every layer of a run
    (runner, scheduler, deployment engine, shell interpreter,
    simulation, collector); sharing is safe because span nesting is
    per-thread and counters are lock-protected.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self.counters = {}

    # -- spans ------------------------------------------------------------

    def span(self, name, **attributes):
        """Open a span named *name*; use as a context manager."""
        return _SpanContext(self, Span(name=name, start=self._clock(),
                                       attributes=attributes))

    def current(self):
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    def annotate(self, **attributes):
        """Attach attributes to the innermost open span (if any)."""
        span = self.current()
        if span is not None:
            span.annotate(**attributes)

    def export(self, root):
        """Flatten a finished span tree into :class:`SpanRecord`\\ s."""
        return flatten_span(root)

    # -- counters ---------------------------------------------------------

    def count(self, name, n=1):
        """Increment counter *name* by *n* (negative to decrement)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n
            return self.counters[name]

    def counter(self, name):
        with self._lock:
            return self.counters.get(name, 0)

    # -- internals --------------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span):
        self._stack().append(span)

    def _pop(self, span):
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
            if stack:
                stack[-1].children.append(span)


class _NullSpanContext:
    """Shared no-op span context: the zero-overhead tracing-off path."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *_exc):
        return False


class _NullSpan:
    __slots__ = ()

    name = ""
    status = OK
    duration = 0.0

    def annotate(self, **_attributes):
        return None


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """A tracer that records nothing; every call is a cheap no-op."""

    enabled = False
    counters = {}

    def span(self, _name, **_attributes):
        return _NULL_CONTEXT

    def current(self):
        return None

    def annotate(self, **_attributes):
        return None

    def export(self, _root):
        return []

    def count(self, _name, n=1):
        return 0

    def counter(self, _name):
        return 0


NULL_TRACER = NullTracer()


def as_tracer(tracer):
    """Normalize a ``tracer=`` argument: None means the null tracer."""
    return NULL_TRACER if tracer is None else tracer
