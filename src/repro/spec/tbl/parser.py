"""Recursive-descent parser for the Testbed Language.

Grammar sketch::

    document   := header* experiment+
    header     := ("benchmark" | "platform" | "app_server") IDENT ";"
    experiment := "experiment" STRING "{" setting* "}"
    setting    := "topology" topo_spec ";"
                | "workload" num_spec ";"
                | "write_ratio" num_spec ";"
                | ("think_time" | "timeout") duration ";"
                | "seed" NUMBER ";"
                | "app_server" IDENT ";"
                | "db_node_type" IDENT ";"
                | "trial" "{" phase* "}"
                | "slo" "{" objective* "}"
                | "monitor" "{" monitor_item* "}"
    topo_spec  := TOPO ("," TOPO)* | TOPO "to" TOPO
    num_spec   := value ("to" value ("step" value)?)? | value ("," value)*

``TOPO to TOPO`` expands as a grid over every tier whose count differs,
so ``topology 1-2-1 to 1-8-3;`` produces the paper's 21-configuration
scale-out family (Section V.B).
"""

from __future__ import annotations

from repro.errors import TblError, WorkloadError
from repro.spec.lexing import TokenStream
from repro.workloads.arrivals import ArrivalSpec
from repro.spec.tbl.ast import (
    ExperimentDef,
    MonitorSpec,
    ServiceLevelObjective,
    TestbedSpec,
    TrialPhases,
    expand_range,
)
from repro.spec.tbl.lexer import tokenize
from repro.spec.topology import Topology

_HEADER_KEYWORDS = ("benchmark", "platform", "app_server")


def parse(text, source="<tbl>"):
    """Parse TBL *text* into a :class:`TestbedSpec`."""
    tokens = TokenStream(tokenize(text, source=source), source=source,
                         error_class=TblError)
    headers = {"benchmark": None, "platform": None, "app_server": None}
    while tokens.peek() is not None and tokens.peek().kind == "keyword" \
            and tokens.peek().value in _HEADER_KEYWORDS:
        keyword = tokens.next().value
        value = _expect_name(tokens)
        if headers[keyword] is not None:
            tokens.error(f"duplicate {keyword!r} header")
        headers[keyword] = value.lower()
        tokens.expect("punct", ";")
    if headers["benchmark"] is None:
        tokens.error("TBL document must declare a benchmark")
    if headers["platform"] is None:
        tokens.error("TBL document must declare a platform")
    experiments = []
    while not tokens.at_end():
        experiments.append(_parse_experiment(tokens, headers))
    if not experiments:
        tokens.error("TBL document declares no experiments")
    return TestbedSpec(
        benchmark=headers["benchmark"],
        platform=headers["platform"],
        app_server=headers["app_server"],
        experiments=tuple(experiments),
        source=source,
    )


def _expect_name(tokens):
    token = tokens.peek()
    if token is not None and token.kind in ("ident", "string"):
        return tokens.next().value
    tokens.error("expected a name")


def _parse_experiment(tokens, headers):
    tokens.expect("keyword", "experiment")
    name = tokens.expect("string").value
    tokens.expect("punct", "{")
    settings = {
        "topologies": None,
        "workloads": None,
        "write_ratios": (0.15,),
        "think_time": 7.0,
        "timeout": 8.0,
        "seed": 42,
        "repetitions": 1,
        "app_server": headers["app_server"],
        "db_node_type": None,
        "trial": None,
        "slo": ServiceLevelObjective(),
        "monitor": MonitorSpec(),
        "consolidation_ratio": 1,
        "arrival": None,
        "scenario": "",
    }
    while not tokens.check("punct", "}"):
        _parse_setting(tokens, settings)
    tokens.expect("punct", "}")
    if settings["topologies"] is None:
        tokens.error(f"experiment {name!r} is missing a topology setting")
    if settings["workloads"] is None:
        tokens.error(f"experiment {name!r} is missing a workload setting")
    trial = settings["trial"] or TrialPhases.default_for(headers["benchmark"])
    return ExperimentDef(
        name=name,
        benchmark=headers["benchmark"],
        platform=headers["platform"],
        topologies=settings["topologies"],
        workloads=settings["workloads"],
        write_ratios=settings["write_ratios"],
        trial=trial,
        slo=settings["slo"],
        monitor=settings["monitor"],
        app_server=settings["app_server"],
        think_time=settings["think_time"],
        timeout=settings["timeout"],
        seed=settings["seed"],
        repetitions=settings["repetitions"],
        db_node_type=settings["db_node_type"],
        consolidation_ratio=settings["consolidation_ratio"],
        arrival=settings["arrival"],
        scenario=settings["scenario"],
    )


def _parse_setting(tokens, settings):
    token = tokens.peek()
    if token is None:
        tokens.error("unterminated experiment block")
    if token.kind != "keyword":
        tokens.error(f"expected a setting keyword, got {token.value!r}")
    keyword = tokens.next().value
    if keyword == "topology":
        settings["topologies"] = _parse_topologies(tokens)
        tokens.expect("punct", ";")
    elif keyword == "workload":
        values = _parse_numeric_spec(tokens)
        for value in values:
            if not isinstance(value, int):
                tokens.error(f"workloads must be integers, got {value!r}")
        settings["workloads"] = values
        tokens.expect("punct", ";")
    elif keyword == "write_ratio":
        settings["write_ratios"] = tuple(
            float(v) for v in _parse_numeric_spec(tokens)
        )
        tokens.expect("punct", ";")
    elif keyword in ("think_time", "timeout"):
        settings[keyword] = _parse_duration(tokens)
        tokens.expect("punct", ";")
    elif keyword in ("seed", "repetitions"):
        value = tokens.expect("number").value
        if not isinstance(value, int):
            tokens.error(f"{keyword} must be an integer, got {value!r}")
        settings[keyword] = value
        tokens.expect("punct", ";")
    elif keyword == "app_server":
        settings["app_server"] = _expect_name(tokens).lower()
        tokens.expect("punct", ";")
    elif keyword == "db_node_type":
        settings["db_node_type"] = _expect_name(tokens).lower()
        tokens.expect("punct", ";")
    elif keyword == "scenario":
        settings["scenario"] = tokens.expect("string").value
        tokens.expect("punct", ";")
    elif keyword == "consolidation":
        value = tokens.expect("number").value
        if not isinstance(value, int) or value < 1:
            tokens.error(
                f"consolidation must be a positive integer, got {value!r}"
            )
        settings["consolidation_ratio"] = value
        tokens.expect("punct", ";")
    elif keyword == "arrival":
        settings["arrival"] = _parse_arrival(tokens)
    elif keyword == "trial":
        settings["trial"] = _parse_trial(tokens)
    elif keyword == "slo":
        settings["slo"] = _parse_slo(tokens)
    elif keyword == "monitor":
        settings["monitor"] = _parse_monitor(tokens)
    else:
        tokens.error(f"setting {keyword!r} not allowed here")


def _parse_topologies(tokens):
    first = Topology.parse(tokens.expect("topo").value)
    if tokens.accept("keyword", "to"):
        last = Topology.parse(tokens.expect("topo").value)
        return _expand_topology_grid(tokens, first, last)
    topologies = [first]
    while tokens.accept("punct", ","):
        topologies.append(Topology.parse(tokens.expect("topo").value))
    return tuple(topologies)


def _expand_topology_grid(tokens, first, last):
    if not last.dominates(first):
        tokens.error(
            f"topology range end {last.label()} must dominate start "
            f"{first.label()}"
        )
    grid = []
    for web in range(first.web, last.web + 1):
        for app in range(first.app, last.app + 1):
            for db in range(first.db, last.db + 1):
                grid.append(Topology(web=web, app=app, db=db))
    return tuple(grid)


def _parse_numeric_spec(tokens):
    first = _parse_scalar(tokens)
    if tokens.accept("keyword", "to"):
        stop = _parse_scalar(tokens)
        step = None
        if tokens.accept("keyword", "step"):
            step = _parse_scalar(tokens)
        return expand_range(first, stop, step)
    values = [first]
    while tokens.accept("punct", ","):
        values.append(_parse_scalar(tokens))
    return tuple(values)


def _parse_scalar(tokens):
    token = tokens.peek()
    if token is not None and token.kind in ("number", "duration"):
        return tokens.next().value
    tokens.error("expected a numeric value")


def _parse_duration(tokens):
    token = tokens.peek()
    if token is not None and token.kind == "duration":
        return tokens.next().value
    if token is not None and token.kind == "number":
        return float(tokens.next().value)
    tokens.error("expected a duration (e.g. 300s, 1500ms)")


def _parse_arrival(tokens):
    """``arrival KIND;`` or ``arrival KIND { param value; ... }``."""
    kind = _expect_name(tokens).lower()
    params = {"kind": kind}
    if tokens.accept("punct", "{"):
        while not tokens.check("punct", "}"):
            token = tokens.next()
            if token.kind != "keyword":
                tokens.error(
                    f"expected an arrival setting, got {token.value!r}",
                    token,
                )
            key = token.value
            if key in ("rate", "amplitude", "burst", "duty", "at"):
                params[key] = float(_parse_scalar(tokens))
            elif key == "period":
                params["period"] = _parse_duration(tokens)
            elif key == "session":
                value = tokens.expect("number").value
                if not isinstance(value, int):
                    tokens.error(
                        f"session length must be an integer, got {value!r}"
                    )
                params["session_length"] = value
            else:
                tokens.error(f"unknown arrival setting {key!r}", token)
            tokens.expect("punct", ";")
        tokens.expect("punct", "}")
    else:
        tokens.expect("punct", ";")
    try:
        return ArrivalSpec(**params)
    except WorkloadError as error:
        tokens.error(str(error))


def _parse_trial(tokens):
    tokens.expect("punct", "{")
    phases = {"warmup": 0.0, "run": None, "cooldown": 0.0}
    while not tokens.check("punct", "}"):
        token = tokens.next()
        if token.kind != "keyword" or token.value not in phases:
            tokens.error(f"unknown trial phase {token.value!r}", token)
        phases[token.value] = _parse_duration(tokens)
        tokens.expect("punct", ";")
    tokens.expect("punct", "}")
    if phases["run"] is None:
        tokens.error("trial block must set a run period")
    return TrialPhases(**phases)


def _parse_slo(tokens):
    tokens.expect("punct", "{")
    values = {}
    while not tokens.check("punct", "}"):
        token = tokens.next()
        if token.kind == "keyword" and token.value == "response_time":
            values["response_time"] = _parse_duration(tokens)
        elif token.kind == "keyword" and token.value == "error_ratio":
            values["error_ratio"] = float(_parse_scalar(tokens))
        else:
            tokens.error(f"unknown SLO {token.value!r}", token)
        tokens.expect("punct", ";")
    tokens.expect("punct", "}")
    return ServiceLevelObjective(**values)


def _parse_monitor(tokens):
    tokens.expect("punct", "{")
    values = {}
    while not tokens.check("punct", "}"):
        token = tokens.next()
        if token.kind == "keyword" and token.value == "interval":
            values["interval"] = _parse_duration(tokens)
        elif token.kind == "keyword" and token.value == "metrics":
            metrics = [_expect_name(tokens).lower()]
            while tokens.accept("punct", ","):
                metrics.append(_expect_name(tokens).lower())
            values["metrics"] = tuple(metrics)
        else:
            tokens.error(f"unknown monitor setting {token.value!r}", token)
        tokens.expect("punct", ";")
    tokens.expect("punct", "}")
    return MonitorSpec(**values)
