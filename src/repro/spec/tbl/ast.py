"""AST for the Testbed Language (TBL).

TBL is Mulini's experiment-specification input (Section II): which
benchmark to drive, the topology/workload/write-ratio sweep, trial
timing, SLOs and monitoring.  The parser produces a :class:`TestbedSpec`;
everything downstream (generation, deployment, simulation, results)
hangs off the :class:`ExperimentDef` records inside it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TblError
from repro.workloads.arrivals import ArrivalSpec

#: Trial timing defaults per benchmark, from Section III.B.
DEFAULT_TRIAL_PHASES = {
    "rubis": (60.0, 300.0, 60.0),
    "rubbos": (150.0, 900.0, 150.0),
}

DEFAULT_MONITOR_METRICS = ("cpu", "memory", "disk", "network")


@dataclass(frozen=True)
class TrialPhases:
    """Warm-up / run / cool-down durations in seconds (Section III.B)."""

    warmup: float
    run: float
    cooldown: float

    def __post_init__(self):
        if self.run <= 0:
            raise TblError("trial run period must be positive")
        if self.warmup < 0 or self.cooldown < 0:
            raise TblError("trial warm-up/cool-down must be non-negative")

    def total(self):
        return self.warmup + self.run + self.cooldown

    @classmethod
    def default_for(cls, benchmark):
        warmup, run, cooldown = DEFAULT_TRIAL_PHASES.get(
            benchmark, DEFAULT_TRIAL_PHASES["rubis"]
        )
        return cls(warmup=warmup, run=run, cooldown=cooldown)

    def scaled(self, factor):
        """Uniformly scale all phases (used by fast benchmark harnesses)."""
        if factor <= 0:
            raise TblError("trial scale factor must be positive")
        return TrialPhases(self.warmup * factor, self.run * factor,
                           self.cooldown * factor)


@dataclass(frozen=True)
class ServiceLevelObjective:
    """SLOs an experiment is judged against (Section II).

    *response_time* is the mean-response-time objective in seconds;
    *error_ratio* is the largest tolerated fraction of failed requests
    before a trial is declared DNF (Table 7's missing squares).
    """

    response_time: float = 2.0
    error_ratio: float = 0.10

    def __post_init__(self):
        if self.response_time <= 0:
            raise TblError("SLO response time must be positive")
        if not 0 <= self.error_ratio <= 1:
            raise TblError("SLO error ratio must be within [0, 1]")

    def satisfied_by(self, mean_response_time):
        return mean_response_time <= self.response_time


@dataclass(frozen=True)
class MonitorSpec:
    """System-level monitoring configuration (sysstat-style, Section II)."""

    interval: float = 1.0
    metrics: tuple = DEFAULT_MONITOR_METRICS

    def __post_init__(self):
        if self.interval <= 0:
            raise TblError("monitor interval must be positive")
        known = set(DEFAULT_MONITOR_METRICS)
        for metric in self.metrics:
            if metric not in known:
                raise TblError(
                    f"unknown monitor metric {metric!r}; known: {sorted(known)}"
                )
        if not self.metrics:
            raise TblError("monitor must sample at least one metric")


@dataclass(frozen=True)
class ExperimentDef:
    """One experiment family: a topology/workload/write-ratio sweep."""

    name: str
    benchmark: str
    platform: str
    topologies: tuple
    workloads: tuple
    write_ratios: tuple
    trial: TrialPhases
    slo: ServiceLevelObjective = ServiceLevelObjective()
    monitor: MonitorSpec = MonitorSpec()
    app_server: str = None
    think_time: float = 7.0
    #: Client abandons a request after this long (RUBiS HttpClient-style);
    #: abandonments count as errors and drive Table 7's DNF holes.
    timeout: float = 8.0
    seed: int = 42
    #: Independent repetitions per sweep point (seeds seed..seed+n-1);
    #: repetition is how the paper's noisy-at-saturation cells get error
    #: bars.
    repetitions: int = 1
    db_node_type: str = None
    #: Tier instances packed per physical host (1 = dedicated, the
    #: paper's regime); >1 consolidates and buys deterministic CPU-steal
    #: and disk-contention interference (see repro.vcluster.host).
    consolidation_ratio: int = 1
    #: Open-loop arrival pattern; ``None`` keeps the closed-loop
    #: think-time population.
    arrival: ArrivalSpec = None
    #: Scenario identity this experiment was compiled from ("" for
    #: plain sweeps); part of the trial key alongside fidelity.
    scenario: str = ""

    def __post_init__(self):
        if not self.topologies:
            raise TblError(f"experiment {self.name!r} declares no topology")
        if not self.workloads:
            raise TblError(f"experiment {self.name!r} declares no workload")
        if not self.write_ratios:
            raise TblError(f"experiment {self.name!r} declares no write ratio")
        for ratio in self.write_ratios:
            if not 0 <= ratio <= 1:
                raise TblError(
                    f"write ratio {ratio!r} outside [0, 1] in {self.name!r}"
                )
        for workload in self.workloads:
            if workload <= 0:
                raise TblError(
                    f"workload {workload!r} must be positive in {self.name!r}"
                )
        if self.think_time <= 0:
            raise TblError("think time must be positive")
        if self.timeout <= 0:
            raise TblError("client timeout must be positive")
        if self.repetitions < 1:
            raise TblError("repetitions must be at least 1")
        if self.consolidation_ratio < 1:
            raise TblError("consolidation ratio must be at least 1")
        if self.arrival is not None \
                and not isinstance(self.arrival, ArrivalSpec):
            raise TblError(
                f"arrival must be an ArrivalSpec, got {self.arrival!r}"
            )

    def points(self):
        """Yield every (topology, workload, write_ratio) sweep point."""
        for topology in self.topologies:
            for write_ratio in self.write_ratios:
                for workload in self.workloads:
                    yield topology, workload, write_ratio

    def point_count(self):
        return (len(self.topologies) * len(self.workloads)
                * len(self.write_ratios))

    def max_machine_count(self):
        """Peak machines needed by any single sweep point."""
        return max(t.machine_count() for t in self.topologies)


@dataclass(frozen=True)
class TestbedSpec:
    """A full TBL document: shared settings plus experiment families."""

    benchmark: str
    platform: str
    experiments: tuple
    app_server: str = None
    source: str = "<tbl>"

    def __post_init__(self):
        if not self.experiments:
            raise TblError("testbed spec declares no experiments")

    def experiment(self, name):
        for experiment in self.experiments:
            if experiment.name == name:
                return experiment
        raise TblError(
            f"no experiment named {name!r}; known: "
            f"{[e.name for e in self.experiments]}"
        )


def expand_range(start, stop=None, step=None):
    """Expand a TBL range into an inclusive tuple of values.

    Mirrors the language's ``A to B step C`` construct.  Works for both
    integers (workloads) and floats (write ratios); guards against the
    degenerate loops a hand-written harness would hit.
    """
    if stop is None:
        return (start,)
    if step is None:
        step = 1 if isinstance(start, int) and isinstance(stop, int) else 0.1
    if step <= 0:
        raise TblError(f"range step must be positive, got {step!r}")
    if stop < start:
        raise TblError(f"range end {stop!r} below start {start!r}")
    values = []
    value = start
    # Tolerate float accumulation: stop + half step catches 0.9000000004.
    while value <= stop + step * 1e-9 + (0 if isinstance(step, int) else step * 1e-6):
        values.append(round(value, 9) if isinstance(value, float) else value)
        value += step
    return tuple(values)
