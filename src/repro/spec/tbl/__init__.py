"""Testbed Language front end: lexer, parser, AST, writer."""

from repro.spec.tbl.ast import (
    DEFAULT_TRIAL_PHASES,
    ExperimentDef,
    MonitorSpec,
    ServiceLevelObjective,
    TestbedSpec,
    TrialPhases,
    expand_range,
)
from repro.spec.tbl.lexer import tokenize
from repro.spec.tbl.parser import parse
from repro.spec.tbl.writer import render_tbl

__all__ = [
    "DEFAULT_TRIAL_PHASES",
    "ExperimentDef",
    "MonitorSpec",
    "ServiceLevelObjective",
    "TestbedSpec",
    "TrialPhases",
    "expand_range",
    "tokenize",
    "parse",
    "render_tbl",
]
