"""Lexer for the Testbed Language.

Beyond the usual identifier/number/string tokens, TBL has two lexical
conveniences the paper's sweep notation needs:

* **topology literals** — ``1-8-2`` scans as a single ``topo`` token;
* **unit suffixes** — ``300s``, ``1500ms`` scan to seconds, ``15%`` to a
  fraction (handled by the shared scanner).
"""

from __future__ import annotations

from repro.errors import TblError
from repro.spec.lexing import Scanner, Token, is_ascii_digit

KEYWORDS = frozenset({
    "benchmark", "platform", "app_server", "experiment", "topology",
    "workload", "write_ratio", "think_time", "timeout", "seed", "trial",
    "warmup", "run", "cooldown", "slo", "response_time", "error_ratio",
    "monitor", "interval", "metrics", "to", "step", "by", "db_node_type",
    "repetitions", "scenario", "consolidation", "arrival", "rate",
    "amplitude", "period", "burst", "duty", "at", "session",
})

PUNCTUATION = "{};,"

_UNIT_SCALES = {"s": 1.0, "ms": 0.001, "m": 60.0, "h": 3600.0}


def tokenize(text, source="<tbl>"):
    """Tokenize TBL *text* into a list of :class:`Token`."""
    scanner = Scanner(text, source=source, error_class=TblError)
    tokens = []
    while True:
        scanner.skip_whitespace_and_comments(line_comments=("#", "//"))
        if scanner.at_end():
            break
        char = scanner.peek()
        if char == '"':
            tokens.append(scanner.scan_string())
        elif is_ascii_digit(char):
            tokens.append(_scan_numeric(scanner))
        elif char.isalpha() or char == "_":
            token = scanner.scan_identifier()
            lowered = token.value.lower()
            if lowered in KEYWORDS:
                token = Token("keyword", lowered, token.line, token.column)
            tokens.append(token)
        elif char in PUNCTUATION:
            line, column = scanner.line, scanner.column
            tokens.append(Token("punct", scanner.advance(), line, column))
        else:
            scanner.error(f"unexpected character {char!r}")
    return tokens


def _scan_numeric(scanner):
    """Scan a number, a duration (unit suffix) or a topology literal."""
    line, column = scanner.line, scanner.column
    first = scanner.scan_number()
    # Topology literal: integer '-' integer '-' integer, no spaces.
    if (isinstance(first.value, int) and scanner.peek() == "-"
            and is_ascii_digit(scanner.peek(1))):
        scanner.advance()  # consume '-'
        second = scanner.scan_number()
        if scanner.peek() != "-" or not is_ascii_digit(scanner.peek(1)):
            scanner.error("malformed topology literal (expected w-a-d)")
        scanner.advance()
        third = scanner.scan_number()
        if not (isinstance(second.value, int) and isinstance(third.value, int)):
            scanner.error("topology components must be integers")
        label = f"{first.value}-{second.value}-{third.value}"
        return Token("topo", label, line, column)
    # Duration: unit suffix glued to the number.
    if scanner.peek().isalpha():
        unit_chars = []
        while scanner.peek().isalpha():
            unit_chars.append(scanner.advance())
        unit = "".join(unit_chars)
        if unit not in _UNIT_SCALES:
            scanner.error(f"unknown unit suffix {unit!r}")
        return Token("duration", float(first.value) * _UNIT_SCALES[unit],
                     line, column)
    return first
