"""Render TBL text from programmatic sweep descriptions.

The paper's workflow edits the TBL input and regenerates everything
(Section III.C: "we modify Mulini's input specification once").  The
high-level campaign API builds sweeps programmatically; this writer
turns them into TBL text which is then *parsed back*, so the language
front end stays on the hot path and cannot rot.
"""

from __future__ import annotations

from repro.errors import TblError


def _format_values(values, percent=False):
    """Format a value list, collapsing arithmetic progressions to ranges."""
    values = list(values)
    if not values:
        raise TblError("cannot render an empty value list")
    if len(values) >= 3:
        step = values[1] - values[0]
        is_progression = step > 0 and all(
            abs((values[i + 1] - values[i]) - step) < 1e-9
            for i in range(len(values) - 1)
        )
        if is_progression:
            return (f"{_format_one(values[0], percent)} to "
                    f"{_format_one(values[-1], percent)} step "
                    f"{_format_one(step, percent)}")
    return ", ".join(_format_one(v, percent) for v in values)


def _format_one(value, percent=False):
    if percent:
        return f"{round(value * 100, 6):g}%"
    if isinstance(value, float) and value.is_integer():
        return f"{int(value)}"
    return f"{value:g}"


def _format_duration(seconds):
    if seconds < 1 and seconds > 0:
        return f"{seconds * 1000:g}ms"
    return f"{seconds:g}s"


def _render_arrival(arrival):
    """Render an ArrivalSpec; only non-default parameters are emitted."""
    params = arrival.to_dict()
    kind = params.pop("kind")
    if not params:
        return [f"    arrival {kind};"]
    lines = [f"    arrival {kind} {{"]
    for key in ("rate", "amplitude", "period", "burst", "duty", "at",
                "session_length"):
        if key not in params:
            continue
        value = params[key]
        if key == "period":
            lines.append(f"        period {_format_duration(value)};")
        elif key == "session_length":
            lines.append(f"        session {value};")
        else:
            lines.append(f"        {key} {_format_one(value)};")
    lines.append("    }")
    return lines


def render_tbl(benchmark, platform, experiments, app_server=None):
    """Render a TBL document.

    *experiments* is a list of dicts with keys matching
    :class:`repro.spec.tbl.ast.ExperimentDef` (topologies, workloads,
    write_ratios, trial, slo, monitor, think_time, timeout, seed, ...).
    Only non-default settings are emitted, keeping the generated text
    close to what a human would write.
    """
    lines = [
        "# Generated Testbed Language specification.",
        f"benchmark {benchmark};",
        f"platform {platform};",
    ]
    if app_server:
        lines.append(f"app_server {app_server};")
    lines.append("")
    for experiment in experiments:
        lines.extend(_render_experiment(experiment))
        lines.append("")
    return "\n".join(lines)


def _render_experiment(experiment):
    name = experiment["name"]
    lines = [f'experiment "{name}" {{']
    topologies = experiment["topologies"]
    labels = ", ".join(t.label() for t in topologies)
    lines.append(f"    topology {labels};")
    lines.append(f"    workload {_format_values(experiment['workloads'])};")
    write_ratios = experiment.get("write_ratios")
    if write_ratios:
        lines.append(
            f"    write_ratio {_format_values(write_ratios, percent=True)};"
        )
    if experiment.get("app_server"):
        lines.append(f"    app_server {experiment['app_server']};")
    if experiment.get("db_node_type"):
        lines.append(f"    db_node_type {experiment['db_node_type']};")
    if experiment.get("think_time") is not None:
        lines.append(
            f"    think_time {_format_duration(experiment['think_time'])};"
        )
    if experiment.get("timeout") is not None:
        lines.append(f"    timeout {_format_duration(experiment['timeout'])};")
    if experiment.get("seed") is not None:
        lines.append(f"    seed {experiment['seed']};")
    if experiment.get("repetitions", 1) > 1:
        lines.append(f"    repetitions {experiment['repetitions']};")
    if experiment.get("scenario"):
        lines.append(f'    scenario "{experiment["scenario"]}";')
    if experiment.get("consolidation_ratio", 1) > 1:
        lines.append(
            f"    consolidation {experiment['consolidation_ratio']};"
        )
    arrival = experiment.get("arrival")
    if arrival is not None:
        lines.extend(_render_arrival(arrival))
    trial = experiment.get("trial")
    if trial is not None:
        lines.append("    trial {")
        lines.append(f"        warmup {_format_duration(trial.warmup)};")
        lines.append(f"        run {_format_duration(trial.run)};")
        lines.append(f"        cooldown {_format_duration(trial.cooldown)};")
        lines.append("    }")
    slo = experiment.get("slo")
    if slo is not None:
        lines.append("    slo {")
        lines.append(
            f"        response_time {_format_duration(slo.response_time)};"
        )
        lines.append(
            f"        error_ratio {_format_one(slo.error_ratio * 100)}%;"
        )
        lines.append("    }")
    monitor = experiment.get("monitor")
    if monitor is not None:
        lines.append("    monitor {")
        lines.append(f"        interval {_format_duration(monitor.interval)};")
        lines.append(f"        metrics {', '.join(monitor.metrics)};")
        lines.append("    }")
    lines.append("}")
    return lines
