"""Topology descriptions for n-tier deployments.

The paper denotes experimental configurations by a triple ``w-a-d``
(Section III.C): *w* web servers, *a* application servers, *d* database
servers.  :class:`Topology` is the canonical in-memory form of that triple
and is used by the spec layer, the generator, the deployment engine and
the results database alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecError

#: Canonical tier names, outermost (client-facing) first.
TIER_ORDER = ("web", "app", "db")

#: Human-readable names used in generated artifacts and reports.
TIER_TITLES = {"web": "Web", "app": "Application", "db": "Database"}


@dataclass(frozen=True)
class Topology:
    """An n-tier server-count assignment, the paper's ``w-a-d`` triple."""

    web: int
    app: int
    db: int

    def __post_init__(self):
        for tier in TIER_ORDER:
            count = getattr(self, tier)
            if not isinstance(count, int) or count < 0:
                raise SpecError(
                    f"tier {tier!r} must have a non-negative integer count, "
                    f"got {count!r}"
                )
        if self.app < 1 or self.db < 1:
            raise SpecError(
                f"a deployable topology needs at least one app and one db "
                f"server, got {self.label()}"
            )

    @classmethod
    def parse(cls, text):
        """Parse the paper's ``w-a-d`` notation, e.g. ``"1-8-2"``."""
        parts = text.strip().split("-")
        if len(parts) != 3:
            raise SpecError(f"topology must be 'w-a-d', got {text!r}")
        try:
            web, app, db = (int(part) for part in parts)
        except ValueError:
            raise SpecError(f"topology components must be integers: {text!r}")
        return cls(web=web, app=app, db=db)

    def label(self):
        """Render back to the paper's ``w-a-d`` notation."""
        return f"{self.web}-{self.app}-{self.db}"

    def count(self, tier):
        """Number of servers in *tier* (one of :data:`TIER_ORDER`)."""
        if tier not in TIER_ORDER:
            raise SpecError(f"unknown tier {tier!r}")
        return getattr(self, tier)

    def with_count(self, tier, count):
        """Return a copy with *tier* set to *count* servers."""
        if tier not in TIER_ORDER:
            raise SpecError(f"unknown tier {tier!r}")
        values = {name: getattr(self, name) for name in TIER_ORDER}
        values[tier] = count
        return Topology(**values)

    def scaled(self, tier, delta=1):
        """Return a copy with *delta* more servers in *tier*.

        This is the elementary move of the paper's scale-out strategy
        (Section V.A): add one server to the bottleneck tier.
        """
        return self.with_count(tier, self.count(tier) + delta)

    def total_servers(self):
        """Total server processes across all tiers."""
        return self.web + self.app + self.db

    def machine_count(self):
        """Machines needed for one experiment: one per server process,
        plus one client-driver host and one control host (Section III)."""
        return self.total_servers() + 2

    def tiers(self):
        """Yield ``(tier, count)`` pairs in canonical order."""
        for tier in TIER_ORDER:
            yield tier, getattr(self, tier)

    def server_names(self, tier):
        """Deterministic server instance names for *tier*.

        These names are shared between the generator (script names such as
        ``TOMCAT1_install.sh``), the deployment engine and the simulator,
        so every layer agrees on identity.
        """
        return [f"{tier}{index}" for index in range(1, self.count(tier) + 1)]

    def all_server_names(self):
        """All server instance names, web tier first."""
        names = []
        for tier, _count in self.tiers():
            names.extend(self.server_names(tier))
        return names

    def dominates(self, other):
        """True if this topology has at least as many servers in every tier."""
        return all(self.count(t) >= other.count(t) for t in TIER_ORDER)


def topology_range(base, tier, upto):
    """Topologies obtained by growing *tier* of *base* one server at a time.

    ``topology_range(Topology(1, 1, 1), "app", 4)`` yields 1-1-1, 1-2-1,
    1-3-1, 1-4-1 — the paper's scale-out ladders (Section V.B).
    """
    start = base.count(tier)
    if upto < start:
        raise SpecError(
            f"cannot range tier {tier!r} from {start} down to {upto}"
        )
    for count in range(start, upto + 1):
        yield base.with_count(tier, count)


def topology_grid(web, app_range, db_range):
    """Cartesian grid of topologies, app count varying slowest.

    Used for the scale-out figure families (1-2-1 .. 1-12-3).
    """
    for app in app_range:
        for db in db_range:
            yield Topology(web=web, app=app, db=db)
