"""The Elba CIM schema and the resource model extracted from it.

Mulini's resource input (Section II) is a CIM/MOF document describing the
cluster and per-tier software/hardware assignments.  This module defines
the schema MOF shipped with the tool, the :class:`ResourceModel` the
generator consumes, and a writer that renders a default resource MOF for
a benchmark so the parser is exercised even on programmatic campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MofError
from repro.spec import catalog
from repro.spec.mof.parser import parse

#: MOF source of the Elba schema.  Parsed, not hand-built, so the parser
#: and the schema can never drift apart.
ELBA_SCHEMA_MOF = """
// Elba resource-configuration schema (CIM/MOF subset).
[Description("A physical cluster hosting experiments")]
class Elba_Cluster {
    string Name;
    string Platform;
    [Description("Directory of installable tarballs on the control host")]
    string PackageRepository = "/packages";
};

[Description("Hardware and software assignment for one tier")]
class Elba_TierAssignment {
    string Cluster;
    string Tier;
    string NodeType;
    string Software[];
    uint16 BasePort = 0;
};

[Description("Overrides for a single software package")]
class Elba_PackageOverride {
    string Package;
    uint32 WorkerPool = 0;
    real64 Efficiency = 0.0;
};
"""


@dataclass(frozen=True)
class TierAssignment:
    """Resolved hardware/software choice for one tier."""

    tier: str
    node_type: catalog.NodeType
    packages: tuple

    def daemon_package(self):
        """The package whose daemon answers requests for this tier.

        By convention the last package in the tier stack is the serving
        one (e.g. ``(tomcat, jonas)`` -> jonas; ``(mysql, cjdbc)`` -> the
        controller fronts the databases but mysqld does the work, so for
        the db tier the *first* package serves).
        """
        if self.tier == "db":
            return self.packages[0]
        return self.packages[-1]


@dataclass(frozen=True)
class ResourceModel:
    """Everything Mulini needs to know about the target environment."""

    cluster_name: str
    platform: catalog.HardwarePlatform
    package_repository: str
    tiers: dict
    overrides: dict

    def tier(self, name):
        try:
            return self.tiers[name]
        except KeyError:
            raise MofError(
                f"resource model has no tier {name!r}; known: "
                f"{sorted(self.tiers)}"
            )

    def fingerprint(self):
        """Hashable identity of everything generation consumes.

        Two models with equal fingerprints generate byte-identical
        bundles for the same experiment point, so this is the bundle
        cache's invalidation key: any tier reassignment, platform
        change or package override changes the fingerprint.
        """
        tiers = tuple(
            (name, assignment.node_type.name,
             tuple((p.name, p.version) for p in assignment.packages))
            for name, assignment in sorted(self.tiers.items())
        )
        overrides = tuple(
            (name, tuple(sorted(override.items())))
            for name, override in sorted(self.overrides.items())
        )
        return (self.cluster_name, self.platform.name,
                self.package_repository, tiers, overrides)

    def package(self, name):
        """Catalog package with any Elba_PackageOverride applied."""
        package = catalog.get_package(name)
        override = self.overrides.get(package.name)
        if not override:
            return package
        changes = {}
        if override.get("WorkerPool"):
            changes["worker_pool"] = override["WorkerPool"]
        if override.get("Efficiency"):
            changes["efficiency"] = override["Efficiency"]
        if not changes:
            return package
        from dataclasses import replace
        return replace(package, **changes)


def schema_repository():
    """A fresh repository pre-loaded with the Elba schema classes."""
    return parse(ELBA_SCHEMA_MOF, source="elba-schema.mof")


def load_resource_model(mof_text, source="<resource.mof>"):
    """Parse a resource MOF document and resolve it against the catalogs."""
    repository = schema_repository()
    parse(mof_text, source=source, repository=repository)
    return resource_model_from(repository)


def resource_model_from(repository):
    """Resolve a parsed repository into a :class:`ResourceModel`."""
    cluster = repository.single("Elba_Cluster")
    platform = catalog.get_platform(cluster.require("Platform"))
    tiers = {}
    for assignment in repository.instances_of("Elba_TierAssignment"):
        if assignment.require("Cluster") != cluster.require("Name"):
            raise MofError(
                f"tier assignment references unknown cluster "
                f"{assignment.require('Cluster')!r}"
            )
        tier = assignment.require("Tier").lower()
        if tier in tiers:
            raise MofError(f"duplicate tier assignment for {tier!r}")
        node_type = platform.node_type(assignment.get("NodeType"))
        packages = tuple(
            catalog.get_package(name) for name in assignment.require("Software")
        )
        for package in packages:
            if package.tier not in (tier, "any"):
                raise MofError(
                    f"package {package.name!r} belongs to tier "
                    f"{package.tier!r}, assigned to {tier!r}"
                )
        tiers[tier] = TierAssignment(tier=tier, node_type=node_type,
                                     packages=packages)
    if not tiers:
        raise MofError("resource model declares no tier assignments")
    overrides = {}
    for override in repository.instances_of("Elba_PackageOverride"):
        name = catalog.get_package(override.require("Package")).name
        overrides[name] = {
            "WorkerPool": override.get("WorkerPool", 0),
            "Efficiency": override.get("Efficiency", 0.0),
        }
    return ResourceModel(
        cluster_name=cluster.require("Name"),
        platform=platform,
        package_repository=cluster.get("PackageRepository", "/packages"),
        tiers=tiers,
        overrides=overrides,
    )


def render_resource_mof(benchmark, platform_name, app_server=None,
                        node_types=None, cluster_name=None):
    """Render the default resource MOF for *benchmark* on *platform_name*.

    ``node_types`` optionally maps tier -> node type name (the paper's
    Emulab baseline puts the database on the 600 MHz low-end node while
    web/app run on 3 GHz nodes, Section IV.A).
    """
    platform = catalog.get_platform(platform_name)
    stack = catalog.stack_for(benchmark, app_server=app_server)
    node_types = node_types or {}
    cluster_name = cluster_name or f"{platform.name}-{benchmark}"
    lines = [
        "// Generated Elba resource configuration.",
        "instance of Elba_Cluster {",
        f'    Name = "{cluster_name}";',
        f'    Platform = "{platform.name}";',
        "};",
        "",
    ]
    for tier in ("web", "app", "db"):
        if tier not in stack:
            continue
        node_type = platform.node_type(node_types.get(tier))
        software = ", ".join(f'"{p.name}"' for p in stack[tier])
        lines.extend([
            "instance of Elba_TierAssignment {",
            f'    Cluster = "{cluster_name}";',
            f'    Tier = "{tier}";',
            f'    NodeType = "{node_type.name}";',
            f"    Software = {{{software}}};",
            "};",
            "",
        ])
    return "\n".join(lines)
