"""Lexer for the CIM/MOF subset accepted by Mulini (Section II).

The subset covers what resource-configuration models need: qualifiers in
brackets, ``class`` declarations with typed properties, ``instance of``
blocks, string/number/boolean/array initializers.
"""

from __future__ import annotations

from repro.errors import MofError
from repro.spec.lexing import Scanner, Token, is_ascii_digit

KEYWORDS = frozenset({"class", "instance", "of", "true", "false", "null"})

#: MOF intrinsic property types we accept.
TYPE_NAMES = frozenset({
    "string", "boolean", "real32", "real64",
    "sint8", "sint16", "sint32", "sint64",
    "uint8", "uint16", "uint32", "uint64",
})

PUNCTUATION = "{}[]();=,:"


def tokenize(text, source="<mof>"):
    """Tokenize MOF *text* into a list of :class:`Token`."""
    scanner = Scanner(text, source=source, error_class=MofError)
    tokens = []
    while True:
        scanner.skip_whitespace_and_comments(line_comments=("//",))
        if scanner.at_end():
            break
        char = scanner.peek()
        if char == '"':
            tokens.append(scanner.scan_string())
        elif is_ascii_digit(char) or (char in "+-"
                                      and is_ascii_digit(scanner.peek(1))):
            tokens.append(scanner.scan_number())
        elif char.isalpha() or char == "_":
            token = scanner.scan_identifier()
            lowered = token.value.lower()
            if lowered in KEYWORDS:
                token = Token("keyword", lowered, token.line, token.column)
            tokens.append(token)
        elif char in PUNCTUATION:
            line, column = scanner.line, scanner.column
            tokens.append(Token("punct", scanner.advance(), line, column))
        else:
            scanner.error(f"unexpected character {char!r}")
    return tokens
