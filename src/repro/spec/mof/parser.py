"""Recursive-descent parser for the MOF subset.

Grammar (EBNF, qualifier lists optional everywhere they appear):

    document     := (class_decl | instance_decl)*
    class_decl   := qualifiers? "class" IDENT "{" property* "}" ";"
    property     := qualifiers? TYPE IDENT array? ("=" literal)? ";"
    array        := "[" "]"
    instance_decl:= qualifiers? "instance" "of" IDENT "{" assign* "}" ";"
    assign       := IDENT "=" value ";"
    value        := literal | "{" (literal ("," literal)*)? "}"
    literal      := STRING | NUMBER | "true" | "false" | "null"
    qualifiers   := "[" qualifier ("," qualifier)* "]"
    qualifier    := IDENT ("(" literal ")")?
"""

from __future__ import annotations

from repro.errors import MofError
from repro.spec.lexing import TokenStream
from repro.spec.mof.lexer import TYPE_NAMES, tokenize
from repro.spec.mof.model import CimClass, CimProperty, CimRepository


def parse(text, source="<mof>", repository=None):
    """Parse MOF *text* into (or onto) a :class:`CimRepository`."""
    tokens = TokenStream(tokenize(text, source=source), source=source,
                         error_class=MofError)
    repository = repository if repository is not None else CimRepository()
    while not tokens.at_end():
        qualifiers = _parse_qualifiers(tokens)
        if tokens.check("keyword", "class"):
            repository.add_class(_parse_class(tokens, qualifiers))
        elif tokens.check("keyword", "instance"):
            class_name, values = _parse_instance(tokens)
            repository.add_instance(class_name, values)
        else:
            tokens.error("expected 'class' or 'instance'")
    return repository


def _parse_qualifiers(tokens):
    qualifiers = {}
    if not tokens.check("punct", "["):
        return qualifiers
    tokens.next()
    while True:
        name_token = tokens.expect("ident")
        value = True
        if tokens.accept("punct", "("):
            value = _parse_literal(tokens)
            tokens.expect("punct", ")")
        qualifiers[name_token.value] = value
        if tokens.accept("punct", ","):
            continue
        tokens.expect("punct", "]")
        break
    return qualifiers


def _parse_class(tokens, qualifiers):
    tokens.expect("keyword", "class")
    name = tokens.expect("ident").value
    tokens.expect("punct", "{")
    properties = {}
    while not tokens.check("punct", "}"):
        prop = _parse_property(tokens)
        if prop.name in properties:
            tokens.error(f"duplicate property {prop.name!r} in class {name}")
        properties[prop.name] = prop
    tokens.expect("punct", "}")
    tokens.expect("punct", ";")
    return CimClass(name=name, properties=properties, qualifiers=qualifiers)


def _parse_property(tokens):
    qualifiers = _parse_qualifiers(tokens)
    type_token = tokens.expect("ident")
    cim_type = type_token.value.lower()
    if cim_type not in TYPE_NAMES:
        tokens.error(f"unknown property type {type_token.value!r}", type_token)
    name = tokens.expect("ident").value
    is_array = False
    if tokens.accept("punct", "["):
        tokens.expect("punct", "]")
        is_array = True
    default = None
    if tokens.accept("punct", "="):
        default = _parse_value(tokens)
    tokens.expect("punct", ";")
    return CimProperty(name=name, cim_type=cim_type, is_array=is_array,
                       default=default, qualifiers=qualifiers)


def _parse_instance(tokens):
    tokens.expect("keyword", "instance")
    tokens.expect("keyword", "of")
    class_name = tokens.expect("ident").value
    tokens.expect("punct", "{")
    values = {}
    while not tokens.check("punct", "}"):
        name = tokens.expect("ident").value
        if name in values:
            tokens.error(f"duplicate assignment to {name!r}")
        tokens.expect("punct", "=")
        values[name] = _parse_value(tokens)
        tokens.expect("punct", ";")
    tokens.expect("punct", "}")
    tokens.expect("punct", ";")
    return class_name, values


def _parse_value(tokens):
    if tokens.accept("punct", "{"):
        items = []
        if not tokens.check("punct", "}"):
            items.append(_parse_literal(tokens))
            while tokens.accept("punct", ","):
                items.append(_parse_literal(tokens))
        tokens.expect("punct", "}")
        return items
    return _parse_literal(tokens)


def _parse_literal(tokens):
    token = tokens.peek()
    if token is None:
        tokens.error("expected a literal, got end of input")
    if token.kind == "string" or token.kind == "number":
        return tokens.next().value
    if token.kind == "keyword" and token.value in ("true", "false", "null"):
        tokens.next()
        return {"true": True, "false": False, "null": None}[token.value]
    tokens.error(f"expected a literal, got {token.value!r}")
