"""In-memory CIM model: classes, properties, instances, repository.

This is the target representation of the MOF parser and the source
representation the Mulini generator reads resource configurations from.
Type checking happens when instances enter the repository, so generator
code downstream never needs to re-validate shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MofError

_INT_TYPES = {
    "sint8", "sint16", "sint32", "sint64",
    "uint8", "uint16", "uint32", "uint64",
}
_REAL_TYPES = {"real32", "real64"}


@dataclass(frozen=True)
class CimProperty:
    """A typed, possibly array-valued CIM class property."""

    name: str
    cim_type: str
    is_array: bool = False
    default: object = None
    qualifiers: dict = field(default_factory=dict)

    def check(self, value, class_name):
        """Validate and coerce *value* for this property."""
        if value is None:
            return None
        if self.is_array:
            if not isinstance(value, (list, tuple)):
                raise MofError(
                    f"{class_name}.{self.name} is an array property, "
                    f"got scalar {value!r}"
                )
            return tuple(self._check_scalar(item, class_name) for item in value)
        if isinstance(value, (list, tuple)):
            raise MofError(
                f"{class_name}.{self.name} is scalar, got array {value!r}"
            )
        return self._check_scalar(value, class_name)

    def _check_scalar(self, value, class_name):
        if self.cim_type == "string":
            if not isinstance(value, str):
                raise MofError(
                    f"{class_name}.{self.name} expects a string, got {value!r}"
                )
            return value
        if self.cim_type == "boolean":
            if not isinstance(value, bool):
                raise MofError(
                    f"{class_name}.{self.name} expects a boolean, got {value!r}"
                )
            return value
        if self.cim_type in _INT_TYPES:
            if isinstance(value, bool) or not isinstance(value, int):
                raise MofError(
                    f"{class_name}.{self.name} expects an integer, got {value!r}"
                )
            if self.cim_type.startswith("u") and value < 0:
                raise MofError(
                    f"{class_name}.{self.name} is unsigned, got {value!r}"
                )
            return value
        if self.cim_type in _REAL_TYPES:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise MofError(
                    f"{class_name}.{self.name} expects a real, got {value!r}"
                )
            return float(value)
        raise MofError(f"unknown CIM type {self.cim_type!r}")


@dataclass(frozen=True)
class CimClass:
    """A CIM class: a name, qualifiers and an ordered property table."""

    name: str
    properties: dict
    qualifiers: dict = field(default_factory=dict)

    def property(self, name):
        try:
            return self.properties[name]
        except KeyError:
            raise MofError(
                f"class {self.name} has no property {name!r}; "
                f"known: {sorted(self.properties)}"
            )


class CimInstance:
    """An instance of a CIM class with validated property values."""

    def __init__(self, cim_class, values):
        self.cim_class = cim_class
        self.values = {}
        for name, value in values.items():
            prop = cim_class.property(name)
            self.values[name] = prop.check(value, cim_class.name)
        for name, prop in cim_class.properties.items():
            if name not in self.values:
                self.values[name] = prop.check(prop.default, cim_class.name)

    @property
    def class_name(self):
        return self.cim_class.name

    def get(self, name, default=None):
        self.cim_class.property(name)  # raise on unknown property
        value = self.values.get(name)
        return default if value is None else value

    def require(self, name):
        value = self.get(name)
        if value is None:
            raise MofError(
                f"instance of {self.class_name} is missing required "
                f"property {name!r}"
            )
        return value

    def __repr__(self):
        keys = ", ".join(f"{k}={v!r}" for k, v in sorted(self.values.items())
                         if v is not None)
        return f"CimInstance({self.class_name}: {keys})"


class CimRepository:
    """Holds classes and instances parsed from one or more MOF documents."""

    def __init__(self):
        self.classes = {}
        self.instances = []

    def add_class(self, cim_class):
        if cim_class.name in self.classes:
            raise MofError(f"duplicate class declaration {cim_class.name!r}")
        self.classes[cim_class.name] = cim_class

    def get_class(self, name):
        try:
            return self.classes[name]
        except KeyError:
            raise MofError(
                f"unknown class {name!r}; known: {sorted(self.classes)}"
            )

    def add_instance(self, class_name, values):
        instance = CimInstance(self.get_class(class_name), values)
        self.instances.append(instance)
        return instance

    def instances_of(self, class_name):
        """All instances of *class_name*, in declaration order."""
        self.get_class(class_name)  # raise on unknown class
        return [i for i in self.instances if i.class_name == class_name]

    def single(self, class_name):
        """The unique instance of *class_name* (error if 0 or many)."""
        found = self.instances_of(class_name)
        if len(found) != 1:
            raise MofError(
                f"expected exactly one instance of {class_name}, "
                f"found {len(found)}"
            )
        return found[0]

    def merge(self, other):
        """Fold another repository's classes and instances into this one."""
        for cim_class in other.classes.values():
            if cim_class.name not in self.classes:
                self.add_class(cim_class)
        self.instances.extend(other.instances)
