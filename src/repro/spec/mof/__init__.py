"""CIM/MOF front end: lexer, parser, model and the Elba schema."""

from repro.spec.mof.lexer import tokenize
from repro.spec.mof.model import (
    CimClass,
    CimInstance,
    CimProperty,
    CimRepository,
)
from repro.spec.mof.parser import parse
from repro.spec.mof.schema import (
    ELBA_SCHEMA_MOF,
    ResourceModel,
    TierAssignment,
    load_resource_model,
    render_resource_mof,
    resource_model_from,
    schema_repository,
)

__all__ = [
    "tokenize",
    "parse",
    "CimClass",
    "CimInstance",
    "CimProperty",
    "CimRepository",
    "ELBA_SCHEMA_MOF",
    "ResourceModel",
    "TierAssignment",
    "load_resource_model",
    "render_resource_mof",
    "resource_model_from",
    "schema_repository",
]
