"""Shared scanning machinery for the MOF and TBL front ends.

Both specification languages are small enough that a hand-rolled scanner
is clearer than a regex table.  :class:`Scanner` provides position
tracking, string/number/identifier scanning and error reporting; the
language-specific lexers supply keyword sets and punctuation tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecError


#: ASCII digits only: str.isdigit() accepts superscripts ('²') and other
#: unicode digits that int()/float() reject.
ASCII_DIGITS = frozenset("0123456789")


def is_ascii_digit(char):
    return char in ASCII_DIGITS


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position (1-based line/column)."""

    kind: str
    value: object
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Scanner:
    """Character-level scanner with line/column bookkeeping."""

    def __init__(self, text, source="<spec>", error_class=SpecError):
        self.text = text
        self.source = source
        self.error_class = error_class
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message):
        raise self.error_class(
            message, line=self.line, column=self.column, source=self.source
        )

    def at_end(self):
        return self.pos >= len(self.text)

    def peek(self, offset=0):
        index = self.pos + offset
        if index >= len(self.text):
            return ""
        return self.text[index]

    def advance(self):
        char = self.text[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def match(self, expected):
        """Consume *expected* if it is next; return True on success."""
        if self.text.startswith(expected, self.pos):
            for _ in expected:
                self.advance()
            return True
        return False

    def skip_whitespace_and_comments(self, line_comments=("//", "#"),
                                     block_comments=(("/*", "*/"),)):
        """Skip spaces, newlines and any of the given comment styles."""
        while not self.at_end():
            char = self.peek()
            if char in " \t\r\n":
                self.advance()
                continue
            matched_comment = False
            for marker in line_comments:
                if self.text.startswith(marker, self.pos):
                    while not self.at_end() and self.peek() != "\n":
                        self.advance()
                    matched_comment = True
                    break
            if matched_comment:
                continue
            for opener, closer in block_comments:
                if self.text.startswith(opener, self.pos):
                    start_line = self.line
                    self.match(opener)
                    while not self.at_end() and not self.match(closer):
                        self.advance()
                    if self.at_end() and not self.text.endswith(closer):
                        self.line = start_line
                        self.error(f"unterminated comment opened with {opener!r}")
                    matched_comment = True
                    break
            if matched_comment:
                continue
            return

    def scan_string(self):
        """Scan a double-quoted string with backslash escapes."""
        line, column = self.line, self.column
        quote = self.advance()
        assert quote == '"'
        chars = []
        while True:
            if self.at_end():
                self.error("unterminated string literal")
            char = self.advance()
            if char == '"':
                break
            if char == "\n":
                self.error("newline in string literal")
            if char == "\\":
                if self.at_end():
                    self.error("dangling escape at end of input")
                escape = self.advance()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    self.error(f"unknown escape sequence \\{escape}")
                chars.append(mapping[escape])
            else:
                chars.append(char)
        return Token("string", "".join(chars), line, column)

    def scan_number(self):
        """Scan an integer or float, optionally signed or a percentage."""
        line, column = self.line, self.column
        chars = []
        if self.peek() in "+-":
            chars.append(self.advance())
        saw_dot = False
        while not self.at_end() and (is_ascii_digit(self.peek()) or
                                     (self.peek() == "." and not saw_dot)):
            if self.peek() == ".":
                saw_dot = True
            chars.append(self.advance())
        text = "".join(chars)
        if text in ("", "+", "-"):
            self.error("malformed number")
        if self.peek() == "%":
            self.advance()
            return Token("number", float(text) / 100.0, line, column)
        value = float(text) if saw_dot else int(text)
        return Token("number", value, line, column)

    def scan_identifier(self, extra_chars="_"):
        """Scan an identifier ``[A-Za-z_][A-Za-z0-9_]*`` (plus extras)."""
        line, column = self.line, self.column
        chars = [self.advance()]
        while not self.at_end() and (self.peek().isalnum() or
                                     self.peek() in extra_chars):
            chars.append(self.advance())
        return Token("ident", "".join(chars), line, column)


class TokenStream:
    """Parser-side cursor over a token list with convenience accessors."""

    def __init__(self, tokens, source="<spec>", error_class=SpecError):
        self.tokens = tokens
        self.source = source
        self.error_class = error_class
        self.index = 0

    def error(self, message, token=None):
        token = token if token is not None else self.peek()
        line = token.line if token is not None else None
        column = token.column if token is not None else None
        raise self.error_class(
            message, line=line, column=column, source=self.source
        )

    def at_end(self):
        return self.index >= len(self.tokens)

    def peek(self, offset=0):
        index = self.index + offset
        if index >= len(self.tokens):
            return None
        return self.tokens[index]

    def next(self):
        if self.at_end():
            raise self.error_class(
                "unexpected end of input", source=self.source
            )
        token = self.tokens[self.index]
        self.index += 1
        return token

    def check(self, kind, value=None):
        token = self.peek()
        if token is None or token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        return True

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.next()
        return None

    def expect(self, kind, value=None):
        token = self.peek()
        if token is None:
            raise self.error_class(
                f"expected {value or kind}, got end of input",
                source=self.source,
            )
        if token.kind != kind or (value is not None and token.value != value):
            shown = value if value is not None else kind
            self.error(f"expected {shown!r}, got {token.value!r}", token)
        return self.next()
