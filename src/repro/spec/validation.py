"""Cross-validation of MOF resource models against TBL experiment specs.

A MOF document and a TBL document can each be well-formed yet mutually
inconsistent (a topology the cluster cannot host, a benchmark whose
tiers the resource model does not assign, an app-server override the
tier stack does not contain).  :func:`validate` is the single gate
Mulini runs before generating anything.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.spec import catalog
from repro.spec.topology import TIER_ORDER


def validate(resource_model, testbed_spec):
    """Check *testbed_spec* is runnable on *resource_model*.

    Returns a list of human-readable warnings (non-fatal observations);
    raises :class:`ValidationError` on any fatal inconsistency.
    """
    warnings = []
    platform = resource_model.platform
    if testbed_spec.platform != platform.name:
        raise ValidationError(
            f"TBL targets platform {testbed_spec.platform!r} but the "
            f"resource model describes {platform.name!r}"
        )
    _validate_tiers(resource_model, testbed_spec)
    for experiment in testbed_spec.experiments:
        _validate_experiment(resource_model, experiment, warnings)
    return warnings


def _validate_tiers(resource_model, testbed_spec):
    stack = catalog.stack_for(testbed_spec.benchmark,
                              app_server=testbed_spec.app_server)
    for tier in stack:
        if tier not in resource_model.tiers:
            raise ValidationError(
                f"benchmark {testbed_spec.benchmark!r} needs tier {tier!r} "
                f"but the resource model does not assign it"
            )


def _validate_experiment(resource_model, experiment, warnings):
    platform = resource_model.platform
    needed = experiment.max_machine_count()
    if needed > platform.total_nodes:
        raise ValidationError(
            f"experiment {experiment.name!r} needs {needed} machines but "
            f"platform {platform.name!r} has only {platform.total_nodes}"
        )
    if experiment.app_server is not None:
        package = catalog.get_package(experiment.app_server)
        if package.tier != "app":
            raise ValidationError(
                f"experiment {experiment.name!r}: {experiment.app_server!r} "
                f"is not an application-server package"
            )
    if experiment.db_node_type is not None:
        platform.node_type(experiment.db_node_type)  # raises if unknown
    for tier in TIER_ORDER:
        assignment = resource_model.tiers.get(tier)
        if assignment is None:
            continue
        for topology in experiment.topologies:
            if topology.count(tier) > 0 and not assignment.packages:
                raise ValidationError(
                    f"experiment {experiment.name!r} deploys tier {tier!r} "
                    f"but the resource model assigns no software to it"
                )
    # Non-fatal observations an operator would want surfaced.
    for topology in experiment.topologies:
        if topology.db > 1 and not _has_controller(resource_model):
            raise ValidationError(
                f"topology {topology.label()} replicates the database but "
                f"the db tier stack lacks a C-JDBC controller"
            )
        if topology.web == 0:
            warnings.append(
                f"{experiment.name}: topology {topology.label()} has no web "
                f"tier; clients will contact the app tier directly"
            )
    slow_trial = experiment.trial.total() * experiment.point_count()
    if slow_trial > 24 * 3600:
        warnings.append(
            f"{experiment.name}: full sweep occupies the cluster for "
            f"{slow_trial / 3600:.1f} hours of trial time"
        )
    return warnings


def _has_controller(resource_model):
    db_tier = resource_model.tiers.get("db")
    if db_tier is None:
        return False
    return any(p.role == "db-controller" for p in db_tier.packages)
