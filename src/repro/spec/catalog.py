"""Hardware and software catalogs (the paper's Table 2 and Table 1).

The catalogs are the single source of truth for what hardware a cluster
is made of and which software packages a benchmark deploys.  The virtual
cluster instantiates hosts from :class:`NodeType`, the generator emits
install scripts from :class:`SoftwarePackage`, and the simulator derives
speed factors from CPU clocks and core counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SpecError


@dataclass(frozen=True)
class NodeType:
    """A hardware node model (one row of the paper's Table 2)."""

    name: str
    cpu_ghz: float
    cpu_count: int
    memory_mb: int
    network_gbps: float
    disk_rpm: int
    disk_cache_mb: int = 8

    def __post_init__(self):
        if self.cpu_ghz <= 0 or self.cpu_count <= 0:
            raise SpecError(f"node type {self.name!r} needs positive CPU specs")
        if self.memory_mb <= 0:
            raise SpecError(f"node type {self.name!r} needs positive memory")

    def speed_factor(self, reference_ghz=3.0):
        """Single-core speed relative to a 3 GHz reference core.

        Service demands in the calibration tables are expressed for the
        reference core; a 600 MHz Emulab low-end node runs them 5x slower.
        """
        return self.cpu_ghz / reference_ghz

    def describe(self):
        return (
            f"{self.cpu_count} x {self.cpu_ghz:g}GHz CPU, "
            f"{self.memory_mb}MB RAM, {self.network_gbps:g}Gbps NIC, "
            f"{self.disk_rpm}RPM disk ({self.disk_cache_mb}MB cache)"
        )


@dataclass(frozen=True)
class HardwarePlatform:
    """A cluster platform: named node types plus a default type."""

    name: str
    node_types: dict
    default_type: str
    total_nodes: int
    os_name: str
    kernel: str

    def node_type(self, name=None):
        # TBL identifiers cannot carry dashes, so emulab_low == emulab-low.
        key = self.default_type if name is None else name.replace("_", "-")
        try:
            return self.node_types[key]
        except KeyError:
            raise SpecError(
                f"platform {self.name!r} has no node type {key!r}; "
                f"known: {sorted(self.node_types)}"
            )


def _platforms():
    """Build the three platforms of Table 2: Warp, Rohan, Emulab."""
    warp_node = NodeType(
        name="warp-blade", cpu_ghz=3.06, cpu_count=2, memory_mb=1024,
        network_gbps=1.0, disk_rpm=5400,
    )
    rohan_node = NodeType(
        name="rohan-blade", cpu_ghz=3.20, cpu_count=2, memory_mb=6144,
        network_gbps=1.0, disk_rpm=10000,
    )
    emulab_low = NodeType(
        name="emulab-low", cpu_ghz=0.6, cpu_count=1, memory_mb=256,
        network_gbps=0.1, disk_rpm=7200,
    )
    emulab_high = NodeType(
        name="emulab-high", cpu_ghz=3.0, cpu_count=1, memory_mb=2048,
        network_gbps=1.0, disk_rpm=10000,
    )
    return {
        "warp": HardwarePlatform(
            name="warp",
            node_types={"warp-blade": warp_node},
            default_type="warp-blade",
            total_nodes=56,
            os_name="Red Hat Enterprise Linux 4",
            kernel="2.6.9-22.ELsmp i386",
        ),
        "rohan": HardwarePlatform(
            name="rohan",
            node_types={"rohan-blade": rohan_node},
            default_type="rohan-blade",
            total_nodes=53,
            os_name="Red Hat Enterprise Linux 4",
            kernel="2.6.9-22.ELsmp x86_64",
        ),
        "emulab": HardwarePlatform(
            name="emulab",
            node_types={"emulab-low": emulab_low, "emulab-high": emulab_high},
            default_type="emulab-high",
            total_nodes=64,
            os_name="Fedora Core 4",
            kernel="2.6.12-1.1390_FC4 i386",
        ),
    }


PLATFORMS = _platforms()


def get_platform(name):
    """Look up a platform by name (case-insensitive)."""
    try:
        return PLATFORMS[name.lower()]
    except KeyError:
        raise SpecError(
            f"unknown hardware platform {name!r}; known: {sorted(PLATFORMS)}"
        )


@dataclass(frozen=True)
class SoftwarePackage:
    """An installable server package (one cell of the paper's Table 1)."""

    name: str
    version: str
    tier: str
    role: str                      # e.g. "web-server", "app-server", "database"
    archive: str                   # tarball name in the control host package repo
    install_root: str              # directory the archive unpacks to
    daemon: str                    # executable path started by ignition scripts
    default_port: int
    #: multiplier applied to calibrated service demands; <1 means faster.
    efficiency: float = 1.0
    #: maximum concurrent worker threads/connections (pool cap).
    worker_pool: int = 256
    config_files: tuple = field(default_factory=tuple)

    def archive_path(self):
        return f"/packages/{self.archive}"

    def daemon_path(self):
        return f"{self.install_root}/{self.daemon}"


def _software():
    apache = SoftwarePackage(
        name="apache", version="2.0.54", tier="web", role="web-server",
        archive="httpd-2.0.54.tar.gz", install_root="/opt/apache",
        daemon="bin/httpd", default_port=80, efficiency=1.0,
        worker_pool=512,
        config_files=("conf/httpd.conf", "conf/workers2.properties"),
    )
    tomcat = SoftwarePackage(
        name="tomcat", version="5.5.17", tier="app", role="servlet-container",
        archive="jakarta-tomcat-5.5.17.tar.gz", install_root="/opt/tomcat",
        daemon="bin/catalina.sh", default_port=8009, efficiency=1.0,
        worker_pool=300,
        config_files=("conf/server.xml",),
    )
    jonas = SoftwarePackage(
        name="jonas", version="4.7.1", tier="app", role="app-server",
        archive="jonas-4.7.1.tar.gz", install_root="/opt/jonas",
        daemon="bin/jonas", default_port=9000, efficiency=1.0,
        worker_pool=300,
        config_files=("conf/jonas.properties",),
    )
    weblogic = SoftwarePackage(
        name="weblogic", version="8.1", tier="app", role="app-server",
        archive="weblogic-8.1.tar.gz", install_root="/opt/weblogic",
        daemon="bin/startWLS.sh", default_port=7001,
        # The paper's ~2x user capacity for Weblogic (IV.B) is carried by
        # the Warp nodes' dual CPUs (Table 2), not a software factor.
        efficiency=1.0,
        worker_pool=400,
        config_files=("config/config.xml",),
    )
    mysql = SoftwarePackage(
        name="mysql", version="4.0.27-max", tier="db", role="database",
        archive="mysql-max-4.0.27.tar.gz", install_root="/opt/mysql",
        daemon="bin/mysqld", default_port=3306, efficiency=1.0,
        worker_pool=500,
        config_files=("my.cnf",),
    )
    cjdbc = SoftwarePackage(
        name="cjdbc", version="2.0.2", tier="db", role="db-controller",
        archive="c-jdbc-2.0.2.tar.gz", install_root="/opt/cjdbc",
        daemon="bin/controller.sh", default_port=25322, efficiency=1.0,
        worker_pool=500,
        config_files=("config/mysqldb-raidb1-elba.xml",),
    )
    sysstat = SoftwarePackage(
        name="sysstat", version="6.0.2", tier="any", role="monitor",
        archive="sysstat-6.0.2.tar.gz", install_root="/opt/sysstat",
        daemon="bin/sar", default_port=0, efficiency=1.0,
    )
    return {p.name: p for p in
            (apache, tomcat, jonas, weblogic, mysql, cjdbc, sysstat)}


SOFTWARE = _software()


def get_package(name):
    """Look up a software package by name (case-insensitive)."""
    try:
        return SOFTWARE[name.lower()]
    except KeyError:
        raise SpecError(
            f"unknown software package {name!r}; known: {sorted(SOFTWARE)}"
        )


#: Software stacks per benchmark (the paper's Table 1).  The app entry is a
#: default; TBL specs may override it (JOnAS vs Weblogic in Section IV).
BENCHMARK_STACKS = {
    "rubis": {"web": ("apache",), "app": ("tomcat", "jonas"), "db": ("mysql", "cjdbc")},
    "rubbos": {"web": ("apache",), "app": ("tomcat",), "db": ("mysql", "cjdbc")},
    # TPC-App (the paper's anticipated addition, Section I): a web-
    # services workload; the SOAP stack runs in the EJB container.
    "tpcapp": {"web": ("apache",), "app": ("tomcat", "jonas"), "db": ("mysql", "cjdbc")},
}


def stack_for(benchmark, app_server=None):
    """Resolve the package list per tier for *benchmark*.

    ``app_server`` may replace the default EJB container (e.g.
    ``"weblogic"``).  Returns a dict ``tier -> tuple of SoftwarePackage``.
    """
    try:
        raw = BENCHMARK_STACKS[benchmark.lower()]
    except KeyError:
        raise SpecError(
            f"unknown benchmark {benchmark!r}; known: {sorted(BENCHMARK_STACKS)}"
        )
    stack = {}
    for tier, names in raw.items():
        names = list(names)
        if tier == "app" and app_server is not None:
            replacement = get_package(app_server)
            if replacement.tier != "app":
                raise SpecError(
                    f"{app_server!r} is not an application-tier package"
                )
            # The EJB container is the last element; servlet container stays.
            if len(names) > 1:
                names[-1] = replacement.name
            else:
                names = [replacement.name]
        stack[tier] = tuple(get_package(n) for n in names)
    return stack
