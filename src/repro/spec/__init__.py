"""Specification layer: CIM/MOF resource models, TBL experiment specs,
topology notation, hardware/software catalogs and cross-validation."""

from repro.spec.catalog import (
    BENCHMARK_STACKS,
    PLATFORMS,
    SOFTWARE,
    HardwarePlatform,
    NodeType,
    SoftwarePackage,
    get_package,
    get_platform,
    stack_for,
)
from repro.spec.topology import (
    TIER_ORDER,
    TIER_TITLES,
    Topology,
    topology_grid,
    topology_range,
)
from repro.spec.validation import validate

__all__ = [
    "BENCHMARK_STACKS",
    "PLATFORMS",
    "SOFTWARE",
    "HardwarePlatform",
    "NodeType",
    "SoftwarePackage",
    "get_package",
    "get_platform",
    "stack_for",
    "TIER_ORDER",
    "TIER_TITLES",
    "Topology",
    "topology_grid",
    "topology_range",
    "validate",
]
