"""Retry policy: bounded attempts with deterministic virtual backoff.

DiPerF's framework treats client/host failure and recovery as part of
running a measurement fleet; this module is the decision layer for
that: which failures are worth re-running, how many times, and with
what (virtual-time) backoff.  Nothing here sleeps — the backoff is an
accounting quantity recorded on the attempt and in the trace, so chaos
campaigns stay as fast as clean ones and remain fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    ClusterError,
    DeployError,
    ExperimentError,
    MonitoringError,
    ShellError,
    TrialFailed,
)

#: Failure classes re-running an attempt can plausibly fix: broken
#: infrastructure rather than broken specifications.  SpecError,
#: GenerationError, WorkloadError, SimulationError and ResultsError are
#: deliberately absent — retrying a wrong input or a logic bug just
#: burns the budget.
TRANSIENT_ERRORS = (ClusterError, DeployError, MonitoringError, ShellError)

GAVE_UP = "gave-up"
RETRIED = "retried"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retries for failed trial attempts.

    *max_attempts* counts the first attempt; 1 disables retries and
    restores the raise-on-failure behaviour.  Backoff between attempts
    is ``backoff_base_s * backoff_factor ** (attempt - 1)`` virtual
    seconds, recorded (never slept).  *quarantine_after* is how many
    failures may be blamed on one host before the runner quarantines it
    on its cluster; *record_dnf* stores an enriched DNF row when the
    budget is exhausted instead of re-raising.

    *probation_trials* turns quarantine from a life sentence into
    probation: after that many *successful* trials elsewhere, the
    runner releases the quarantined host back into the pool with its
    blame count reset to one-below-threshold, so a single fresh blame
    re-quarantines it immediately.  0 (the default) keeps the
    historical permanent-quarantine behaviour.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    quarantine_after: int = 2
    record_dnf: bool = True
    probation_trials: int = 0
    transient: tuple = TRANSIENT_ERRORS

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.quarantine_after < 1:
            raise ExperimentError(
                f"quarantine_after must be at least 1, "
                f"got {self.quarantine_after}"
            )
        if self.probation_trials < 0:
            raise ExperimentError(
                f"probation_trials must be non-negative, "
                f"got {self.probation_trials}"
            )

    def is_transient(self, error):
        """Whether re-running the attempt could help.

        An injected fault decides by its spec's ``transient`` flag; a
        :class:`TrialFailed` wrapper is judged by its underlying cause;
        anything else by the transient error classes.  A DNF for
        exceeding the error budget is an *observation*, never retried.
        """
        fault = getattr(error, "fault", None)
        if fault is not None:
            return fault.spec.transient
        if isinstance(error, TrialFailed):
            if error.cause is None:
                return False
            return self.is_transient(error.cause)
        return isinstance(error, self.transient)

    def backoff_s(self, attempt):
        """Virtual-time backoff before retrying after *attempt* (1-based
        count of failures so far)."""
        if attempt < 1:
            return 0.0
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)

    def to_dict(self):
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_factor": self.backoff_factor,
            "quarantine_after": self.quarantine_after,
            "record_dnf": self.record_dnf,
            "probation_trials": self.probation_trials,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


#: The do-nothing policy: one attempt, failures raise as they always
#: did.  ``as_policy(None)`` returns it so the runner never branches.
NO_RETRY = RetryPolicy(max_attempts=1, record_dnf=False)


def as_policy(retry):
    """Normalize a ``retry=`` argument: None -> :data:`NO_RETRY`, an
    int -> that many attempts with defaults, a policy -> itself."""
    if retry is None:
        return NO_RETRY
    if isinstance(retry, int):
        return NO_RETRY if retry <= 1 else RetryPolicy(max_attempts=retry)
    return retry
