"""Declarative, seeded fault plans for the virtual cluster.

The paper treats experiments that "could not complete" as first-class
observations (Table 7), and its staging story (Section VI) is about
surfacing broken deployments before they poison results.  A
:class:`FaultPlan` is the controlled form of that breakage: a seeded,
declarative schedule of infrastructure faults — host crashes, daemons
killed mid-deployment, corrupted package archives, degraded disks and
NICs, transient allocation exhaustion, truncated monitor output — that
the :class:`~repro.faults.injector.FaultInjector` arms at fixed fault
points inside the cluster, deployment, shell and collection layers.

Determinism is the whole point: whether a fault fires for a given trial
attempt is a pure function of ``(plan seed, spec, trial key, attempt)``
computed from a SHA-256 draw, so the same plan produces a byte-identical
fault schedule on every run, every worker count, and every scheduler
backend — the property the resilience tests lean on when they assert
that a retried chaos campaign stores exactly the rows a fault-free run
stores.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import FaultPlanError

#: Every fault kind the plan language knows, with the fire point that
#: arms it (documentation only; the injector owns the dispatch).
FAULT_KINDS = (
    "host-crash",        # vcluster: allocated host goes dark mid-trial
    "daemon-kill",       # shellvm: kill a live daemon between scripts
    "archive-corrupt",   # deploy: package tarball corrupted pre-run.sh
    "slow-disk",         # vcluster: bulk writes stall on a host
    "slow-nic",          # vcluster: scp transfers stall at an endpoint
    "alloc-exhausted",   # vcluster: allocation transiently refused
    "monitor-truncate",  # monitoring: sysstat file cut mid-sample
)

#: Fires on every attempt of an afflicted trial (never heals).
EVERY_ATTEMPT = 0


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what breaks, where, and how often.

    *target* is a glob matched per kind (host name for ``host-crash`` /
    ``slow-disk`` / ``slow-nic``, daemon basename for ``daemon-kill``,
    archive path for ``archive-corrupt``, sysstat file path for
    ``monitor-truncate``; ``alloc-exhausted`` ignores it).  *rate* is
    the probability that any given trial draws this fault at all;
    *attempts* bounds how many leading attempts of an afflicted trial
    the fault fires on (:data:`EVERY_ATTEMPT` = never heals — the
    persistent-fault form quarantine exists for).  *transient* tells
    the retry policy whether re-running the attempt can help.
    """

    kind: str
    target: str = "*"
    rate: float = 1.0
    attempts: int = 1
    experiment: str = "*"
    transient: bool = True

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(
                f"fault rate must be within [0, 1], got {self.rate}"
            )
        if self.attempts < 0:
            raise FaultPlanError(
                f"fault attempts must be >= 0, got {self.attempts}"
            )

    def to_dict(self):
        return {
            "kind": self.kind, "target": self.target, "rate": self.rate,
            "attempts": self.attempts, "experiment": self.experiment,
            "transient": self.transient,
        }

    @classmethod
    def from_dict(cls, data):
        unknown = set(data) - {"kind", "target", "rate", "attempts",
                               "experiment", "transient"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault spec field(s): {', '.join(sorted(unknown))}"
            )
        if "kind" not in data:
            raise FaultPlanError("fault spec needs a 'kind'")
        return cls(**data)


@dataclass(frozen=True)
class FaultEvent:
    """One armed fault: a spec bound to a trial attempt.

    The injector executes the event at its fire point; the event then
    travels on the raising exception (``error.fault``) so the retry
    layer can classify the failure and blame the right host.
    """

    spec: FaultSpec
    trial_key: tuple
    attempt: int
    #: filled in at fire time: the host the fault actually landed on
    host: str = field(default=None, compare=False)

    @property
    def kind(self):
        return self.spec.kind

    def describe(self):
        where = f" on {self.host}" if self.host else ""
        return (f"{self.kind}({self.spec.target}){where} "
                f"[attempt {self.attempt + 1}]")


def _draw(seed, spec_index, trial_key):
    """Deterministic uniform in [0, 1) for one (spec, trial) pair.

    SHA-256 rather than ``random.Random`` so the draw is identical
    across processes, platforms and PYTHONHASHSEED settings.
    """
    material = repr((seed, spec_index, trial_key)).encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultPlan:
    """A seeded set of :class:`FaultSpec`\\ s with deterministic draws.

    ``draw(trial_key, attempt)`` returns the events armed for that
    attempt; the same ``(seed, specs)`` plan returns byte-identical
    schedules forever, which :meth:`schedule` materializes for audit.
    """

    def __init__(self, specs=(), seed=0):
        self.specs = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in specs
        )
        self.seed = int(seed)

    def __bool__(self):
        return bool(self.specs)

    def __eq__(self, other):
        return (isinstance(other, FaultPlan)
                and self.specs == other.specs and self.seed == other.seed)

    def __hash__(self):
        return hash((self.specs, self.seed))

    def __repr__(self):
        return f"FaultPlan(specs={self.specs!r}, seed={self.seed})"

    def draw(self, trial_key, attempt):
        """The :class:`FaultEvent`\\ s armed for one trial attempt."""
        experiment_name = trial_key[0] if trial_key else ""
        events = []
        for index, spec in enumerate(self.specs):
            if not _glob_match(experiment_name, spec.experiment):
                continue
            if spec.attempts != EVERY_ATTEMPT and attempt >= spec.attempts:
                continue          # the fault has healed for this trial
            if _draw(self.seed, index, trial_key) < spec.rate:
                events.append(FaultEvent(spec=spec, trial_key=trial_key,
                                         attempt=attempt))
        return tuple(events)

    def schedule(self, trial_keys, attempts=1):
        """The full fault schedule over *trial_keys*, as stable text.

        One line per armed event — the byte-identical audit surface the
        determinism tests compare across runs.
        """
        lines = []
        for trial_key in trial_keys:
            for attempt in range(attempts):
                for event in self.draw(trial_key, attempt):
                    lines.append(
                        f"{'/'.join(str(part) for part in trial_key)} "
                        f"attempt={attempt + 1} {event.kind}"
                        f"({event.spec.target})"
                    )
        return "\n".join(lines)

    # -- serialization (CLI --faults files, campaign_meta resume) --------

    def to_json(self, indent=None):
        return json.dumps({
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text, source="<faults>"):
        try:
            data = json.loads(text)
        except ValueError as error:
            raise FaultPlanError(
                f"{source}: not valid JSON: {error}") from error
        if not isinstance(data, dict) or "faults" not in data:
            raise FaultPlanError(
                f"{source}: fault plan JSON needs a 'faults' list "
                f"(and optional 'seed')"
            )
        specs = [FaultSpec.from_dict(item) for item in data["faults"]]
        return cls(specs, seed=data.get("seed", 0))


def _glob_match(value, pattern):
    from fnmatch import fnmatchcase
    return fnmatchcase(value, pattern)
