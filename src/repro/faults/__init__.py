"""Fault plane: deterministic fault injection for the virtual cluster.

See :mod:`repro.faults.plan` for the declarative, seeded
:class:`FaultPlan`, :mod:`repro.faults.injector` for the runtime that
arms it inside the cluster/deploy/shell/collect layers, and
:mod:`repro.faults.retry` for the :class:`RetryPolicy` the execution
layer uses to survive what the plan injects.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    NullInjector,
    as_injector,
)
from repro.faults.plan import (
    EVERY_ATTEMPT,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)
from repro.faults.retry import (
    GAVE_UP,
    NO_RETRY,
    QUARANTINED,
    RETRIED,
    TRANSIENT_ERRORS,
    RetryPolicy,
    as_policy,
)

__all__ = [
    "EVERY_ATTEMPT",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "GAVE_UP",
    "NO_RETRY",
    "NULL_INJECTOR",
    "NullInjector",
    "QUARANTINED",
    "RETRIED",
    "RetryPolicy",
    "TRANSIENT_ERRORS",
    "as_injector",
    "as_policy",
]
