"""The fault injector: executes a plan's events at layer fire points.

Each :class:`~repro.experiments.runner.ExperimentRunner` owns one
injector; before every trial attempt the runner *arms* it with the
plan's deterministic draw for ``(trial key, attempt)``, and the
instrumented layers call :meth:`FaultInjector.fire` at their fault
points:

========================  ==========================================
fire point                armed kinds
========================  ==========================================
``vcluster.allocate``     ``alloc-exhausted`` (raises before taking)
``vcluster.allocated``    ``host-crash``, ``slow-disk``, ``slow-nic``
``deploy.install``        ``archive-corrupt`` (repairable mutation)
``shell.script``          ``daemon-kill`` (first script with a live
                          matching daemon anywhere on the network)
``collect.sysstat``       ``monitor-truncate`` (cuts the file mid-
                          sample before the collector parses it)
========================  ==========================================

Every fired event opens a ``fault`` span on the trial's tracer, so
``repro trace`` shows exactly what was injected where.  Exceptions an
event raises (directly, or downstream — a crashed host failing its
``ssh``) carry the event as ``error.fault`` when the injector raised
them itself; mutation faults surface through the layer's own error
class instead, exactly like organic damage would.

Arming is thread-local, so scheduler workers sharing one injector (the
thread backend's inline path never does, but belt and braces) cannot
cross-arm each other's trials.  The injector carries no picklable
runtime state — process-backend workers rebuild it from the plan.
"""

from __future__ import annotations

import threading
from fnmatch import fnmatchcase

from repro.errors import AllocationError
from repro.obs.tracer import as_tracer

#: Garbage written over a corrupted package archive.
_CORRUPTED_ARCHIVE = "\x00corrupted by fault plan\x00\n"

#: Appended to a truncated sysstat file; two tokens, so the collector's
#: parser rejects it as a malformed sample line (never silently fewer
#: samples, which could change stored metrics instead of failing).
_TRUNCATION_MARKER = "!truncated mid-write\n"


class FaultInjector:
    """Arms and fires one :class:`~repro.faults.plan.FaultPlan`."""

    enabled = True

    def __init__(self, plan, tracer=None):
        self.plan = plan
        self.tracer = as_tracer(tracer)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._repairs = {}        # trial_key -> [undo callables]
        self.fired_events = []    # every event that actually fired

    # -- pickling (process-backend workers rebuild runtime state) --------

    def __getstate__(self):
        return {"plan": self.plan}

    def __setstate__(self, state):
        self.__init__(state["plan"])

    # -- arming ----------------------------------------------------------

    def arm(self, trial_key, attempt):
        """Arm the plan's draw for one trial attempt on this thread."""
        self._local.pending = list(self.plan.draw(trial_key, attempt))
        self._local.trial_key = trial_key
        self._local.fired = []

    def disarm(self):
        """Drop any un-fired events for the current attempt."""
        self._local.pending = []
        self._local.trial_key = None

    def armed(self):
        return list(getattr(self._local, "pending", ()))

    def fired_this_attempt(self):
        """Events that actually fired since the last :meth:`arm` on
        this thread — the retry layer's attribution source."""
        return list(getattr(self._local, "fired", ()))

    def fire(self, point, **context):
        """Run every pending event whose kind listens on *point*.

        Events fire at most once per attempt; an event whose action
        reports "nothing to do here" (a daemon-kill with no live
        matching daemon yet) stays pending for a later fire of the
        same point within the attempt.
        """
        pending = getattr(self._local, "pending", None)
        if not pending:
            return
        for event in list(pending):
            action = _ACTIONS.get((event.kind, point))
            if action is None:
                continue
            fired, raise_after = action(self, event, context)
            if not fired:
                continue
            pending.remove(event)
            self.fired_events.append(event)
            getattr(self._local, "fired", []).append(event)
            with self.tracer.span("fault", kind=event.kind,
                                  target=event.spec.target,
                                  point=point,
                                  attempt=event.attempt + 1,
                                  host=event.host or ""):
                pass
            if raise_after is not None:
                raise_after.fault = event
                raise raise_after

    # -- repairs ---------------------------------------------------------

    def repair(self, trial_key):
        """Undo repairable mutations (corrupted archives) so a retry of
        *trial_key* starts from intact shared state."""
        with self._lock:
            undos = self._repairs.pop(trial_key, [])
        for undo in undos:
            undo()

    def _register_repair(self, trial_key, undo):
        with self._lock:
            self._repairs.setdefault(trial_key, []).append(undo)


# -- per-kind actions -----------------------------------------------------
# Each action returns (fired, exception_to_raise_or_None).

def _act_alloc_exhausted(_injector, event, context):
    cluster = context.get("cluster")
    name = cluster.name if cluster is not None else "?"
    error = AllocationError(
        f"cluster {name!r}: injected transient allocation exhaustion"
    )
    return True, error


def _pick_host(event, hosts):
    """The first allocated server host matching the spec's glob."""
    for host in hosts:
        if fnmatchcase(host.name, event.spec.target):
            return host
    return None


def _act_host_crash(_injector, event, context):
    host = _pick_host(event, context.get("hosts", ()))
    if host is None:
        return False, None
    host.crash(reason=f"injected host-crash (attempt {event.attempt + 1})")
    object.__setattr__(event, "host", host.name)
    return True, None


def _act_slow_disk(_injector, event, context):
    host = _pick_host(event, context.get("hosts", ()))
    if host is None:
        return False, None
    host.degrade("disk")
    object.__setattr__(event, "host", host.name)
    return True, None


def _act_slow_nic(_injector, event, context):
    host = _pick_host(event, context.get("hosts", ()))
    if host is None:
        return False, None
    host.degrade("nic")
    object.__setattr__(event, "host", host.name)
    return True, None


def _act_archive_corrupt(injector, event, context):
    control = context["control"]
    victims = [path for path in control.fs.walk_files("/packages")
               if fnmatchcase(path, event.spec.target)
               or fnmatchcase(path.rsplit("/", 1)[-1], event.spec.target)]
    if not victims:
        return False, None
    path = victims[0]
    original = control.fs.read(path)

    def undo():
        control.fs.write(path, original)

    injector._register_repair(event.trial_key, undo)
    control.fs.write(path, _CORRUPTED_ARCHIVE)
    object.__setattr__(event, "host", control.name)
    return True, None


def _act_daemon_kill(_injector, event, context):
    network = context["network"]
    for host in network.hosts():
        if getattr(host, "crashed", False):
            continue
        killed = host.kill_by_name(event.spec.target)
        if killed:
            object.__setattr__(event, "host", host.name)
            return True, None
    return False, None


def _act_monitor_truncate(_injector, event, context):
    control = context["control"]
    path = context["path"]
    if not (fnmatchcase(path, event.spec.target)
            or fnmatchcase(path.rsplit("/", 1)[-1], event.spec.target)):
        return False, None
    content = control.fs.read(path)
    keep = content[:len(content) // 2]
    # Cut on a line boundary (keeping at least the header line) so the
    # damage is exactly one malformed marker line, not a glued-together
    # half-sample whose failure mode would depend on file contents.
    cut = max(keep.rfind("\n") + 1, content.find("\n") + 1)
    control.fs.write(path, content[:cut] + _TRUNCATION_MARKER)
    object.__setattr__(event, "host", control.name)
    return True, None


_ACTIONS = {
    ("alloc-exhausted", "vcluster.allocate"): _act_alloc_exhausted,
    ("host-crash", "vcluster.allocated"): _act_host_crash,
    ("slow-disk", "vcluster.allocated"): _act_slow_disk,
    ("slow-nic", "vcluster.allocated"): _act_slow_nic,
    ("archive-corrupt", "deploy.install"): _act_archive_corrupt,
    ("daemon-kill", "shell.script"): _act_daemon_kill,
    ("monitor-truncate", "collect.sysstat"): _act_monitor_truncate,
}


class NullInjector:
    """The no-fault injector: every call is a cheap no-op."""

    enabled = False
    fired_events = ()

    def arm(self, _trial_key, _attempt):
        return None

    def disarm(self):
        return None

    def armed(self):
        return []

    def fired_this_attempt(self):
        return []

    def fire(self, _point, **_context):
        return None

    def repair(self, _trial_key):
        return None


NULL_INJECTOR = NullInjector()


def as_injector(faults, tracer=None):
    """Normalize a ``faults=`` argument: None -> null injector, a
    FaultPlan -> a fresh injector over it, an injector -> itself."""
    if faults is None:
        return NULL_INJECTOR
    if isinstance(faults, (FaultInjector, NullInjector)):
        return faults
    return FaultInjector(faults, tracer=tracer)
