"""Ablation studies of the design choices DESIGN.md calls out.

Three questions the reproduction's shape depends on:

1. **RAIDb-1 write replication** — how far does DB scale-out fall below
   linear because writes execute on every replica?  (This is the
   mechanism behind the paper's 1700 -> ~2900 crossover.)
2. **Observation vs analytical model** — where does exact MVA track the
   simulated observations and where does it diverge?  (The paper's core
   argument for the observational approach, Sections I/VI.)
3. **Balancer policy** — does mod_jk-style round-robin cost anything
   against least-connections at the app tier?
"""

from __future__ import annotations

from repro.deploy import DeploymentEngine
from repro.deprecation import warn_deprecated
from repro.experiments.sweep import build_experiment
from repro.generator import HostPlan, Mulini
from repro.monitoring import attach_monitors, summarize_records
from repro.sim import NTierSimulation, mva, solve
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import TrialPhases
from repro.spec.topology import Topology
from repro.vcluster import VirtualCluster
from repro.workloads.calibration import RUBIS


def deployed_rubis_system(apps, dbs, users, write_ratio=0.15,
                          trial=(14.0, 25.0, 4.0), seed=42,
                          platform="emulab", app_server=None):
    """Build a real DeployedSystem through the full pipeline.

    Generates, deploys and verifies a fresh RUBiS topology on its own
    virtual cluster — the same path the experiment runner takes — and
    hands back the deployed system for ad-hoc simulation (ablations).
    """
    topology = Topology(1, apps, dbs)
    experiment, _tbl = build_experiment(
        name="ablation", benchmark="rubis", platform=platform,
        topologies=[topology], workloads=(users,),
        write_ratios=(write_ratio,), trial=TrialPhases(*trial), seed=seed,
        app_server=app_server,
    )
    model = load_resource_model(render_resource_mof(
        "rubis", platform, app_server=app_server,
    ))
    # Size the pool so the default node type covers every server even
    # on mixed platforms (Emulab reserves ~a quarter as low-end nodes).
    cluster = VirtualCluster(platform,
                             node_count=2 * topology.total_servers() + 6)
    allocation = cluster.allocate(topology)
    plan = HostPlan.from_allocation(allocation)
    bundle = Mulini(model).generate(experiment, topology, users,
                                    write_ratio, host_plan=plan)
    deployment = DeploymentEngine(cluster=cluster).deploy(
        bundle, allocation, experiment=experiment, topology=topology,
        workload=users, write_ratio=write_ratio,
    )
    return deployment.system


def _simulate(system, balancer_policy="rr"):
    """Run a system's trial; returns (TrialMetrics, harness)."""
    harness = NTierSimulation(system, balancer_policy=balancer_policy)
    emitters = attach_monitors(harness)
    records = harness.run()
    for emitter in emitters:
        emitter.stop()
    driver = system.driver
    window = (driver.warmup, driver.warmup + driver.run)
    return summarize_records(records, window), harness


def raidb_scaling(system_factory, workload, replica_counts=(1, 2, 3),
                  write_ratio=0.15):
    """Measured vs idealized DB scale-out at *workload* users.

    *system_factory(dbs, users, write_ratio)* builds a DeployedSystem;
    returns rows with measured throughput, the RAIDb-1 analytical
    capacity and the idealized (linear, read-only-style) capacity.
    """
    single_capacity = 1.0 / RUBIS.db_backend_mean(write_ratio, 1)
    rows = []
    for replicas in replica_counts:
        system = system_factory(replicas, workload, write_ratio)
        metrics, _harness = _simulate(system)
        raidb_capacity = 1.0 / RUBIS.db_backend_mean(write_ratio, replicas)
        rows.append({
            "replicas": replicas,
            "throughput": metrics.throughput,
            "mean_response_s": metrics.mean_response_s,
            "error_ratio": metrics.error_ratio,
            "raidb_capacity": raidb_capacity,
            "linear_capacity": replicas * single_capacity,
        })
    return rows


def mva_vs_observation(system_factory, workloads, write_ratio=0.15,
                       db_node_speed=None):
    """Model tiers against simulated observation across *workloads*.

    Both analytical tiers — exact MVA and the Schweitzer AMVA fluid
    solver — run through the :func:`repro.sim.solve` dispatcher over
    the same calibrated demands the simulator draws from.  Rows carry
    all three predictions plus per-tier (web/app/db) residence deltas
    between the fluid approximation and the exact recursion, so the
    bench shows both where the product-form models track the
    observations (below the knee) and how far the fast tier strays
    from the exact one at each station.

    ``db_node_speed`` is deprecated: scale the db station's demand in
    the calibration (or pass a pre-scaled station sequence to
    :func:`repro.sim.solve`) instead of bending it here.
    """
    if db_node_speed is not None:
        warn_deprecated("mva_vs_observation", "db_node_speed=",
                        "scale the calibrated db demand instead")
    else:
        db_node_speed = 1.0
    stations = [
        mva.MvaStation("web", RUBIS.web_s),
        mva.MvaStation("app", RUBIS.app_mean(write_ratio)),
        mva.MvaStation("db",
                       RUBIS.db_mean(write_ratio) / db_node_speed),
    ]
    rows = []
    for users in workloads:
        system = system_factory(users)
        metrics, _harness = _simulate(system)
        exact = solve(stations, fidelity="mva", users=users,
                      think_time=RUBIS.think_time_s)
        fluid = solve(stations, fidelity="analytic", users=users,
                      think_time=RUBIS.think_time_s)
        row = {
            "users": users,
            "observed_rt_ms": metrics.mean_response_s * 1000,
            "mva_rt_ms": exact.response_time * 1000,
            "analytic_rt_ms": fluid.response_time * 1000,
            "observed_x": metrics.throughput,
            "mva_x": exact.throughput,
            "analytic_x": fluid.throughput,
            "observed_errors": metrics.error_ratio,
        }
        for station in stations:
            delta = (fluid.station_residence[station.name]
                     - exact.station_residence[station.name])
            row[f"{station.name}_delta_ms"] = delta * 1000
        rows.append(row)
    return rows


def balancer_policies(system_factory, workloads, policies=("rr", "least")):
    """Round-robin vs least-connections at identical workloads."""
    rows = []
    for users in workloads:
        row = {"users": users}
        for policy in policies:
            system = system_factory(users)
            metrics, _harness = _simulate(system, balancer_policy=policy)
            row[f"{policy}_rt_ms"] = metrics.mean_response_s * 1000
            row[f"{policy}_x"] = metrics.throughput
        rows.append(row)
    return rows


def disk_sensitivity(users=250, write_ratio=0.5,
                     platforms=("rohan", "warp")):
    """Disk-spindle sensitivity across hardware platforms (Table 2).

    Same workload on Rohan (10000 RPM) and Warp (5400 RPM): the slower
    spindle runs proportionally busier, but at the calibrated demands
    the database CPU remains the bottleneck — validating the
    calibration's CPU-located knees against the disk substrate.
    """
    rows = []
    for platform in platforms:
        system = deployed_rubis_system(apps=2, dbs=1, users=users,
                                       write_ratio=write_ratio,
                                       platform=platform)
        metrics, harness = _simulate(system)
        backend = harness.db_backends[0]
        elapsed = harness.sim.now
        rows.append({
            "platform": platform,
            "disk_rpm": backend.disk.speed * 10000,
            "disk_util": backend.disk.area_reading()[1] / elapsed,
            "db_cpu_util": backend.cpu.area_reading()[1] / elapsed,
            "mean_response_s": metrics.mean_response_s,
            "throughput": metrics.throughput,
        })
    return rows


def per_station_balance(harness):
    """Per-app-station completed counts — fairness of the balancer."""
    return {station.name: station.completed
            for station in harness.app_balancer.stations}


def render_rows(title, rows, columns, formats=None):
    """Generic ASCII table for ablation rows."""
    formats = formats or {}
    header = "".join(f"{c:>16}" for c in columns)
    lines = [title, header]
    for row in rows:
        rendered = ""
        for column in columns:
            value = row[column]
            fmt = formats.get(column, "{:.2f}"
                              if isinstance(value, float) else "{}")
            rendered += f"{fmt.format(value):>16}"
        lines.append(rendered)
    return "\n".join(lines)
