"""Experiments: trial protocol, end-to-end runner, figure definitions."""

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweep import build_experiment
from repro.experiments.trial import (
    COMPLETED,
    DNF,
    TrialResult,
    measurement_window,
)

__all__ = [
    "figures",
    "ExperimentRunner",
    "build_experiment",
    "COMPLETED",
    "DNF",
    "TrialResult",
    "measurement_window",
]
