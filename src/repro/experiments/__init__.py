"""Experiments: trial protocol, runner, scheduler, figure definitions."""

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scheduler import (
    TrialScheduler,
    TrialTask,
    enumerate_tasks,
)
from repro.experiments.sweep import build_experiment
from repro.experiments.trial import (
    COMPLETED,
    DNF,
    TrialResult,
    measurement_window,
)

__all__ = [
    "figures",
    "ExperimentRunner",
    "TrialScheduler",
    "TrialTask",
    "enumerate_tasks",
    "build_experiment",
    "COMPLETED",
    "DNF",
    "TrialResult",
    "measurement_window",
]
