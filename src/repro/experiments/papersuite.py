"""Run every paper reproduction in one call.

``reproduce_all`` is the top-level driver behind ``python -m repro
figure --id all``: it regenerates every figure and table (and the
supplemental sets), writes the renderings to a directory, optionally
stores all trials in one observation database, and returns a summary.
"""

from __future__ import annotations

import pathlib

from repro.experiments import figures
from repro.sim import DES

#: Execution order: cheap catalog/generation tables first, then the
#: baselines, then the big scale-out sweeps.
SUITE = (
    ("table1", figures.table1, False),
    ("table2", figures.table2, False),
    ("table4", figures.table4, False),
    ("table5", figures.table5, False),
    ("table3", figures.table3, False),
    ("figure1", figures.figure1, True),
    ("figure2", figures.figure2, True),
    ("figure3", figures.figure3, True),
    ("figure4", figures.figure4, True),
    ("table6", figures.table6, True),
    ("table7", figures.table7, True),
    ("figure5", figures.figure5, True),
    ("figure6", figures.figure6, True),
    ("figure7", figures.figure7, True),
    ("figure8", figures.figure8, True),
    ("supplemental_rubbos_scaleout",
     figures.supplemental_rubbos_scaleout, True),
    ("supplemental_weblogic_scaleout",
     figures.supplemental_weblogic_scaleout, True),
)

FIGURE_IDS = tuple(name for name, _fn, _scaled in SUITE)


def _suite_kwargs(scaled, scale, jobs, tracer=None, fidelity=DES):
    """Arguments for one suite entry: only trial-running (scaled)
    reproductions take the scale/jobs/tracer/fidelity knobs."""
    kwargs = {}
    if scaled:
        if scale is not None:
            kwargs["scale"] = scale
        if jobs != 1:
            kwargs["jobs"] = jobs
        if tracer is not None:
            kwargs["tracer"] = tracer
        if fidelity != DES:
            kwargs["fidelity"] = fidelity
    return kwargs


def reproduce(figure_id, scale=None, jobs=1, tracer=None, fidelity=DES):
    """Run one reproduction by id; returns its FigureResult.

    ``jobs=N`` runs the figure's sweep on N scheduler workers; the
    derived data is identical to a sequential run.  A *tracer* records
    every trial's lifecycle spans (trial-running reproductions only).
    *fidelity* selects the solver tier for the figure's trials
    (``"des"`` or ``"analytic"``; catalog tables ignore it).
    """
    for name, fn, scaled in SUITE:
        if name == figure_id:
            return fn(**_suite_kwargs(scaled, scale, jobs, tracer,
                                      fidelity))
    raise KeyError(
        f"unknown figure id {figure_id!r}; known: {', '.join(FIGURE_IDS)}"
    )


def reproduce_all(output_dir=None, scale=None, database=None,
                  on_progress=None, only=None, jobs=1, tracer=None,
                  fidelity=DES):
    """Run the full suite; returns {figure_id: FigureResult}.

    *output_dir* receives one ``<id>.txt`` per reproduction; *database*
    (a ResultsDatabase) collects every trial; *only* restricts to a
    subset of ids; *jobs* parallelizes each reproduction's sweep
    without changing its results.
    """
    selected = [entry for entry in SUITE
                if only is None or entry[0] in only]
    results = {}
    for name, fn, scaled in selected:
        if on_progress is not None:
            on_progress(f"running {name} ...")
        figure = fn(**_suite_kwargs(scaled, scale, jobs, tracer,
                                    fidelity))
        results[name] = figure
        if output_dir is not None:
            out = pathlib.Path(output_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{figure.figure_id}.txt").write_text(
                figure.rendered + "\n")
        if database is not None and figure.results:
            figure.store(database)
        if on_progress is not None:
            trials = len(figure.results)
            on_progress(f"  {name} done ({trials} trials)")
    return results
