"""Trial protocol and results (Section III.B).

"Each trial consists of a warm-up period, a run period, and a cool-down
period.  The warm-up period brings system resource utilization to a
stable state.  Then measurements are taken during the run period."
A :class:`TrialResult` carries everything one trial observed, including
the management-scale accounting its bundle contributed to Table 3 —
and, since the fault plane landed, how hard the trial was to obtain:
every failed attempt rides along as an :class:`AttemptFailure` and
lands in the database's ``failures`` table, because the paper treats
experiments that "could not complete" as observations, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

COMPLETED = "completed"
DNF = "dnf"          # did not finish: exceeded the error budget (Table 7)


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt of a trial: what broke, where, what happened.

    *attempt* is 1-based; *phase* is the lifecycle phase that raised;
    *resolution* says what the runner did next (``retried``,
    ``gave-up``, or ``quarantined`` for the synthetic record a host
    quarantine emits).  *fault_kind*/*host* are filled when the failure
    traces back to an injected fault event.
    """

    attempt: int
    phase: str
    cause: str
    error_type: str
    transient: bool
    resolution: str
    fault_kind: str = None
    host: str = None
    backoff_s: float = 0.0

    def describe(self):
        kind = f" [{self.fault_kind}]" if self.fault_kind else ""
        where = f" on {self.host}" if self.host else ""
        return (f"attempt {self.attempt} failed in {self.phase}{kind}"
                f"{where}: {self.cause} -> {self.resolution}")


@dataclass
class TrialResult:
    """One experiment point's observation."""

    experiment_name: str
    benchmark: str
    platform: str
    topology_label: str
    workload: int
    write_ratio: float
    seed: int
    status: str
    metrics: object                      # monitoring.TrialMetrics
    host_cpu: dict = field(default_factory=dict)     # host -> mean CPU %
    tier_of_host: dict = field(default_factory=dict) # host -> tier
    #: per-interaction breakdown: state -> {count, errors, mean_response_s}
    per_state: dict = field(default_factory=dict)
    collected_bytes: int = 0
    script_lines: int = 0
    config_lines: int = 0
    generated_files: int = 0
    machine_count: int = 0
    #: lifecycle tracing spans (obs.tracer.SpanRecord), populated when
    #: the producing runner traced; rides along so spans survive
    #: process-pool workers and land in the database's spans table.
    spans: list = field(default_factory=list)
    #: how many attempts it took to obtain this result (1 = first try)
    attempts: int = 1
    #: AttemptFailure records for every attempt that did not produce
    #: this result; ride along like spans and land in the database's
    #: ``failures`` table.
    failures: list = field(default_factory=list)
    #: which solver tier produced this observation ("des" per-request
    #: simulation or the "analytic" fluid fast path); part of the
    #: trial's identity so a tiered exploration can hold both.
    fidelity: str = "des"
    #: scenario-matrix entry this trial belongs to ("" for plain
    #: sweeps); part of the trial's identity so one database can hold
    #: the same operating point under different consolidation/arrival
    #: regimes side by side.
    scenario: str = ""

    @property
    def completed(self):
        return self.status == COMPLETED

    @property
    def retried(self):
        return self.attempts > 1

    def response_time_ms(self):
        return self.metrics.mean_response_s * 1000.0

    def throughput(self):
        return self.metrics.throughput

    def tier_cpu(self, tier):
        """Mean CPU utilization (%) across the hosts of *tier*."""
        values = [cpu for host, cpu in self.host_cpu.items()
                  if self.tier_of_host.get(host) == tier]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def bottleneck_tier(self):
        """The tier with the highest mean CPU utilization."""
        tiers = {self.tier_of_host.get(h) for h in self.host_cpu}
        tiers.discard(None)
        if not tiers:
            return None
        return max(tiers, key=self.tier_cpu)

    def key(self):
        """(topology, workload, write_ratio) — a sweep point's identity."""
        return (self.topology_label, self.workload,
                round(self.write_ratio, 6))

    def heaviest_interactions(self, limit=5):
        """The slowest interaction states by mean response time."""
        ranked = sorted(
            ((state, stats) for state, stats in self.per_state.items()
             if stats["count"] > 0),
            key=lambda item: item[1]["mean_response_s"], reverse=True,
        )
        return ranked[:limit]


def measurement_window(trial_phases):
    """The run-period window measurements are taken in (Section III.B)."""
    return (trial_phases.warmup, trial_phases.warmup + trial_phases.run)


def empty_metrics():
    """All-zero TrialMetrics for a DNF row whose attempts never got a
    measurement window (the paper's truly-missing squares)."""
    from repro.monitoring.metrics import TrialMetrics

    return TrialMetrics(completed=0, errors=0, timeouts=0, rejections=0,
                        duration_s=0.0, throughput=0.0,
                        mean_response_s=0.0, p50_response_s=0.0,
                        p90_response_s=0.0, p99_response_s=0.0)


def failed_result(experiment, topology, workload, write_ratio, seed,
                  failures, attempts, partial=None, machine_count=0):
    """The enriched DNF row for a trial whose retry budget ran out.

    *partial* carries measurements salvaged from a failed attempt
    (:attr:`~repro.errors.TrialFailed.partial`) so an attempt that died
    *after* its run window still contributes its observations, exactly
    like the paper's could-not-complete cells contribute theirs.
    """
    return TrialResult(
        experiment_name=experiment.name,
        benchmark=experiment.benchmark,
        platform=experiment.platform,
        topology_label=topology.label(),
        workload=workload,
        write_ratio=write_ratio,
        seed=seed,
        status=DNF,
        metrics=partial if partial is not None else empty_metrics(),
        machine_count=machine_count,
        attempts=attempts,
        failures=list(failures),
        scenario=getattr(experiment, "scenario", ""),
    )
