"""Trial protocol and results (Section III.B).

"Each trial consists of a warm-up period, a run period, and a cool-down
period.  The warm-up period brings system resource utilization to a
stable state.  Then measurements are taken during the run period."
A :class:`TrialResult` carries everything one trial observed, including
the management-scale accounting its bundle contributed to Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

COMPLETED = "completed"
DNF = "dnf"          # did not finish: exceeded the error budget (Table 7)


@dataclass
class TrialResult:
    """One experiment point's observation."""

    experiment_name: str
    benchmark: str
    platform: str
    topology_label: str
    workload: int
    write_ratio: float
    seed: int
    status: str
    metrics: object                      # monitoring.TrialMetrics
    host_cpu: dict = field(default_factory=dict)     # host -> mean CPU %
    tier_of_host: dict = field(default_factory=dict) # host -> tier
    #: per-interaction breakdown: state -> {count, errors, mean_response_s}
    per_state: dict = field(default_factory=dict)
    collected_bytes: int = 0
    script_lines: int = 0
    config_lines: int = 0
    generated_files: int = 0
    machine_count: int = 0
    #: lifecycle tracing spans (obs.tracer.SpanRecord), populated when
    #: the producing runner traced; rides along so spans survive
    #: process-pool workers and land in the database's spans table.
    spans: list = field(default_factory=list)

    @property
    def completed(self):
        return self.status == COMPLETED

    def response_time_ms(self):
        return self.metrics.mean_response_s * 1000.0

    def throughput(self):
        return self.metrics.throughput

    def tier_cpu(self, tier):
        """Mean CPU utilization (%) across the hosts of *tier*."""
        values = [cpu for host, cpu in self.host_cpu.items()
                  if self.tier_of_host.get(host) == tier]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def bottleneck_tier(self):
        """The tier with the highest mean CPU utilization."""
        tiers = {self.tier_of_host.get(h) for h in self.host_cpu}
        tiers.discard(None)
        if not tiers:
            return None
        return max(tiers, key=self.tier_cpu)

    def key(self):
        """(topology, workload, write_ratio) — a sweep point's identity."""
        return (self.topology_label, self.workload,
                round(self.write_ratio, 6))

    def heaviest_interactions(self, limit=5):
        """The slowest interaction states by mean response time."""
        ranked = sorted(
            ((state, stats) for state, stats in self.per_state.items()
             if stats["count"] > 0),
            key=lambda item: item[1]["mean_response_s"], reverse=True,
        )
        return ranked[:limit]


def measurement_window(trial_phases):
    """The run-period window measurements are taken in (Section III.B)."""
    return (trial_phases.warmup, trial_phases.warmup + trial_phases.run)
