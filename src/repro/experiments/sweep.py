"""Programmatic sweep construction (always through the TBL front end).

The paper's workflow is "modify Mulini's input specification once"
(III.C); accordingly, sweeps built here are rendered to TBL text and
parsed back, so the language front end participates in every run and
the TBL a run used can always be printed for the record.
"""

from __future__ import annotations

from repro.spec.tbl import (
    MonitorSpec,
    ServiceLevelObjective,
    TrialPhases,
    parse,
    render_tbl,
)


def build_experiment(name, benchmark, platform, topologies, workloads,
                     write_ratios=(0.15,), app_server=None,
                     db_node_type=None, trial=None, scale=1.0,
                     think_time=7.0, timeout=8.0, seed=42, repetitions=1,
                     slo=None, monitor=None, min_warmup=14.0):
    """Build one ExperimentDef via a TBL render/parse round trip.

    *scale* shrinks the trial phases uniformly — the knob the benchmark
    harness uses to trade run length for statistical smoothness while
    keeping the full paper-scale sweep available at ``scale=1.0``.
    *min_warmup* floors the scaled warm-up: the warm-up must cover at
    least ~2 mean think times or the measurement window catches the
    client ramp instead of steady state (Section III.B's purpose for
    the warm-up period).
    """
    if trial is None:
        trial = TrialPhases.default_for(benchmark)
    if scale != 1.0:
        trial = trial.scaled(scale)
    if trial.warmup < min_warmup:
        trial = TrialPhases(min_warmup, trial.run, trial.cooldown)
    experiment = dict(
        name=name,
        topologies=tuple(topologies),
        workloads=tuple(workloads),
        write_ratios=tuple(write_ratios),
        trial=trial,
        think_time=think_time,
        timeout=timeout,
        seed=seed,
        repetitions=repetitions,
        slo=slo or ServiceLevelObjective(),
        monitor=monitor or MonitorSpec(),
        db_node_type=db_node_type,
    )
    text = render_tbl(benchmark, platform, [experiment],
                      app_server=app_server)
    spec = parse(text, source=f"<sweep:{name}>")
    return spec.experiment(name), text
