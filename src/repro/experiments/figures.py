"""Declarative reproductions of every figure and table in the paper.

Each ``figure*``/``table*`` function builds the corresponding sweep (via
TBL), runs it end to end on a virtual cluster, and returns a
:class:`FigureResult` with the derived data and an ASCII rendering of
the same rows/series the paper reports.  ``scale`` shrinks trial phases
(the paper's 60/300/60 s RUBiS trials at ``scale=1.0``); the workload
strides default to bench-friendly values and widen to the paper's grids
by argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweep import build_experiment
from repro.generator import Mulini
from repro.results import analysis, report
from repro.sim import DES
from repro.spec.mof import load_resource_model, render_resource_mof
from repro.spec.tbl import expand_range
from repro.spec.topology import Topology, topology_grid
from repro.vcluster import VirtualCluster

#: Default trial-phase scale for the benchmark harness: 10% of the
#: paper's periods (6 s warm-up / 30 s run / 6 s cool-down for RUBiS).
BENCH_SCALE = 0.1


@dataclass
class FigureResult:
    """One reproduced figure/table: data, rendering and raw trials."""

    figure_id: str
    title: str
    data: object
    rendered: str
    results: list = field(default_factory=list)
    tbl_source: str = ""

    def store(self, database, replace=True):
        for result in self.results:
            database.insert(result, replace=replace)
        return database


def make_cluster(platform, node_count=36):
    return VirtualCluster(platform, node_count=node_count)


def make_runner(platform, benchmark, app_server=None, db_node_type=None,
                cluster=None, node_count=36, tracer=None):
    node_types = {"db": db_node_type} if db_node_type else None
    model = load_resource_model(render_resource_mof(
        benchmark, platform, app_server=app_server, node_types=node_types,
    ))
    cluster = cluster or make_cluster(platform, node_count)
    return ExperimentRunner(cluster=cluster, resource_model=model,
                            tracer=tracer)


def _run(figure_id, title, runner, experiment, tbl):
    results = runner.run_experiment(experiment)
    return figure_id, title, results, tbl


# ---------------------------------------------------------------------------
# Figures 1 and 2: RUBiS on JOnAS baseline (Emulab, 1-1-1, slow DB node).
# ---------------------------------------------------------------------------

def run_rubis_jonas_baseline(scale=BENCH_SCALE, workload_step=50,
                             ratio_step=0.1, cluster=None, seed=42,
                             jobs=1, tracer=None, fidelity=DES):
    """The Figure 1/2 sweep: 50..250 users x 0..90% writes (IV.A)."""
    experiment, tbl = build_experiment(
        name="rubis-jonas-baseline", benchmark="rubis", platform="emulab",
        topologies=[Topology(1, 1, 1)],
        workloads=expand_range(50, 250, workload_step),
        write_ratios=expand_range(0.0, 0.9, ratio_step),
        db_node_type="emulab_low",     # the deliberately slow DB host
        scale=scale, seed=seed,
    )
    runner = make_runner("emulab", "rubis", db_node_type="emulab-low",
                         cluster=cluster, node_count=12, tracer=tracer)
    return runner.run_experiment(experiment, jobs=jobs,
                                 fidelity=fidelity), tbl


def figure1(scale=BENCH_SCALE, workload_step=50, ratio_step=0.1,
            results=None, tbl="", jobs=1, tracer=None, fidelity=DES):
    """Figure 1: RUBiS on JOnAS response-time surface."""
    if results is None:
        results, tbl = run_rubis_jonas_baseline(scale, workload_step,
                                                ratio_step, jobs=jobs,
                                                tracer=tracer,
                                                fidelity=fidelity)
    surface = analysis.response_surface(results, "1-1-1", value="response")
    rendered = report.render_surface(
        "Figure 1. RUBiS on JOnAS response time (ms), 1-1-1 on Emulab",
        surface,
    )
    return FigureResult("figure1", "RUBiS on JOnAS response time",
                        surface, rendered, results, tbl)


def figure2(scale=BENCH_SCALE, workload_step=50, ratio_step=0.1,
            results=None, tbl="", jobs=1, tracer=None, fidelity=DES):
    """Figure 2: RUBiS on JOnAS application-server CPU utilization."""
    if results is None:
        results, tbl = run_rubis_jonas_baseline(scale, workload_step,
                                                ratio_step, jobs=jobs,
                                                tracer=tracer,
                                                fidelity=fidelity)
    surface = analysis.response_surface(results, "1-1-1", value="app_cpu")
    rendered = report.render_surface(
        "Figure 2. RUBiS on JOnAS app-server CPU utilization (%), 1-1-1",
        surface, y_format="{:.0f}",
    )
    return FigureResult("figure2", "RUBiS on JOnAS app-server CPU",
                        surface, rendered, results, tbl)


# ---------------------------------------------------------------------------
# Figure 3: RUBiS on Weblogic baseline (Warp, 1-1-1).
# ---------------------------------------------------------------------------

def figure3(scale=BENCH_SCALE, workload_step=100, ratio_step=0.1,
            cluster=None, seed=42, jobs=1, tracer=None, fidelity=DES):
    """Figure 3: Weblogic replaces JOnAS; 100..600 users (IV.B)."""
    experiment, tbl = build_experiment(
        name="rubis-weblogic-baseline", benchmark="rubis", platform="warp",
        topologies=[Topology(1, 1, 1)],
        workloads=expand_range(100, 600, workload_step),
        write_ratios=expand_range(0.0, 0.9, ratio_step),
        app_server="weblogic", scale=scale, seed=seed,
    )
    runner = make_runner("warp", "rubis", app_server="weblogic",
                         cluster=cluster, node_count=12, tracer=tracer)
    results = runner.run_experiment(experiment, jobs=jobs,
                                    fidelity=fidelity)
    surface = analysis.response_surface(results, "1-1-1", value="response")
    rendered = report.render_surface(
        "Figure 3. RUBiS on Weblogic response time (ms), 1-1-1 on Warp",
        surface,
    )
    return FigureResult("figure3", "RUBiS on Weblogic response time",
                        surface, rendered, results, tbl)


# ---------------------------------------------------------------------------
# Figure 4: RUBBoS baseline (Emulab, 1-1-1, two mixes).
# ---------------------------------------------------------------------------

def figure4(scale=BENCH_SCALE, workload_step=500, cluster=None, seed=42,
            jobs=1, tracer=None, fidelity=DES):
    """Figure 4: RUBBoS 100% read vs 85/15, 500..5000 users (IV.C)."""
    experiment, tbl = build_experiment(
        name="rubbos-baseline", benchmark="rubbos", platform="emulab",
        topologies=[Topology(1, 1, 1)],
        workloads=expand_range(500, 5000, workload_step),
        write_ratios=(0.0, 0.15),
        scale=scale, seed=seed,
    )
    runner = make_runner("emulab", "rubbos", cluster=cluster,
                         node_count=12, tracer=tracer)
    results = runner.run_experiment(experiment, jobs=jobs,
                                    fidelity=fidelity)
    readonly = analysis.response_time_series(results, "1-1-1",
                                             write_ratio=0.0)
    mixed = analysis.response_time_series(results, "1-1-1",
                                          write_ratio=0.15)
    data = {"100% read": readonly, "85% read / 15% write": mixed}
    rendered = report.render_multi_series(
        "Figure 4. RUBBoS baseline response time (ms), 1-1-1 on Emulab",
        data,
    )
    return FigureResult("figure4", "RUBBoS baseline response time",
                        data, rendered, results, tbl)


# ---------------------------------------------------------------------------
# Figures 5 and 6: RUBiS on JOnAS scale-out (Emulab, wr = 15%).
# ---------------------------------------------------------------------------

def _scaleout(name, app_range, db_range, workloads, scale, cluster, seed,
              jobs=1, tracer=None, fidelity=DES):
    experiment, tbl = build_experiment(
        name=name, benchmark="rubis", platform="emulab",
        topologies=list(topology_grid(1, app_range, db_range)),
        workloads=workloads, write_ratios=(0.15,),
        scale=scale, seed=seed,
    )
    runner = make_runner("emulab", "rubis", cluster=cluster, node_count=36,
                         tracer=tracer)
    return runner.run_experiment(experiment, jobs=jobs,
                                 fidelity=fidelity), tbl


def figure5(scale=BENCH_SCALE, workload_step=300, max_workload=2100,
            cluster=None, seed=42, jobs=1, tracer=None, fidelity=DES):
    """Figure 5: scale-out response time, 2-8 app x 1-3 db servers."""
    results, tbl = _scaleout(
        "rubis-scaleout-2to8", range(2, 9), range(1, 4),
        expand_range(300, max_workload, workload_step), scale, cluster,
        seed, jobs=jobs, tracer=tracer, fidelity=fidelity,
    )
    data = {
        topology: analysis.response_time_series(results, topology)
        for topology in sorted({r.topology_label for r in results})
    }
    rendered = report.render_multi_series(
        "Figure 5. RUBiS on JOnAS scale-out response time (ms), "
        "2-8 app servers x 1-3 DB servers, wr=15%",
        data,
    )
    return FigureResult("figure5", "RUBiS scale-out RT (2-8 app)",
                        data, rendered, results, tbl)


def figure6(scale=BENCH_SCALE, workload_step=400, cluster=None, seed=42,
            jobs=1, tracer=None, fidelity=DES):
    """Figure 6: scale-out response time, 8-12 app x 1-3 db servers."""
    results, tbl = _scaleout(
        "rubis-scaleout-8to12", range(8, 13), range(1, 4),
        expand_range(1700, 2900, workload_step), scale, cluster, seed,
        jobs=jobs, tracer=tracer, fidelity=fidelity,
    )
    data = {
        topology: analysis.response_time_series(results, topology)
        for topology in sorted({r.topology_label for r in results})
    }
    rendered = report.render_multi_series(
        "Figure 6. RUBiS on JOnAS scale-out response time (ms), "
        "8-12 app servers x 1-3 DB servers, wr=15%",
        data,
    )
    return FigureResult("figure6", "RUBiS scale-out RT (8-12 app)",
                        data, rendered, results, tbl)


# ---------------------------------------------------------------------------
# Figures 7 and 8: database-tier scale-out detail.
# ---------------------------------------------------------------------------

def run_db_scaleout(scale=BENCH_SCALE, workload_step=300, cluster=None,
                    seed=42, jobs=1, tracer=None, fidelity=DES):
    """The Figure 7/8 sweep: the five configurations the paper plots."""
    topologies = [Topology(1, 8, 1), Topology(1, 8, 2), Topology(1, 8, 3),
                  Topology(1, 12, 2), Topology(1, 12, 3)]
    experiment, tbl = build_experiment(
        name="rubis-db-scaleout", benchmark="rubis", platform="emulab",
        topologies=topologies,
        workloads=expand_range(1100, 2900, workload_step),
        write_ratios=(0.15,), scale=scale, seed=seed,
    )
    runner = make_runner("emulab", "rubis", cluster=cluster, node_count=36,
                         tracer=tracer)
    return runner.run_experiment(experiment, jobs=jobs,
                                 fidelity=fidelity), tbl


def figure7(scale=BENCH_SCALE, workload_step=300, results=None, tbl="",
            cluster=None, seed=42, jobs=1, tracer=None, fidelity=DES):
    """Figure 7: response-time differences between DB configurations."""
    if results is None:
        results, tbl = run_db_scaleout(scale, workload_step, cluster, seed,
                                       jobs=jobs, tracer=tracer,
                                       fidelity=fidelity)
    data = {
        "1DB-2DB (8 app)": analysis.response_time_difference(
            results, "1-8-1", "1-8-2"),
        "2DB-3DB (8 app)": analysis.response_time_difference(
            results, "1-8-2", "1-8-3"),
        "2DB-3DB (12 app)": analysis.response_time_difference(
            results, "1-12-2", "1-12-3"),
    }
    rendered = report.render_multi_series(
        "Figure 7. RUBiS scale-out response-time difference (ms) "
        "between DB configurations", data,
    )
    return FigureResult("figure7", "DB-config response-time differences",
                        data, rendered, results, tbl)


def figure8(scale=BENCH_SCALE, workload_step=300, results=None, tbl="",
            cluster=None, seed=42, jobs=1, tracer=None, fidelity=DES):
    """Figure 8: DB-tier CPU utilization, the three critical cases.

    The paper's three curves show "gradual saturation of the database
    servers' CPU utilization at 1700 users (1 server) and 2700 users
    (2 servers) ... the third curve shows the non-saturation" — i.e.
    1-8-1, 1-12-2 and 1-12-3 (with 12 app servers the app tier no
    longer caps the load before the DB knees).
    """
    if results is None:
        results, tbl = run_db_scaleout(scale, workload_step, cluster, seed,
                                       jobs=jobs, tracer=tracer,
                                       fidelity=fidelity)
    data = {
        topology: analysis.db_cpu_series(results, topology)
        for topology in ("1-8-1", "1-12-2", "1-12-3")
    }
    rendered = report.render_multi_series(
        "Figure 8. RUBiS scale-out DB-tier CPU utilization (%)",
        data, y_format="{:>10.0f}",
    )
    return FigureResult("figure8", "DB-tier CPU utilization",
                        data, rendered, results, tbl)


# ---------------------------------------------------------------------------
# Table 6: improvement of adding app vs DB servers at 500 users.
# ---------------------------------------------------------------------------

def table6(scale=BENCH_SCALE, cluster=None, seed=42, workload=500,
           jobs=1, tracer=None, fidelity=DES):
    """Table 6: % RT improvement from 1-1-1 at 500 users (V.B)."""
    topologies = [Topology(1, 1, 1), Topology(1, 2, 1), Topology(1, 3, 1),
                  Topology(1, 4, 1), Topology(1, 1, 2), Topology(1, 1, 3)]
    experiment, tbl = build_experiment(
        name="rubis-table6", benchmark="rubis", platform="emulab",
        topologies=topologies, workloads=(workload,), write_ratios=(0.15,),
        scale=scale, seed=seed,
    )
    runner = make_runner("emulab", "rubis", cluster=cluster, node_count=12,
                         tracer=tracer)
    results = runner.run_experiment(experiment, jobs=jobs,
                                    fidelity=fidelity)
    table = analysis.improvement_table(
        results, "1-1-1", workload, 0.15,
        app_range=range(2, 5), db_range=range(2, 4),
    )
    rendered = report.render_improvement_table(
        f"Table 6. % response-time improvement over 1-1-1 at "
        f"{workload} users (wr=15%)", table,
    )
    return FigureResult("table6", "Improvement of adding servers",
                        table, rendered, results, tbl)


# ---------------------------------------------------------------------------
# Table 7: average throughput per configuration and load.
# ---------------------------------------------------------------------------

def table7(scale=BENCH_SCALE, workload_step=100, cluster=None, seed=42,
           jobs=1, tracer=None, fidelity=DES):
    """Table 7: throughput for 1-2-1..1-4-3, loads 300..1000 (V.B)."""
    topologies = list(topology_grid(1, range(2, 5), range(1, 4)))
    workloads = expand_range(300, 1000, workload_step)
    experiment, tbl = build_experiment(
        name="rubis-table7", benchmark="rubis", platform="emulab",
        topologies=topologies, workloads=workloads, write_ratios=(0.15,),
        scale=scale, seed=seed,
    )
    runner = make_runner("emulab", "rubis", cluster=cluster, node_count=12,
                         tracer=tracer)
    results = runner.run_experiment(experiment, jobs=jobs,
                                    fidelity=fidelity)
    table = analysis.throughput_table(
        results, [t.label() for t in topologies], workloads,
    )
    rendered = report.render_throughput_table(
        "Table 7. RUBiS measured average throughput (req/s); "
        "'-' marks trials that could not complete", table,
    )
    return FigureResult("table7", "RUBiS throughput table",
                        table, rendered, results, tbl)


# ---------------------------------------------------------------------------
# Supplemental experiments the paper ran but did not plot.
# ---------------------------------------------------------------------------

def supplemental_rubbos_scaleout(scale=BENCH_SCALE, workload_step=500,
                                 cluster=None, seed=42, jobs=1,
                                 tracer=None, fidelity=DES):
    """RUBBoS scale-out on its bottleneck, the database tier.

    The conclusion mentions "the scale-out experiments ... for RUBBoS
    also on the bottleneck the database server" without a figure.  With
    the read-only mix, RAIDb-1 read-balancing scales almost linearly
    (no writes to replicate): the 2000-user single-DB knee moves to
    ~4000 with two replicas.
    """
    experiment, tbl = build_experiment(
        name="rubbos-db-scaleout", benchmark="rubbos", platform="emulab",
        topologies=[Topology(1, 1, 1), Topology(1, 1, 2),
                    Topology(1, 1, 3)],
        workloads=expand_range(1000, 4500, workload_step),
        write_ratios=(0.0,), scale=scale, seed=seed,
    )
    runner = make_runner("emulab", "rubbos", cluster=cluster,
                         node_count=14, tracer=tracer)
    results = runner.run_experiment(experiment, jobs=jobs,
                                    fidelity=fidelity)
    data = {
        topology: analysis.response_time_series(results, topology)
        for topology in ("1-1-1", "1-1-2", "1-1-3")
    }
    rendered = report.render_multi_series(
        "Supplemental: RUBBoS DB scale-out response time (ms), "
        "read-only mix", data,
    )
    return FigureResult("supplemental_rubbos_scaleout",
                        "RUBBoS DB scale-out", data, rendered, results,
                        tbl)


def supplemental_weblogic_scaleout(scale=BENCH_SCALE, workload_step=300,
                                   cluster=None, seed=42, jobs=1,
                                   tracer=None, fidelity=DES):
    """Scale-out RUBiS on Weblogic (Table 3's fourth experiment set).

    The paper ran 1-2-1 .. 1-6-2 on Warp; with two CPUs per node each
    Weblogic server carries ~490 users, so the app-tier ladder climbs
    twice as fast as JOnAS's.
    """
    experiment, tbl = build_experiment(
        name="rubis-weblogic-scaleout", benchmark="rubis",
        platform="warp",
        topologies=list(topology_grid(1, range(2, 7), range(1, 3))),
        workloads=expand_range(300, 2700, workload_step),
        write_ratios=(0.15,), app_server="weblogic", scale=scale,
        seed=seed,
    )
    runner = make_runner("warp", "rubis", app_server="weblogic",
                         cluster=cluster, node_count=14, tracer=tracer)
    results = runner.run_experiment(experiment, jobs=jobs,
                                    fidelity=fidelity)
    data = {
        topology: analysis.response_time_series(results, topology)
        for topology in sorted({r.topology_label for r in results})
    }
    rendered = report.render_multi_series(
        "Supplemental: RUBiS on Weblogic scale-out response time (ms), "
        "2-6 app servers x 1-2 DB servers (Warp), wr=15%", data,
    )
    return FigureResult("supplemental_weblogic_scaleout",
                        "Weblogic scale-out", data, rendered, results,
                        tbl)


# ---------------------------------------------------------------------------
# Tables 1 and 2: software and hardware catalogs.
# ---------------------------------------------------------------------------

def table1():
    """Table 1: summary of software configurations, from the catalog."""
    from repro.spec import catalog
    lines = ["Table 1. Summary of software configurations",
             f"{'benchmark':<10} {'tier':<6} {'package':<10} "
             f"{'version':<14} {'daemon':<22}"]
    rows = []
    for benchmark, stack in sorted(catalog.BENCHMARK_STACKS.items()):
        for tier in ("web", "app", "db"):
            for name in stack.get(tier, ()):
                package = catalog.get_package(name)
                rows.append((benchmark, tier, package))
                lines.append(
                    f"{benchmark:<10} {tier:<6} {package.name:<10} "
                    f"{package.version:<14} {package.daemon:<22}"
                )
    return FigureResult("table1", "Software configurations", rows,
                        "\n".join(lines))


def table2():
    """Table 2: summary of hardware platforms, from the catalog."""
    from repro.spec import catalog
    lines = ["Table 2. Summary of hardware platforms",
             f"{'platform':<9} {'node type':<13} {'description':<58}"]
    rows = []
    for name, platform in sorted(catalog.PLATFORMS.items()):
        for type_name, node_type in sorted(platform.node_types.items()):
            rows.append((name, node_type))
            lines.append(
                f"{name:<9} {type_name:<13} {node_type.describe():<58}"
            )
        lines.append(f"{'':9} {'os':<13} {platform.os_name}, "
                     f"kernel {platform.kernel}")
    return FigureResult("table2", "Hardware platforms", rows,
                        "\n".join(lines))


# ---------------------------------------------------------------------------
# Tables 3-5: management-scale accounting (generation, no execution).
# ---------------------------------------------------------------------------

def _generation_set(name, benchmark, platform, topologies, workloads,
                    write_ratios, app_server=None, db_node_type=None):
    experiment, _tbl = build_experiment(
        name=name, benchmark=benchmark, platform=platform,
        topologies=topologies, workloads=workloads,
        write_ratios=write_ratios, app_server=app_server,
        db_node_type=db_node_type,
    )
    model = load_resource_model(render_resource_mof(
        benchmark, platform, app_server=app_server,
    ))
    mulini = Mulini(model)
    script_lines = config_lines = files = machines = 0
    bundles = 0
    estimated_bytes = 0
    for topology, workload, _ratio, bundle in \
            mulini.generate_sweep(experiment):
        script_lines += bundle.script_line_total()
        config_lines += bundle.config_line_total()
        files += bundle.file_count()
        machines += topology.machine_count()
        bundles += 1
        estimated_bytes += estimate_collected_bytes(experiment, topology,
                                                    workload)
    return {
        "set": name,
        "experiments": bundles,
        "script_lines": script_lines,
        "config_lines": config_lines,
        "generated_files": files,
        "machine_count": machines,
        "collected_mb": estimated_bytes / 1e6,
    }


def estimate_collected_bytes(experiment, topology, workload):
    """Estimated monitor + driver data volume for one trial.

    sysstat: one line of ~22 bytes per metric per interval per monitored
    host; driver log: ~45 bytes per request at roughly N/Z requests per
    second over the run period.  Used by the Table 3 reproduction, where
    executing the full paper-scale sweeps is generation-bound.
    """
    hosts = topology.total_servers() + 1          # + client
    duration = experiment.trial.total()
    samples = duration / experiment.monitor.interval
    sysstat_bytes = hosts * samples * len(experiment.monitor.metrics) * 22
    request_rate = workload / experiment.think_time
    driver_bytes = request_rate * experiment.trial.run * 45
    return int(sysstat_bytes + driver_bytes)


def table3(paper_scale=True):
    """Table 3: the management scale of the four experiment sets.

    Generates every bundle of every sweep point (no execution) and sums
    the script/config lines, file and machine counts; data volume is
    estimated per trial (see :func:`estimate_collected_bytes`).
    """
    step = 50 if paper_scale else 100
    sets = [
        _generation_set(
            "Baseline RUBiS on JOnAS", "rubis", "emulab",
            [Topology(1, 1, 1)], expand_range(50, 250, step),
            expand_range(0.0, 0.9, 0.1), db_node_type="emulab_low",
        ),
        _generation_set(
            "Baseline RUBiS on Weblogic", "rubis", "warp",
            [Topology(1, 1, 1)], expand_range(100, 600, step),
            expand_range(0.0, 0.9, 0.1), app_server="weblogic",
        ),
        _generation_set(
            "Scale-out RUBiS on JOnAS", "rubis", "emulab",
            list(topology_grid(1, range(2, 13), range(1, 4))),
            expand_range(300, 2900, 200 if paper_scale else 400),
            (0.15,),
        ),
        _generation_set(
            "Scale-out RUBiS on Weblogic", "rubis", "warp",
            list(topology_grid(1, range(2, 7), range(1, 3))),
            expand_range(300, 1500, 200 if paper_scale else 400),
            (0.15,), app_server="weblogic",
        ),
    ]
    rendered = report.render_management_scale(
        "Table 3. Scale of experiments run (regenerated)", sets,
    )
    return FigureResult("table3", "Scale of experiments", sets, rendered)


def table4(topology=Topology(1, 2, 2)):
    """Table 4: example generated scripts with line counts (1-2-2)."""
    model = load_resource_model(render_resource_mof("rubis", "emulab"))
    mulini = Mulini(model)
    experiment, _tbl = build_experiment(
        name="rubis-table4", benchmark="rubis", platform="emulab",
        topologies=[topology], workloads=(500,), write_ratios=(0.15,),
    )
    bundle = mulini.generate(experiment, topology, 500, 0.15)
    interesting = [
        ("run.sh", "Calls all the other subscripts to install, configure "
                   "and execute a RUBiS experiment"),
        ("scripts/TOMCAT1_install.sh", "Installs Tomcat server #1"),
        ("scripts/TOMCAT1_configure.sh", "Configures Tomcat server #1"),
        ("scripts/TOMCAT1_ignition.sh", "Starts Tomcat server #1"),
        ("scripts/TOMCAT1_stop.sh", "Stops Tomcat server #1"),
        ("scripts/SYS_MON_APP1_install.sh",
         "Installs system monitoring tools on app server #1"),
        ("scripts/SYS_MON_APP1_ignition.sh",
         "Starts system monitoring tools on app server #1"),
    ]
    entries = [(name, bundle.line_count(name), comment)
               for name, comment in interesting]
    rendered = report.render_bundle_table(
        "Table 4. Examples of generated scripts (1-2-2 configuration)",
        entries,
    )
    return FigureResult("table4", "Examples of generated scripts",
                        {"entries": entries, "bundle": bundle}, rendered)


def table5(topology=Topology(1, 2, 2)):
    """Table 5: example configuration files modified by Mulini (1-2-2)."""
    model = load_resource_model(render_resource_mof("rubis", "emulab"))
    mulini = Mulini(model)
    experiment, _tbl = build_experiment(
        name="rubis-table5", benchmark="rubis", platform="emulab",
        topologies=[topology], workloads=(500,), write_ratios=(0.15,),
    )
    bundle = mulini.generate(experiment, topology, 500, 0.15)
    interesting = [
        ("config/APACHE1_workers2.properties",
         "Configures Apache to connect to application server tier"),
        ("config/CJDBC1_mysqldb-raidb1-elba.xml",
         "Configures C-JDBC controller to connect to databases"),
        ("config/JONAS1_monitor-local.properties",
         "Configures the application-level probe monitor"),
    ]
    entries = [(name, bundle.line_count(name), comment)
               for name, comment in interesting]
    rendered = report.render_bundle_table(
        "Table 5. Examples of configuration files modified (1-2-2)",
        entries,
    )
    return FigureResult("table5", "Examples of configuration files",
                        {"entries": entries, "bundle": bundle}, rendered)
