"""Trial scheduling: sweep points as tasks, executed on a worker pool.

The paper ran its "very large families of experiments" concurrently
across three clusters (Warp, Rohan, Emulab); this module is the
package's form of that: every ``(topology, workload, write_ratio,
repetition)`` point of an experiment becomes an immutable
:class:`TrialTask`, and a :class:`TrialScheduler` executes the tasks on
``jobs`` workers, each worker owning its own virtual cluster and runner
so no virtual-host state ever crosses workers.

Determinism is the contract: every trial derives its random streams
from ``(seed + repetition)`` alone, and the scheduler delivers results
to the caller in task-enumeration order regardless of completion order,
so a ``jobs=8`` campaign stores exactly the rows (in exactly the order)
a ``jobs=1`` campaign would.

Backends: ``"thread"`` shares the interpreter (cheap, but serialized by
the GIL for this CPU-bound simulation) and ``"process"`` forks one
interpreter per worker (true parallelism on multi-core hosts).  The
default picks ``"process"`` where ``fork`` is available.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.deprecation import absorb_positional
from repro.errors import ExperimentError
from repro.obs.tracer import as_tracer

THREAD = "thread"
PROCESS = "process"
BACKENDS = (THREAD, PROCESS)


@dataclass(frozen=True)
class TrialTask:
    """One schedulable trial: a sweep point plus its repetition."""

    index: int                 # position in enumeration order
    experiment: object         # spec.tbl ExperimentDef (frozen)
    topology: object
    workload: int
    write_ratio: float
    repetition: int = 0

    @property
    def seed(self):
        """The seed this repetition replays under (seed, seed+1, ...)."""
        return self.experiment.seed + self.repetition

    def key(self):
        """The trial's identity — the results database's UNIQUE key."""
        return (self.experiment.name, self.topology.label(), self.workload,
                self.write_ratio, self.seed)


def enumerate_tasks(experiment, start_index=0):
    """Every trial of *experiment* as :class:`TrialTask`\\ s, in the
    canonical sweep order (points outer, repetitions inner) that a
    sequential :meth:`ExperimentRunner.run_experiment` executes."""
    tasks = []
    index = start_index
    for topology, workload, write_ratio in experiment.points():
        for repetition in range(experiment.repetitions):
            tasks.append(TrialTask(index, experiment, topology, workload,
                                   write_ratio, repetition))
            index += 1
    return tasks


def default_backend():
    """Process workers where ``fork`` exists, threads otherwise.

    This is a static choice: it cannot see whether the campaign's
    results will actually survive the worker→parent pickle (a tracer or
    fault hook configured with a lambda or a lock-bearing closure will
    not).  The scheduler therefore treats the process backend as a
    best-effort default and falls back to threads at run time when
    result pickling fails — see :meth:`TrialScheduler._run_processes`.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return PROCESS
    return THREAD


# Per-process worker state for the process backend.  The initializer
# runs once in each forked worker; the runner it builds (cluster and
# all) lives for the worker's lifetime and never crosses processes.
_WORKER_RUNNER = None


def _process_init(runner_factory):
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner_factory()


def _process_run(task):
    return _WORKER_RUNNER.run_task(task)


class TrialScheduler:
    """Executes :class:`TrialTask`\\ s on ``jobs`` pooled workers.

    *runner_factory* builds one ExperimentRunner (with its own
    VirtualCluster) per worker; with ``jobs=1`` a single runner executes
    the tasks inline, preserving strictly sequential behaviour.

    :meth:`run` returns results in task order and invokes *on_result*
    in task order from the calling thread, buffering out-of-order
    completions, so downstream stores see a deterministic sequence.

    A *tracer* records scheduler counters on the submitting side
    (``scheduler.tasks_queued`` / ``tasks_running`` / ``tasks_done`` /
    ``tasks_failed``) regardless of backend; per-trial spans come from
    the workers' runners and travel on the results themselves.
    """

    def __init__(self, runner_factory, *args, jobs=1, backend=None,
                 tracer=None):
        merged = absorb_positional(
            "TrialScheduler", ("jobs", "backend"), args,
            {"jobs": jobs, "backend": backend})
        jobs = merged["jobs"]
        backend = merged["backend"]
        if jobs < 1:
            raise ExperimentError(f"jobs must be at least 1, got {jobs}")
        if backend is not None and backend not in BACKENDS:
            raise ExperimentError(
                f"unknown scheduler backend {backend!r}; "
                f"known: {', '.join(BACKENDS)}"
            )
        self.runner_factory = runner_factory
        self.jobs = jobs
        self.backend = backend or default_backend()
        self.tracer = as_tracer(tracer)

    def run(self, tasks, on_result=None):
        """Execute *tasks*; returns their TrialResults in task order."""
        tasks = list(tasks)
        self.tracer.count("scheduler.tasks_queued", len(tasks))
        if self.jobs == 1 or len(tasks) <= 1:
            return self._run_inline(tasks, on_result)
        if self.backend == THREAD:
            return self._run_threads(tasks, on_result)
        return self._run_processes(tasks, on_result)

    # -- backends ---------------------------------------------------------

    def _run_inline(self, tasks, on_result):
        runner = self.runner_factory()
        results = []
        for task in tasks:
            self.tracer.count("scheduler.tasks_running", 1)
            try:
                result = runner.run_task(task)
            finally:
                self.tracer.count("scheduler.tasks_running", -1)
            results.append(result)
            self.tracer.count("scheduler.tasks_done", 1)
            if on_result is not None:
                on_result(result)
        return results

    def _run_threads(self, tasks, on_result):
        local = threading.local()

        def run_one(task):
            runner = getattr(local, "runner", None)
            if runner is None:
                runner = local.runner = self.runner_factory()
            self.tracer.count("scheduler.tasks_running", 1)
            try:
                return runner.run_task(task)
            finally:
                self.tracer.count("scheduler.tasks_running", -1)

        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(run_one, task) for task in tasks]
            return self._drain(futures, on_result)

    def _run_processes(self, tasks, on_result):
        # Worker state is inherited by fork (initargs never pickle), but
        # every task and every result crosses the process boundary via
        # pickle.  A runner configured with an unpicklable callback — a
        # lambda tracer clock, say — only fails when its first result
        # comes back, so catch that here and resume the remaining tasks
        # on the thread backend.  Results are delivered strictly in
        # submission order, so `delivered` tells us exactly which tasks
        # are still owed; trials are deterministic, so the splice is
        # byte-identical to an all-thread run.
        delivered = []

        def deliver(result):
            delivered.append(result)
            if on_result is not None:
                on_result(result)

        context = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(max_workers=self.jobs,
                                     mp_context=context,
                                     initializer=_process_init,
                                     initargs=(self.runner_factory,)) as pool:
                futures = [pool.submit(_process_run, task) for task in tasks]
                self._drain(futures, deliver)
                return delivered
        except (TypeError, pickle.PicklingError, AttributeError) as error:
            warnings.warn(
                f"process backend cannot pickle trial results ({error}); "
                f"falling back to the thread backend for the remaining "
                f"{len(tasks) - len(delivered)} task(s)",
                RuntimeWarning, stacklevel=3,
            )
            self.tracer.count("scheduler.backend_fallbacks", 1)
            rest = self._run_threads(tasks[len(delivered):], on_result)
            return delivered + rest

    def _drain(self, futures, on_result):
        results = []
        try:
            for future in futures:
                result = future.result()
                results.append(result)
                self.tracer.count("scheduler.tasks_done", 1)
                if on_result is not None:
                    on_result(result)
        except BaseException:
            self.tracer.count("scheduler.tasks_failed", 1)
            for future in futures:
                future.cancel()
            raise
        return results
