"""Trial scheduling: sweep points as tasks, executed on a worker pool.

The paper ran its "very large families of experiments" concurrently
across three clusters (Warp, Rohan, Emulab); this module is the
package's form of that: every ``(topology, workload, write_ratio,
repetition)`` point of an experiment becomes an immutable
:class:`TrialTask`, and a :class:`TrialScheduler` executes the tasks on
``jobs`` workers, each worker owning its own virtual cluster and runner
so no virtual-host state ever crosses workers.

Determinism is the contract: every trial derives its random streams
from ``(seed + repetition)`` alone, and the scheduler delivers results
to the caller in task-enumeration order regardless of completion order,
so a ``jobs=8`` campaign stores exactly the rows (in exactly the order)
a ``jobs=1`` campaign would.

Backends: ``"thread"`` shares the interpreter (cheap, but serialized by
the GIL for this CPU-bound simulation) and ``"process"`` forks one
interpreter per worker (true parallelism on multi-core hosts).  The
default picks ``"process"`` where ``fork`` is available.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro import hotpath
from repro.deprecation import absorb_positional
from repro.errors import ExperimentError
from repro.obs.tracer import as_tracer

THREAD = "thread"
PROCESS = "process"
BACKENDS = (THREAD, PROCESS)


@dataclass(frozen=True)
class TrialTask:
    """One schedulable trial: a sweep point plus its repetition."""

    index: int                 # position in enumeration order
    experiment: object         # spec.tbl ExperimentDef (frozen)
    topology: object
    workload: int
    write_ratio: float
    repetition: int = 0
    fidelity: str = "des"      # solver tier this trial runs under

    @property
    def seed(self):
        """The seed this repetition replays under (seed, seed+1, ...)."""
        return self.experiment.seed + self.repetition

    def key(self):
        """The trial's identity — the results database's UNIQUE key."""
        return (self.experiment.name, self.topology.label(), self.workload,
                self.write_ratio, self.seed, self.fidelity,
                getattr(self.experiment, "scenario", ""))


def enumerate_tasks(experiment, start_index=0, fidelity="des"):
    """Every trial of *experiment* as :class:`TrialTask`\\ s, in the
    canonical sweep order (points outer, repetitions inner) that a
    sequential :meth:`ExperimentRunner.run_experiment` executes."""
    tasks = []
    index = start_index
    for topology, workload, write_ratio in experiment.points():
        for repetition in range(experiment.repetitions):
            tasks.append(TrialTask(index, experiment, topology, workload,
                                   write_ratio, repetition,
                                   fidelity=fidelity))
            index += 1
    return tasks


#: Total virtual hosts the auto-sized pool may hold live at once; each
#: worker owns a full cluster, so huge topologies shrink the pool.
_HOST_BUDGET = 512


def calc_parallel_jobs(node_count=None, trial_count=None):
    """Auto-size the worker pool (the ``--jobs auto`` resolution).

    One core is reserved for the campaign's main/ingest thread — the
    write-behind store and progress callbacks run there, and starving
    it stalls every worker at the results barrier.  *node_count* makes
    the sizing topology-aware: each worker clones the campaign's whole
    virtual cluster, so large topologies cap the pool to keep the
    total live host count bounded.  *trial_count* caps the pool at the
    work available.  Always at least 1.
    """
    cpus = os.cpu_count() or 1
    jobs = max(1, cpus - 1)
    if node_count:
        jobs = min(jobs, max(1, _HOST_BUDGET // node_count))
    if trial_count is not None:
        jobs = min(jobs, max(1, trial_count))
    return jobs


def default_backend():
    """Process workers where ``fork`` exists, threads otherwise.

    This is a static choice: it cannot see whether the campaign's
    results will actually survive the worker→parent pickle (a tracer or
    fault hook configured with a lambda or a lock-bearing closure will
    not).  The scheduler therefore treats the process backend as a
    best-effort default and falls back to threads at run time when
    result pickling fails — see :meth:`TrialScheduler._run_processes`.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return PROCESS
    return THREAD


# Per-process worker state for the process backend.  The initializer
# runs once in each forked worker; the runner it builds (cluster and
# all) lives for the worker's lifetime and never crosses processes.
_WORKER_RUNNER = None


def _process_init(runner_factory):
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner_factory()


def _process_run(task):
    return _WORKER_RUNNER.run_task(task)


class TrialScheduler:
    """Executes :class:`TrialTask`\\ s on ``jobs`` pooled workers.

    *runner_factory* builds one ExperimentRunner (with its own
    VirtualCluster) per worker; with ``jobs=1`` a single runner executes
    the tasks inline, preserving strictly sequential behaviour.

    :meth:`run` returns results in task order and invokes *on_result*
    in task order from the calling thread, buffering out-of-order
    completions, so downstream stores see a deterministic sequence.

    A *tracer* records scheduler counters on the submitting side
    (``scheduler.tasks_queued`` / ``tasks_running`` / ``tasks_done`` /
    ``tasks_failed``) regardless of backend; per-trial spans come from
    the workers' runners and travel on the results themselves.
    """

    def __init__(self, runner_factory, *args, jobs=1, backend=None,
                 tracer=None):
        merged = absorb_positional(
            "TrialScheduler", ("jobs", "backend"), args,
            {"jobs": jobs, "backend": backend})
        jobs = merged["jobs"]
        backend = merged["backend"]
        if jobs < 1:
            raise ExperimentError(f"jobs must be at least 1, got {jobs}")
        if backend is not None and backend not in BACKENDS:
            raise ExperimentError(
                f"unknown scheduler backend {backend!r}; "
                f"known: {', '.join(BACKENDS)}"
            )
        self.runner_factory = runner_factory
        self.jobs = jobs
        self.backend = backend or default_backend()
        self.tracer = as_tracer(tracer)

    def run(self, tasks, on_result=None):
        """Execute *tasks*; returns their TrialResults in task order."""
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            self.tracer.count("scheduler.tasks_queued", len(tasks))
            return self._run_inline(tasks, on_result)
        with self.session() as session:
            return session.run_batch(tasks, on_result)

    def session(self):
        """A :class:`SchedulerSession`: a live pool fed batch by batch.

        The closed-loop planner's entry point — each planner round
        submits one batch to the same warm workers, so no pool (or
        worker cluster) is torn down between rounds.  ``run()`` is just
        a one-batch session.
        """
        return SchedulerSession(self)

    # -- backends ---------------------------------------------------------

    def _run_inline(self, tasks, on_result):
        runner = self.runner_factory()
        results = []
        for task in tasks:
            self.tracer.count("scheduler.tasks_running", 1)
            try:
                result = runner.run_task(task)
            finally:
                self.tracer.count("scheduler.tasks_running", -1)
            results.append(result)
            self.tracer.count("scheduler.tasks_done", 1)
            if on_result is not None:
                on_result(result)
        return results

    def _drain(self, futures, on_result):
        results = []
        try:
            for future in futures:
                result = future.result()
                results.append(result)
                self.tracer.count("scheduler.tasks_done", 1)
                if on_result is not None:
                    on_result(result)
        except BaseException:
            self.tracer.count("scheduler.tasks_failed", 1)
            for future in futures:
                future.cancel()
            raise
        return results


#: Session execution modes.  ``inline`` is the jobs=1 degenerate pool:
#: one runner, reused batch after batch, on the calling thread.
_INLINE = "inline"


class SchedulerSession:
    """A live worker pool accepting successive task batches.

    Built by :meth:`TrialScheduler.session`.  Pools — and each worker's
    runner, with its virtual cluster — are created lazily on the first
    batch and persist until :meth:`close`, so streaming callers (the
    adaptive planner's rounds) pay worker start-up once, not per round.

    Per batch, the delivery contract is exactly :meth:`TrialScheduler.
    run`'s: results return (and *on_result* fires, on the calling
    thread) in task-submission order regardless of completion order.
    A process-backend session whose results cannot pickle falls back to
    the thread backend *permanently* — the remaining tasks of the
    failing batch and every later batch run on threads, with the same
    submission-order splice the one-shot scheduler performs.
    """

    def __init__(self, scheduler):
        self.scheduler = scheduler
        self._mode = _INLINE if scheduler.jobs == 1 else scheduler.backend
        self._pool = None
        self._runner = None          # inline mode's persistent runner
        self._local = None           # thread mode's per-thread runners
        self._generations = {}       # tenant -> runner-cache generation
        self._closed = False

    # -- lifecycle --------------------------------------------------------

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def close(self):
        """Shut the pool down (waiting for in-flight work) and forget
        all worker runners.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._teardown_pool()
        self._runner = None
        self._local = None

    def _teardown_pool(self):
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- batches ----------------------------------------------------------

    def run_batch(self, tasks, on_result=None):
        """Execute one batch; returns TrialResults in task order."""
        if self._closed:
            raise ExperimentError(
                "scheduler session is closed; create a new session")
        tasks = list(tasks)
        self.scheduler.tracer.count("scheduler.tasks_queued", len(tasks))
        if not tasks:
            return []
        if self._mode == _INLINE:
            return self._inline_batch(tasks, on_result)
        if self._mode == THREAD:
            return self._thread_batch(tasks, on_result)
        return self._process_batch(tasks, on_result)

    def _inline_batch(self, tasks, on_result):
        if self._runner is None:
            self._runner = self.scheduler.runner_factory()
        tracer = self.scheduler.tracer
        results = []
        for task in tasks:
            tracer.count("scheduler.tasks_running", 1)
            try:
                result = self._runner.run_task(task)
            finally:
                tracer.count("scheduler.tasks_running", -1)
            results.append(result)
            tracer.count("scheduler.tasks_done", 1)
            if on_result is not None:
                on_result(result)
        return results

    def _ensure_thread_pool(self):
        if self._pool is None:
            self._local = threading.local()
            self._pool = ThreadPoolExecutor(
                max_workers=self.scheduler.jobs)
        return self._pool

    def _thread_run(self, task, tenant, runner_factory):
        """Execute one task on the calling pool thread.

        Worker threads cache one runner *per tenant* — a shared fleet
        session multiplexes many campaigns over the same threads, and
        each campaign's trials must run on that campaign's cluster.
        The single-campaign path is just the ``tenant=None`` slot.
        A runner built before its tenant was retired (see
        :meth:`forget_tenant`) is discarded and rebuilt.
        """
        scheduler = self.scheduler
        runners = getattr(self._local, "runners", None)
        if runners is None:
            runners = self._local.runners = {}
        generation = self._generations.get(tenant, 0)
        cached = runners.get(tenant)
        runner = cached[1] if cached is not None \
            and cached[0] == generation else None
        if runner is None:
            factory = runner_factory or scheduler.runner_factory
            runner = factory()
            runners[tenant] = (generation, runner)
        scheduler.tracer.count("scheduler.tasks_running", 1)
        try:
            if tenant is None:
                return runner.run_task(task)
            with hotpath.tenant(tenant):
                return runner.run_task(task)
        finally:
            scheduler.tracer.count("scheduler.tasks_running", -1)

    def submit(self, task, *, tenant=None, runner_factory=None,
               on_done=None):
        """Submit one task asynchronously; returns its Future.

        The fleet plane's entry point: unlike :meth:`run_batch`, which
        blocks until a whole batch is delivered, ``submit`` hands a
        single task to the live pool and returns immediately, so a
        dispatcher can interleave tasks from many campaigns on one set
        of workers.  *tenant* keys the worker-side runner cache (and
        scopes hot-path cache attribution to the campaign);
        *runner_factory* builds that tenant's runner on first use.
        Thread workers only — the fleet owns ordering, so the process
        backend's pickling round-trip buys nothing here.
        """
        if self._closed:
            raise ExperimentError(
                "scheduler session is closed; create a new session")
        if self._mode not in (THREAD, _INLINE):
            raise ExperimentError(
                f"submit() requires the thread backend, not "
                f"{self._mode!r}")
        self._mode = THREAD
        self._ensure_thread_pool()
        self.scheduler.tracer.count("scheduler.tasks_queued", 1)
        future = self._pool.submit(self._thread_run, task, tenant,
                                   runner_factory)
        if on_done is not None:
            future.add_done_callback(on_done)
        return future

    def forget_tenant(self, tenant):
        """Retire *tenant*'s cached worker runners.

        Runner caches live in each worker thread's local storage, so
        they cannot be purged from the outside; instead the tenant's
        generation is bumped and every thread discards its stale runner
        (and that runner's cluster) at the next lookup.  The fleet
        calls this when a campaign detaches, so a long-lived daemon
        doesn't accumulate one cluster per finished campaign per
        worker.
        """
        self._generations[tenant] = self._generations.get(tenant, 0) + 1

    def _thread_batch(self, tasks, on_result):
        self._ensure_thread_pool()
        futures = [self._pool.submit(self._thread_run, task, None, None)
                   for task in tasks]
        return self.scheduler._drain(futures, on_result)

    def _process_batch(self, tasks, on_result):
        # Worker state is inherited by fork (initargs never pickle), but
        # every task and every result crosses the process boundary via
        # pickle.  A runner configured with an unpicklable callback — a
        # lambda tracer clock, say — only fails when its first result
        # comes back, so catch that here and finish on the thread
        # backend.  Results are delivered strictly in submission order,
        # so `delivered` tells us exactly which tasks are still owed;
        # trials are deterministic, so the splice is byte-identical to
        # an all-thread run.
        scheduler = self.scheduler
        delivered = []

        def deliver(result):
            delivered.append(result)
            if on_result is not None:
                on_result(result)

        try:
            if self._pool is None:
                context = multiprocessing.get_context("fork")
                self._pool = ProcessPoolExecutor(
                    max_workers=scheduler.jobs, mp_context=context,
                    initializer=_process_init,
                    initargs=(scheduler.runner_factory,))
            futures = [self._pool.submit(_process_run, task)
                       for task in tasks]
            scheduler._drain(futures, deliver)
            return delivered
        except (TypeError, pickle.PicklingError, AttributeError) as error:
            warnings.warn(
                f"process backend cannot pickle trial results ({error}); "
                f"falling back to the thread backend for the remaining "
                f"{len(tasks) - len(delivered)} task(s)",
                RuntimeWarning, stacklevel=3,
            )
            scheduler.tracer.count("scheduler.backend_fallbacks", 1)
            self._teardown_pool()
            self._mode = THREAD
            rest = self._thread_batch(tasks[len(delivered):], on_result)
            return delivered + rest
