"""The end-to-end experiment runner.

One ``run_point`` call is one trial of the paper's methodology, with
nothing short-circuited:

1. allocate cluster nodes for the topology (honouring node types),
2. Mulini generates the bundle for this exact point,
3. the shell interpreter executes the generated ``run.sh``,
4. the deployed system is recovered from cluster state and verified,
5. the simulation plays the trial's warm-up/run/cool-down phases with
   sysstat emitters sampling every host,
6. monitor output and the driver's request log are written on the
   hosts and gathered by the generated ``collect.sh``,
7. metrics are computed from the *collected* files on the control host,
8. the generated ``teardown.sh`` stops everything; nodes are released.

A trial whose error ratio exceeds the TBL error budget is recorded as
DNF — the paper's experiments that "could not complete" (Table 7).

Every trial is also a tracing span tree: one ``trial`` root span plus
one child span per lifecycle phase (``allocate``, ``generate``,
``deploy``, ``verify``, ``simulate``, ``collect``, ``analyze``,
``teardown``), with per-script spans nested under the script-driven
phases.  The spans ride on the returned :class:`TrialResult` (so they
survive process-pool workers) and land in the results database's
``spans`` table; tracing never changes a trial's outcome.
"""

from __future__ import annotations

from repro.deploy import DeploymentEngine
from repro.deprecation import absorb_positional
from repro.errors import ExperimentError
from repro.experiments.trial import (
    COMPLETED,
    DNF,
    TrialResult,
    measurement_window,
)
from repro.experiments.scheduler import TrialScheduler, enumerate_tasks
from repro.generator import HostPlan, Mulini
from repro.monitoring import (
    attach_monitors,
    collect_sysstat_files,
    collected_bytes,
    render_request_log,
    summarize_log,
    summarize_log_by_state,
)
from repro.obs.tracer import as_tracer, worker_name
from repro.sim import NTierSimulation


class ExperimentRunner:
    """Runs experiment points end to end on one virtual cluster.

    Construct with keywords: ``cluster=``, ``resource_model=``,
    ``wait_for_nodes=``, ``tracer=`` (the legacy positional form is
    deprecated).  *wait_for_nodes* makes trials block for cluster nodes
    instead of failing when concurrent trials hold them — the
    shared-cluster mode of parallel scheduling.  *tracer* is threaded
    through every layer (deployment engine, shell interpreter,
    simulation, collector) so one trial produces one span tree.
    """

    def __init__(self, *args, cluster=None, resource_model=None,
                 wait_for_nodes=False, tracer=None):
        merged = absorb_positional(
            "ExperimentRunner", ("cluster", "resource_model",
                                 "wait_for_nodes"),
            args, {"cluster": cluster, "resource_model": resource_model,
                   "wait_for_nodes": wait_for_nodes})
        cluster = merged["cluster"]
        resource_model = merged["resource_model"]
        if cluster is None or resource_model is None:
            raise ExperimentError(
                "ExperimentRunner requires cluster= and resource_model="
            )
        self.cluster = cluster
        self.resource_model = resource_model
        self.wait_for_nodes = merged["wait_for_nodes"]
        self.tracer = as_tracer(tracer)
        self.mulini = Mulini(resource_model)
        self.engine = DeploymentEngine(cluster=cluster, tracer=self.tracer)

    def clone(self):
        """A runner like this one on a fresh clone of its cluster.

        Scheduler workers each run on a clone, so virtual-host state
        never crosses workers.  The tracer is shared: worker spans all
        land on the same trace plane.
        """
        return ExperimentRunner(cluster=self.cluster.clone(),
                                resource_model=self.resource_model,
                                wait_for_nodes=self.wait_for_nodes,
                                tracer=self.tracer)

    def run_point(self, experiment, topology, workload, write_ratio,
                  seed=None):
        """Execute one trial; returns a :class:`TrialResult`.

        *seed* overrides the experiment's seed (used for repetitions);
        it flows into the generated driver.properties, so the whole
        trial replays under the replacement seed.
        """
        if seed is not None and seed != experiment.seed:
            from dataclasses import replace
            experiment = replace(experiment, seed=seed)
        tracer = self.tracer
        with tracer.span(
                "trial",
                experiment=experiment.name,
                topology=topology.label(),
                workload=workload,
                write_ratio=write_ratio,
                seed=experiment.seed,
                worker=worker_name()) as trial_span:
            tier_node_types = {}
            if experiment.db_node_type is not None:
                tier_node_types["db"] = self.cluster.platform.node_type(
                    experiment.db_node_type).name
            with tracer.span("allocate",
                             wait=self.wait_for_nodes) as alloc_span:
                allocation = self.cluster.allocate(
                    topology, tier_node_types=tier_node_types,
                    wait=self.wait_for_nodes)
                tracer.annotate(nodes=sorted(
                    {allocation.client.name}
                    | {h.name for h in allocation.all_server_hosts()}))
            if self.wait_for_nodes:
                tracer.count("runner.node_wait_s", alloc_span.duration)
            try:
                result = self._run_allocated(allocation, experiment,
                                             topology, workload,
                                             write_ratio)
                trial_span.annotate(status=result.status)
            finally:
                self.cluster.release(allocation)
        result.spans = tracer.export(trial_span)
        return result

    def run_task(self, task):
        """Execute one enumerated :class:`TrialTask`."""
        return self.run_point(task.experiment, task.topology,
                              task.workload, task.write_ratio,
                              seed=task.seed)

    def run_experiment(self, experiment, *, on_result=None, jobs=1,
                       backend=None):
        """Run every sweep point of *experiment*, with repetitions.

        Each repetition replays the point under seed, seed+1, ... so
        saturation noise can be quantified (the paper's "significant
        random fluctuations" at the CPU-saturated cells).

        The sweep is first enumerated into tasks, then executed: with
        ``jobs=1`` (the default) sequentially on this runner, otherwise
        on a :class:`TrialScheduler` pool whose workers each clone this
        runner.  Results arrive in enumeration order either way, and
        trial metrics are identical across ``jobs`` settings because
        every trial's random streams derive from ``(seed + repetition)``
        alone — tracing on or off.
        """
        tasks = enumerate_tasks(experiment)
        if jobs == 1:
            results = []
            for task in tasks:
                result = self.run_task(task)
                results.append(result)
                if on_result is not None:
                    on_result(result)
            return results
        scheduler = TrialScheduler(self.clone, jobs=jobs, backend=backend,
                                   tracer=self.tracer)
        return scheduler.run(tasks, on_result=on_result)

    # -- internals ---------------------------------------------------------

    def _run_allocated(self, allocation, experiment, topology, workload,
                       write_ratio):
        tracer = self.tracer
        with tracer.span("generate"):
            plan = HostPlan.from_allocation(allocation)
            bundle = self.mulini.generate(experiment, topology, workload,
                                          write_ratio, host_plan=plan)
            tracer.annotate(experiment_id=bundle.experiment_id,
                            files=bundle.file_count(),
                            script_lines=bundle.script_line_total(),
                            config_lines=bundle.config_line_total())
        with tracer.span("deploy"):
            deployment = self.engine.deploy(bundle, allocation)
        system = deployment.system
        with tracer.span("verify"):
            self.engine.verify(system, experiment, topology, workload,
                               write_ratio)
        with tracer.span("simulate"):
            harness = NTierSimulation(system, tracer=tracer)
            emitters = attach_monitors(harness)
            records = harness.run()
            for emitter in emitters:
                emitter.stop()
                emitter.flush()
            # The driver writes its per-request log where
            # driver.properties said it would; collect.sh ships it to
            # the control host.
            system.client_host.fs.write(system.driver.log_path,
                                        render_request_log(records))
            tracer.annotate(requests=len(records),
                            sim_events=harness.sim.events_processed,
                            monitors=len(emitters))
        control = allocation.control
        with tracer.span("collect"):
            results_dir = self.engine.collect(deployment)
            log_path = f"{results_dir}/requests.log"
            if not control.fs.is_file(log_path):
                raise ExperimentError(
                    f"collect.sh did not deliver the request log for "
                    f"{bundle.experiment_id}"
                )
            collected_log = control.fs.read(log_path)
            sys_series = collect_sysstat_files(control, results_dir,
                                               tracer=tracer)
            data_bytes = collected_bytes(control, results_dir)
            tracer.annotate(bytes=data_bytes, hosts=len(sys_series))
        with tracer.span("analyze"):
            window = measurement_window(experiment.trial)
            metrics = summarize_log(collected_log, window)
            per_state = summarize_log_by_state(collected_log, window)
            host_cpu = {host: series.mean("cpu", window)
                        for host, series in sys_series.items()}
            tier_of_host = self._tier_map(system)
        with tracer.span("teardown"):
            self.engine.teardown(deployment)
        status = COMPLETED
        if metrics.error_ratio > experiment.slo.error_ratio:
            status = DNF
            tracer.annotate(dnf_cause=f"error ratio "
                            f"{metrics.error_ratio:.3f} exceeds budget "
                            f"{experiment.slo.error_ratio:.3f}")
        return TrialResult(
            experiment_name=experiment.name,
            benchmark=experiment.benchmark,
            platform=experiment.platform,
            topology_label=topology.label(),
            workload=workload,
            write_ratio=write_ratio,
            seed=experiment.seed,
            status=status,
            metrics=metrics,
            host_cpu=host_cpu,
            tier_of_host=tier_of_host,
            per_state=per_state,
            collected_bytes=data_bytes,
            script_lines=bundle.script_line_total(),
            config_lines=bundle.config_line_total(),
            generated_files=bundle.file_count(),
            machine_count=allocation.machine_count(),
        )

    @staticmethod
    def _tier_map(system):
        tiers = {}
        for web in system.web_servers:
            tiers[web.host.name] = "web"
        for app in system.app_servers:
            tiers[app.host.name] = "app"
        for backend in system.db_backends:
            tiers[backend.host.name] = "db"
        tiers[system.client_host.name] = "client"
        return tiers
