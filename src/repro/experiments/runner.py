"""The end-to-end experiment runner.

One ``run_point`` call is one trial of the paper's methodology, with
nothing short-circuited:

1. allocate cluster nodes for the topology (honouring node types),
2. Mulini generates the bundle for this exact point,
3. the shell interpreter executes the generated ``run.sh``,
4. the deployed system is recovered from cluster state and verified,
5. the simulation plays the trial's warm-up/run/cool-down phases with
   sysstat emitters sampling every host,
6. monitor output and the driver's request log are written on the
   hosts and gathered by the generated ``collect.sh``,
7. metrics are computed from the *collected* files on the control host,
8. the generated ``teardown.sh`` stops everything; nodes are released.

A trial whose error ratio exceeds the TBL error budget is recorded as
DNF — the paper's experiments that "could not complete" (Table 7).

Every trial is also a tracing span tree: one ``trial`` root span plus
one child span per lifecycle phase (``allocate``, ``generate``,
``deploy``, ``verify``, ``simulate``, ``collect``, ``analyze``,
``teardown``), with per-script spans nested under the script-driven
phases.  The spans ride on the returned :class:`TrialResult` (so they
survive process-pool workers) and land in the results database's
``spans`` table; tracing never changes a trial's outcome.

Since the fault plane landed, a trial is one *or more* attempts: the
runner arms its :class:`~repro.faults.FaultInjector` before each
attempt, and when an attempt dies of a transient cause the
:class:`~repro.faults.RetryPolicy` re-runs it after a deterministic
*virtual* backoff (recorded, never slept).  Hosts repeatedly blamed
for failures are quarantined out of the cluster pool.  Every failed
attempt becomes an :class:`AttemptFailure` riding on the result, and
a trial whose budget runs out becomes an enriched DNF row instead of
an exception — the campaign keeps going.  Transient faults abort an
attempt *before* any metric is recorded, so the surviving attempt's
observations are byte-identical to a fault-free run's.
"""

from __future__ import annotations

import math
from dataclasses import replace

from repro.deploy import DeploymentEngine
from repro.deprecation import absorb_positional
from repro.errors import ExperimentError, ReproError, TrialFailed
from repro.experiments.trial import (
    COMPLETED,
    DNF,
    AttemptFailure,
    TrialResult,
    failed_result,
    measurement_window,
)
from repro.experiments.scheduler import TrialScheduler, enumerate_tasks
from repro.faults.injector import as_injector
from repro.faults.retry import GAVE_UP, QUARANTINED, RETRIED, as_policy
from repro.generator import HostPlan, Mulini
from repro.monitoring import (
    attach_monitors,
    collect_sysstat_files,
    collected_bytes,
    render_request_log,
    summarize_log,
    summarize_log_by_state,
)
from repro.monitoring.metrics import TrialMetrics, summarize_records
from repro.obs.tracer import as_tracer, merge_span_exports, worker_name
from repro.sim import ANALYTIC, DES, NTierSimulation, analytic
from repro.vcluster.host import plan_colocation
from repro.workloads.arrivals import request_rate


def analytic_metrics(solved, experiment):
    """Project an :class:`AnalyticResult` into :class:`TrialMetrics`.

    The fluid solution is rates; the DES measurement window reports
    counts.  Counts are the rates integrated over the trial's run
    period (rounded — the drivers log whole requests), and percentiles
    use the solver's exponential response-time approximation capped at
    the client timeout, since no completed request outlives it.
    """
    duration = experiment.trial.run
    offered = solved.throughput
    completed = int(round(solved.goodput * duration))
    timeouts = int(round(offered * solved.timeout_ratio * duration))
    rejections = int(round(offered * solved.rejection_ratio * duration))
    response = solved.response_time
    cap = experiment.timeout

    def quantile(fraction):
        if response <= 0:
            return 0.0
        return min(response * math.log(1.0 / (1.0 - fraction)), cap)

    return TrialMetrics(
        completed=completed,
        errors=timeouts + rejections,
        timeouts=timeouts,
        rejections=rejections,
        duration_s=duration,
        throughput=completed / duration if duration > 0 else 0.0,
        mean_response_s=solved.completed_response_time,
        p50_response_s=quantile(0.50),
        p90_response_s=quantile(0.90),
        p99_response_s=quantile(0.99),
        backlog=int(round(
            getattr(solved, "backlog_rate", 0.0) * duration)),
    )


class ExperimentRunner:
    """Runs experiment points end to end on one virtual cluster.

    Construct with keywords: ``cluster=``, ``resource_model=``,
    ``wait_for_nodes=``, ``tracer=`` (the legacy positional form is
    deprecated).  *wait_for_nodes* makes trials block for cluster nodes
    instead of failing when concurrent trials hold them — the
    shared-cluster mode of parallel scheduling.  *tracer* is threaded
    through every layer (deployment engine, shell interpreter,
    simulation, collector) so one trial produces one span tree.

    *faults* is a :class:`~repro.faults.FaultPlan` (or a ready
    injector) whose events this runner's layers fire; *retry* is a
    :class:`~repro.faults.RetryPolicy` (or a bare attempt count).
    Leaving both unset preserves the historical single-attempt,
    exception-propagating behaviour exactly.

    *tenant* names the campaign this runner works for on a shared
    worker fleet.  Fleet threads interleave trials from many campaigns,
    so the ``worker`` span attribute alone no longer answers "whose
    trial was this?" — a tenant-stamped runner records the campaign on
    every trial span.  ``None`` (the single-campaign default) stamps
    nothing, keeping standalone span trees exactly as before.
    """

    def __init__(self, *args, cluster=None, resource_model=None,
                 wait_for_nodes=False, tracer=None, faults=None,
                 retry=None, tenant=None):
        merged = absorb_positional(
            "ExperimentRunner", ("cluster", "resource_model",
                                 "wait_for_nodes"),
            args, {"cluster": cluster, "resource_model": resource_model,
                   "wait_for_nodes": wait_for_nodes})
        cluster = merged["cluster"]
        resource_model = merged["resource_model"]
        if cluster is None or resource_model is None:
            raise ExperimentError(
                "ExperimentRunner requires cluster= and resource_model="
            )
        self.cluster = cluster
        self.resource_model = resource_model
        self.wait_for_nodes = merged["wait_for_nodes"]
        self.tenant = tenant
        self.tracer = as_tracer(tracer)
        self.faults = as_injector(faults, tracer=self.tracer)
        self.retry_policy = as_policy(retry)
        self.mulini = Mulini(resource_model)
        self.engine = DeploymentEngine(cluster=cluster, tracer=self.tracer,
                                       faults=self.faults)
        # The cluster fires allocation-side fault points itself.
        self.cluster.faults = self.faults
        self._host_failures = {}     # host name -> blamed failure count
        self._probation = {}         # quarantined host -> trials to release
        self._phase = "allocate"

    def clone(self):
        """A runner like this one on a fresh clone of its cluster.

        Scheduler workers each run on a clone, so virtual-host state
        never crosses workers.  The tracer and fault injector are
        shared (arming is thread-local): worker spans all land on the
        same trace plane, and repair bookkeeping stays in one place.
        """
        return ExperimentRunner(cluster=self.cluster.clone(),
                                resource_model=self.resource_model,
                                wait_for_nodes=self.wait_for_nodes,
                                tracer=self.tracer,
                                faults=self.faults,
                                retry=self.retry_policy,
                                tenant=self.tenant)

    def run_point(self, experiment, topology, workload, write_ratio,
                  seed=None, fidelity=DES):
        """Execute one trial; returns a :class:`TrialResult`.

        *seed* overrides the experiment's seed (used for repetitions);
        it flows into the generated driver.properties, so the whole
        trial replays under the replacement seed.

        *fidelity* selects the solver tier: ``"des"`` runs the full
        eight-phase discrete-event lifecycle; ``"analytic"`` solves the
        point on the fluid fast path (:mod:`repro.sim.analytic`) —
        no allocation, no generation, no retries — in microseconds.

        With a retry policy, a transiently-failed attempt is re-run
        (after deterministic virtual backoff) up to the policy's
        budget; when the budget runs out the trial becomes an enriched
        DNF result instead of an exception, unless the policy says
        ``record_dnf=False`` — the no-retry default, which re-raises
        exactly like the pre-fault-plane runner did.
        """
        if seed is not None and seed != experiment.seed:
            experiment = replace(experiment, seed=seed)
        if fidelity == ANALYTIC:
            return self._run_analytic_point(experiment, topology,
                                            workload, write_ratio)
        if fidelity != DES:
            raise ExperimentError(
                f"run_point executes fidelity 'des' or 'analytic', "
                f"not {fidelity!r} (resolve 'auto' upstream)"
            )
        policy = self.retry_policy
        trial_key = (experiment.name, topology.label(), workload,
                     write_ratio, experiment.seed)
        failures = []
        exports = []
        result = None
        error = None
        attempts_made = 0
        for attempt in range(policy.max_attempts):
            attempts_made = attempt + 1
            self.faults.arm(trial_key, attempt)
            try:
                result = self._run_attempt(experiment, topology, workload,
                                           write_ratio, attempt, exports)
                break
            except ReproError as caught:
                error = caught
                retrying = self._note_failure(caught, attempt, policy,
                                              failures, exports)
                # Undo repairable fault mutations (corrupted archives)
                # before the next attempt — or before the next trial
                # reuses the shared control host.
                self.faults.repair(trial_key)
                if not retrying:
                    break
            finally:
                self.faults.disarm()
        if result is None:
            if not policy.record_dnf:
                raise error
            partial = error.partial if isinstance(error, TrialFailed) \
                else None
            result = failed_result(
                experiment, topology, workload, write_ratio,
                experiment.seed, failures, attempts_made,
                partial=partial,
                machine_count=topology.machine_count())
            self.tracer.count("runner.trials_dnf_failed", 1)
        else:
            if failures:
                self.tracer.count("runner.trials_recovered", 1)
            if self._probation:
                # Only a trial whose attempt actually completed counts
                # toward probation — a gave-up DNF proves nothing about
                # the cluster's health.
                self._probation_tick(policy, exports)
        result.attempts = attempts_made
        result.failures = failures
        result.spans = merge_span_exports(exports)
        return result

    def _run_attempt(self, experiment, topology, workload, write_ratio,
                     attempt, exports):
        """One attempt of one trial: the full eight-phase lifecycle.

        Each attempt is its own ``trial`` span tree; the flattened tree
        is appended to *exports* whether the attempt succeeds or dies,
        so failed attempts stay visible in ``repro trace``.
        """
        tracer = self.tracer
        self._phase = "allocate"
        trial_span = None
        try:
            with tracer.span(
                    "trial",
                    experiment=experiment.name,
                    topology=topology.label(),
                    workload=workload,
                    write_ratio=write_ratio,
                    seed=experiment.seed,
                    worker=worker_name()) as trial_span:
                if attempt:
                    trial_span.annotate(attempt=attempt + 1)
                if self.tenant is not None:
                    trial_span.annotate(tenant=self.tenant)
                tier_node_types = {}
                if experiment.db_node_type is not None:
                    tier_node_types["db"] = self.cluster.platform.node_type(
                        experiment.db_node_type).name
                ratio = getattr(experiment, "consolidation_ratio", 1)
                with tracer.span("allocate",
                                 wait=self.wait_for_nodes) as alloc_span:
                    allocation = self.cluster.allocate(
                        topology, tier_node_types=tier_node_types,
                        wait=self.wait_for_nodes,
                        consolidation_ratio=ratio)
                    if allocation.physical_hosts:
                        tracer.annotate(
                            consolidation=ratio,
                            physical_hosts=len(allocation.physical_hosts))
                    tracer.annotate(nodes=sorted(
                        {allocation.client.name}
                        | {h.name for h in allocation.all_server_hosts()}))
                if self.wait_for_nodes:
                    tracer.count("runner.node_wait_s", alloc_span.duration)
                try:
                    result = self._run_allocated(allocation, experiment,
                                                 topology, workload,
                                                 write_ratio)
                    trial_span.annotate(status=result.status)
                finally:
                    self.cluster.release(allocation)
            return result
        finally:
            if trial_span is not None:
                exports.append(tracer.export(trial_span))

    def _note_failure(self, error, attempt, policy, failures, exports):
        """Record one failed attempt; returns whether to retry.

        Injected-fault attribution comes from the injector's fired
        events (the exception itself usually surfaces from a layer
        downstream of the fault); organic failures are classified by
        the policy's transient error classes.  Hosts blamed by fired
        events accumulate toward quarantine.
        """
        fired = self.faults.fired_this_attempt()
        if fired:
            transient = all(event.spec.transient for event in fired)
        else:
            transient = policy.is_transient(error)
        retrying = transient and attempt + 1 < policy.max_attempts
        resolution = RETRIED if retrying else GAVE_UP
        backoff = policy.backoff_s(attempt + 1) if retrying else 0.0
        fault_kind = fired[0].kind if fired else None
        fault_host = next((e.host for e in fired if e.host), None)
        failures.append(AttemptFailure(
            attempt=attempt + 1,
            phase=self._phase,
            cause=str(error),
            error_type=type(error).__name__,
            transient=transient,
            resolution=resolution,
            fault_kind=fault_kind,
            host=fault_host,
            backoff_s=backoff,
        ))
        self.tracer.count("runner.attempts_failed", 1)
        if retrying:
            self.tracer.count("runner.attempts_retried", 1)
            # Backoff is virtual time: recorded for the trace, never
            # slept — determinism forbids wall-clock coupling.
            self.tracer.count("runner.backoff_virtual_s", backoff)
        if fault_host is not None:
            self._blame_host(fault_host, fault_kind, attempt, policy,
                             failures, exports)
        return retrying

    def _blame_host(self, host_name, fault_kind, attempt, policy,
                    failures, exports):
        # Only pool nodes can be quarantined; the shared control and
        # client hosts are structural — losing them ends the campaign,
        # not the host.
        if host_name in (self.cluster.control.name,
                         self.cluster.client.name):
            return
        count = self._host_failures.get(host_name, 0) + 1
        self._host_failures[host_name] = count
        if count < policy.quarantine_after:
            return
        reason = (f"{count} failed attempts "
                  f"(last: {fault_kind or 'unattributed'})")
        if not self.cluster.quarantine(host_name, reason=reason):
            return
        if policy.probation_trials:
            self._probation[host_name] = policy.probation_trials
        with self.tracer.span("quarantine", host=host_name,
                              failures=count, reason=reason) as span:
            pass
        records = self.tracer.export(span)
        if records:
            exports.append(records)
        self.tracer.count("runner.hosts_quarantined", 1)
        failures.append(AttemptFailure(
            attempt=attempt + 1,
            phase="quarantine",
            cause=f"host {host_name} quarantined: {reason}",
            error_type="HostQuarantined",
            transient=False,
            resolution=QUARANTINED,
            fault_kind=fault_kind,
            host=host_name,
        ))

    def _probation_tick(self, policy, exports):
        """Count one completed trial toward every probation sentence.

        A quarantined host under probation is released back into the
        cluster pool once *probation_trials* trials complete without it
        — evidence the fleet is healthy enough to risk the host again.
        The released host's blame count restarts one below the
        quarantine threshold, so a single fresh blame re-quarantines
        it immediately (parole, not a pardon).
        """
        for host_name in sorted(self._probation):
            remaining = self._probation[host_name] - 1
            if remaining > 0:
                self._probation[host_name] = remaining
                continue
            del self._probation[host_name]
            if not self.cluster.release_quarantine(host_name):
                continue
            self._host_failures[host_name] = policy.quarantine_after - 1
            with self.tracer.span(
                    "probation-release", host=host_name,
                    served=policy.probation_trials) as span:
                pass
            records = self.tracer.export(span)
            if records:
                exports.append(records)
            self.tracer.count("runner.hosts_released", 1)

    def run_task(self, task):
        """Execute one enumerated :class:`TrialTask`."""
        return self.run_point(task.experiment, task.topology,
                              task.workload, task.write_ratio,
                              seed=task.seed,
                              fidelity=getattr(task, "fidelity", DES))

    # -- the analytic fast path --------------------------------------------

    def _run_analytic_point(self, experiment, topology, workload,
                            write_ratio):
        """One trial on the fluid tier: preview hosts, solve, summarize.

        The trial span carries a ``fidelity`` attribute (DES spans do
        not, keeping their trees byte-identical to pre-tier runs) and
        only the ``simulate``/``analyze`` phases — there is nothing to
        allocate, generate, or tear down.
        """
        tracer = self.tracer
        exports = []
        trial_span = None
        try:
            with tracer.span(
                    "trial",
                    experiment=experiment.name,
                    topology=topology.label(),
                    workload=workload,
                    write_ratio=write_ratio,
                    seed=experiment.seed,
                    worker=worker_name(),
                    fidelity=ANALYTIC) as trial_span:
                if self.tenant is not None:
                    trial_span.annotate(tenant=self.tenant)
                tier_node_types = {}
                if experiment.db_node_type is not None:
                    tier_node_types["db"] = self.cluster.platform.node_type(
                        experiment.db_node_type).name
                arrival = getattr(experiment, "arrival", None)
                analytic.require_analytic_support(arrival)
                ratio = getattr(experiment, "consolidation_ratio", 1)
                with tracer.span("simulate"):
                    preview = self.cluster.preview_allocation(
                        topology, tier_node_types=tier_node_types)
                    # The DES allocator consolidates hosts in
                    # all_server_hosts() (web, app, db) order; the
                    # preview flattened the same way yields the
                    # identical packing, so both tiers model the same
                    # interference.
                    names = [name for tier in ("web", "app", "db")
                             for name, _node in preview.get(tier, ())]
                    colocation = plan_colocation(names, ratio)
                    model = analytic.ntier_model(
                        experiment.benchmark, preview, write_ratio,
                        think_time=experiment.think_time,
                        timeout=experiment.timeout,
                        app_server=experiment.app_server,
                        colocation=colocation)
                    if arrival is not None:
                        rate = request_rate(arrival, workload,
                                            experiment.think_time)
                        solved = analytic.solve_open(model, rate)
                        tracer.annotate(arrival=arrival.kind,
                                        rate=round(rate, 6))
                    else:
                        solved = analytic.solve_model(model, workload)
                    tracer.annotate(iterations=solved.iterations,
                                    converged=solved.converged)
                with tracer.span("analyze"):
                    metrics = analytic_metrics(solved, experiment)
                    host_cpu = {
                        name: utilization * 100.0
                        for name, utilization
                        in solved.station_utilization.items()
                        if not name.endswith(":disk")
                    }
                    tier_of_host = {name: tier
                                    for tier, hosts in preview.items()
                                    for name, _node in hosts}
                    tier_of_host[self.cluster.client.name] = "client"
                    for member, placed in colocation.items():
                        if member in host_cpu:
                            key = f"{placed.physical}/{member}"
                            host_cpu[key] = host_cpu[member]
                            tier_of_host[key] = "physical"
                status = COMPLETED
                if metrics.error_ratio > experiment.slo.error_ratio:
                    status = DNF
                    tracer.annotate(dnf_cause=f"error ratio "
                                    f"{metrics.error_ratio:.3f} exceeds "
                                    f"budget "
                                    f"{experiment.slo.error_ratio:.3f}")
                trial_span.annotate(status=status)
        finally:
            if trial_span is not None:
                exports.append(tracer.export(trial_span))
        result = TrialResult(
            experiment_name=experiment.name,
            benchmark=experiment.benchmark,
            platform=experiment.platform,
            topology_label=topology.label(),
            workload=workload,
            write_ratio=write_ratio,
            seed=experiment.seed,
            status=status,
            metrics=metrics,
            host_cpu=host_cpu,
            tier_of_host=tier_of_host,
            machine_count=topology.machine_count(),
            fidelity=ANALYTIC,
            scenario=getattr(experiment, "scenario", ""),
        )
        result.spans = merge_span_exports(exports)
        return result

    def run_experiment(self, experiment, *, on_result=None, jobs=1,
                       backend=None, fidelity=DES):
        """Run every sweep point of *experiment*, with repetitions.

        Each repetition replays the point under seed, seed+1, ... so
        saturation noise can be quantified (the paper's "significant
        random fluctuations" at the CPU-saturated cells).

        The sweep is first enumerated into tasks, then executed: with
        ``jobs=1`` (the default) sequentially on this runner, otherwise
        on a :class:`TrialScheduler` pool whose workers each clone this
        runner.  Results arrive in enumeration order either way, and
        trial metrics are identical across ``jobs`` settings because
        every trial's random streams derive from ``(seed + repetition)``
        alone — tracing on or off.  *fidelity* selects the solver tier
        for every task of the sweep (``"des"`` or ``"analytic"``).
        """
        tasks = enumerate_tasks(experiment, fidelity=fidelity)
        if jobs == 1:
            results = []
            for task in tasks:
                result = self.run_task(task)
                results.append(result)
                if on_result is not None:
                    on_result(result)
            return results
        scheduler = TrialScheduler(self.clone, jobs=jobs, backend=backend,
                                   tracer=self.tracer)
        return scheduler.run(tasks, on_result=on_result)

    # -- internals ---------------------------------------------------------

    def _run_allocated(self, allocation, experiment, topology, workload,
                       write_ratio):
        tracer = self.tracer
        self._phase = "generate"
        with tracer.span("generate"):
            plan = HostPlan.from_allocation(allocation)
            bundle = self.mulini.generate(experiment, topology, workload,
                                          write_ratio, host_plan=plan)
            tracer.annotate(experiment_id=bundle.experiment_id,
                            files=bundle.file_count(),
                            script_lines=bundle.script_line_total(),
                            config_lines=bundle.config_line_total())
        self._phase = "deploy"
        try:
            with tracer.span("deploy"):
                deployment = self.engine.deploy(bundle, allocation)
            system = deployment.system
            self._phase = "verify"
            with tracer.span("verify"):
                self.engine.verify(system, experiment, topology, workload,
                                   write_ratio)
        except ReproError:
            # A half-deployed attempt must not leave processes or
            # half-written results behind on the shared client/control
            # hosts for a retry (or the next trial) to trip over.
            self.engine.cleanup_failed(bundle, allocation)
            raise
        self._phase = "simulate"
        window = measurement_window(experiment.trial)
        open_loop = getattr(experiment, "arrival", None) is not None
        with tracer.span("simulate"):
            harness = NTierSimulation(system, tracer=tracer)
            emitters = attach_monitors(harness)
            records = harness.run()
            for emitter in emitters:
                emitter.stop()
                emitter.flush()
            # The driver writes its per-request log where
            # driver.properties said it would; collect.sh ships it to
            # the control host.  Open-loop trials stamp the backlog
            # trailer (in-flight requests are invisible to the parsed
            # log); closed-loop logs stay byte-identical to pre-
            # scenario runs.
            system.client_host.fs.write(
                system.driver.log_path,
                render_request_log(records,
                                   window=window if open_loop else None))
            tracer.annotate(requests=len(records),
                            sim_events=harness.sim.events_processed,
                            monitors=len(emitters))
        control = allocation.control
        try:
            self._phase = "collect"
            with tracer.span("collect"):
                results_dir = self.engine.collect(deployment)
                log_path = f"{results_dir}/requests.log"
                if not control.fs.is_file(log_path):
                    raise ExperimentError(
                        f"collect.sh did not deliver the request log for "
                        f"{bundle.experiment_id}"
                    )
                collected_log = control.fs.read(log_path)
                sys_series = collect_sysstat_files(control, results_dir,
                                                   tracer=tracer,
                                                   faults=self.faults)
                data_bytes = collected_bytes(control, results_dir)
                tracer.annotate(bytes=data_bytes, hosts=len(sys_series))
            self._phase = "analyze"
            with tracer.span("analyze"):
                metrics = summarize_log(collected_log, window)
                per_state = summarize_log_by_state(collected_log, window)
                host_cpu = {host: series.mean("cpu", window)
                            for host, series in sys_series.items()}
                tier_of_host = self._tier_map(system)
                self._surface_colocation(allocation.physical_hosts,
                                         host_cpu, tier_of_host)
            self._phase = "teardown"
            with tracer.span("teardown"):
                self.engine.teardown(deployment)
        except TrialFailed:
            raise
        except ReproError as error:
            # The run window already happened: salvage its driver-side
            # measurements so even a gave-up trial contributes partial
            # observations (TrialFailed.partial -> the DNF row).
            self.engine.cleanup_failed(bundle, allocation)
            raise TrialFailed(
                f"trial lost after its run window in {self._phase} "
                f"phase: {error}",
                partial=summarize_records(records, window),
                cause=error,
            ) from error
        status = COMPLETED
        if metrics.error_ratio > experiment.slo.error_ratio:
            status = DNF
            tracer.annotate(dnf_cause=f"error ratio "
                            f"{metrics.error_ratio:.3f} exceeds budget "
                            f"{experiment.slo.error_ratio:.3f}")
        return TrialResult(
            experiment_name=experiment.name,
            benchmark=experiment.benchmark,
            platform=experiment.platform,
            topology_label=topology.label(),
            workload=workload,
            write_ratio=write_ratio,
            seed=experiment.seed,
            status=status,
            metrics=metrics,
            host_cpu=host_cpu,
            tier_of_host=tier_of_host,
            per_state=per_state,
            collected_bytes=data_bytes,
            script_lines=bundle.script_line_total(),
            config_lines=bundle.config_line_total(),
            generated_files=bundle.file_count(),
            machine_count=allocation.machine_count(),
            scenario=getattr(experiment, "scenario", ""),
        )

    @staticmethod
    def _surface_colocation(physical_hosts, host_cpu, tier_of_host):
        """Mirror each consolidated tenant's CPU under its physical
        host (``phys-0/node-3`` rows, tier ``physical``) so the
        bottleneck report can attribute a tenant's saturation to its
        cotenants.  Dedicated trials add no rows — their observation
        tables stay byte-identical to pre-scenario runs.
        """
        for physical in physical_hosts:
            for member in physical.tenant_names():
                if member in host_cpu:
                    key = f"{physical.name}/{member}"
                    host_cpu[key] = host_cpu[member]
                    tier_of_host[key] = "physical"

    @staticmethod
    def _tier_map(system):
        tiers = {}
        for web in system.web_servers:
            tiers[web.host.name] = "web"
        for app in system.app_servers:
            tiers[app.host.name] = "app"
        for backend in system.db_backends:
            tiers[backend.host.name] = "db"
        tiers[system.client_host.name] = "client"
        return tiers
