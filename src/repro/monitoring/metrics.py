"""Application-level metrics: response times, throughput, error ratios.

Mulini parameterizes the workload driver "to collect specified metrics,
such as response time for each user request and overall throughput"
(Section II).  This module is both sides of that pipe: it renders the
driver's per-request log from simulation records and summarizes either
records or a parsed log into trial metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import MonitoringError
from repro.sim.ntier import OK, REJECTED, TIMEOUT


@dataclass(frozen=True)
class TrialMetrics:
    """Summary statistics for one trial's run window."""

    completed: int
    errors: int
    timeouts: int
    rejections: int
    duration_s: float
    throughput: float            # successful requests per second
    mean_response_s: float
    p50_response_s: float
    p90_response_s: float
    p99_response_s: float
    #: Open-loop queue growth: requests that arrived inside the window
    #: but had not left by its end.  Bounded by the population for
    #: closed-loop trials; grows without bound when an open-loop
    #: arrival process outruns the system.
    backlog: int = 0

    @property
    def total(self):
        return self.completed + self.errors

    @property
    def error_ratio(self):
        if self.total == 0:
            return 0.0
        return self.errors / self.total

    def satisfies(self, slo):
        """Check against a TBL ServiceLevelObjective."""
        return (self.error_ratio <= slo.error_ratio
                and self.mean_response_s <= slo.response_time)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[index]


def backlog_size(records, window):
    """Queue growth over *window*: arrivals minus departures, floored
    at zero.  In-flight records (NaN finish) count as arrivals that
    never departed, which is exactly the open-loop overload signal."""
    start, end = window
    issued = finished = 0
    for record in records:
        if start <= record.issued_at <= end:
            issued += 1
        done = record.finished_at
        if done == done and start <= done <= end:
            finished += 1
    return max(0, issued - finished)


def summarize_records(records, window):
    """Summarize simulation RequestRecords finishing inside *window*."""
    start, end = window
    if end <= start:
        raise MonitoringError(f"empty measurement window {window}")
    ok_times = []
    timeouts = 0
    rejections = 0
    for record in records:
        finished = record.finished_at
        if finished != finished:      # NaN: still in flight at sim end
            continue
        if not start <= finished <= end:
            continue
        if record.status == OK:
            ok_times.append(record.response_time())
        elif record.status == TIMEOUT:
            timeouts += 1
        elif record.status == REJECTED:
            rejections += 1
        else:
            raise MonitoringError(f"unknown record status {record.status!r}")
    ok_times.sort()
    duration = end - start
    completed = len(ok_times)
    mean = sum(ok_times) / completed if completed else 0.0
    return TrialMetrics(
        completed=completed,
        errors=timeouts + rejections,
        timeouts=timeouts,
        rejections=rejections,
        duration_s=duration,
        throughput=completed / duration,
        mean_response_s=mean,
        p50_response_s=_percentile(ok_times, 0.50),
        p90_response_s=_percentile(ok_times, 0.90),
        p99_response_s=_percentile(ok_times, 0.99),
        backlog=backlog_size(records, window),
    )


def summarize_by_state(records, window):
    """Per-interaction breakdown inside *window*.

    Returns ``{state: {"count", "errors", "mean_response_s"}}`` over
    requests finishing in the window — the per-request measurements the
    driver collects, grouped by the 26/24 interaction states.
    """
    start, end = window
    if end <= start:
        raise MonitoringError(f"empty measurement window {window}")
    by_state = {}
    for record in records:
        finished = record.finished_at
        if finished != finished or not start <= finished <= end:
            continue
        bucket = by_state.setdefault(
            record.state, {"count": 0, "errors": 0, "_rt_sum": 0.0})
        if record.status == OK:
            bucket["count"] += 1
            bucket["_rt_sum"] += record.response_time()
        else:
            bucket["errors"] += 1
    for state, bucket in by_state.items():
        count = bucket["count"]
        bucket["mean_response_s"] = bucket.pop("_rt_sum") / count \
            if count else 0.0
    return by_state


# --------------------------------------------------------------------------
# Driver request log: the artifact collect.sh ships to the control host.
# --------------------------------------------------------------------------

LOG_HEADER = "#requests issued_at state status response_ms"


def render_request_log(records, window=None):
    """Render per-request driver log lines from simulation records.

    With *window*, a ``#backlog N`` trailer records the queue growth
    over the measurement window — the only observation that in-flight
    records (which the per-line body necessarily omits) contribute, so
    it must be stamped at render time while they are still visible.
    """
    lines = [LOG_HEADER]
    for record in records:
        finished = record.finished_at
        if finished != finished:
            continue                   # in flight when the trial ended
        response_ms = record.response_time() * 1000.0
        lines.append(
            f"{record.issued_at:.4f} {record.state} {record.status} "
            f"{response_ms:.2f}"
        )
    if window is not None:
        lines.append(f"#backlog {backlog_size(records, window)}")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class LoggedRequest:
    issued_at: float
    state: str
    status: str
    response_s: float

    @property
    def finished_at(self):
        return self.issued_at + self.response_s


def parse_request_log(text):
    """Parse a driver request log back into :class:`LoggedRequest`s."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith("#requests"):
        raise MonitoringError("not a driver request log")
    requests = []
    for line in lines[1:]:
        line = line.strip()
        if not line or line.startswith("#"):
            continue                  # trailer comments (e.g. #backlog)
        parts = line.split()
        if len(parts) != 4:
            raise MonitoringError(f"malformed log line: {line!r}")
        requests.append(LoggedRequest(
            issued_at=float(parts[0]),
            state=parts[1],
            status=parts[2],
            response_s=float(parts[3]) / 1000.0,
        ))
    return requests


class _RecordView:
    """Adapter: a LoggedRequest exposed with the RequestRecord surface."""

    __slots__ = ("state", "status", "issued_at", "finished_at")

    def __init__(self, logged):
        self.state = logged.state
        self.status = logged.status
        self.issued_at = logged.issued_at
        self.finished_at = logged.finished_at

    def response_time(self):
        return self.finished_at - self.issued_at


def parse_log_backlog(text):
    """The ``#backlog N`` trailer of a request log, or ``None`` when
    the log predates the open-loop plane."""
    for line in text.splitlines():
        if line.startswith("#backlog "):
            try:
                return int(line.split()[1])
            except (IndexError, ValueError):
                raise MonitoringError(
                    f"malformed backlog trailer: {line!r}"
                ) from None
    return None


def summarize_log(text, window):
    """Summarize a collected request log over *window*.

    The backlog comes from the log's own trailer when present — the
    rendered body omits in-flight requests, so recomputing from parsed
    lines alone would undercount open-loop queue growth.
    """
    requests = parse_request_log(text)
    metrics = summarize_records([_RecordView(r) for r in requests], window)
    recorded = parse_log_backlog(text)
    if recorded is not None and recorded != metrics.backlog:
        metrics = replace(metrics, backlog=recorded)
    return metrics


def summarize_log_by_state(text, window):
    """Per-interaction breakdown of a collected request log."""
    requests = parse_request_log(text)
    return summarize_by_state([_RecordView(r) for r in requests], window)
