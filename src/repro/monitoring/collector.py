"""Parsing collected monitor output back into time series.

After a trial, the generated ``collect.sh`` copies every host's sysstat
file (and the driver's request log) to the control host; the collector
turns those text files back into queryable series.  "Performance data
collected from the participating hosts is put into a database for
analysis" (Section II) — this is the parsing stage in front of that
database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MonitoringError
from repro.monitoring.sysstat import HEADER_PREFIX
from repro.obs.tracer import as_tracer


@dataclass
class SysstatSeries:
    """One host's monitor output as per-metric time series."""

    host: str
    interval: float
    metrics: tuple
    samples: dict = field(default_factory=dict)   # metric -> [(t, values)]

    def known_metrics(self):
        """Every metric this series knows: declared in the header or
        actually sampled."""
        return sorted(set(self.metrics) | set(self.samples))

    def series(self, metric):
        """Sample points of *metric*; :class:`MonitoringError` (never
        ``KeyError``) when the metric was neither declared nor sampled."""
        try:
            return self.samples[metric]
        except KeyError:
            raise MonitoringError(
                f"host {self.host} has no series for metric {metric!r}; "
                f"known: {self.known_metrics()}"
            ) from None

    def values(self, metric, window=None):
        """First-channel values of *metric*, optionally inside a window.

        A window that selects no samples raises
        :class:`MonitoringError` — a silent empty result would read as
        "0.0 utilization" downstream, masking a trial whose measurement
        window missed every monitor tick.
        """
        points = self.series(metric)
        if window is not None:
            start, end = window
            points = [(t, v) for t, v in points if start <= t <= end]
            if not points:
                raise MonitoringError(
                    f"host {self.host}: window ({start:g}, {end:g}) "
                    f"selects no {metric!r} samples (interval "
                    f"{self.interval:g}s, known metrics: "
                    f"{self.known_metrics()})"
                )
        return [v[0] for _t, v in points]

    def mean(self, metric, window=None):
        values = self.values(metric, window)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def peak(self, metric, window=None):
        values = self.values(metric, window)
        if not values:
            return 0.0
        return max(values)

    def byte_size(self):
        """Approximate raw file size this series was parsed from."""
        return sum(len(str(t)) + 12 for points in self.samples.values()
                   for t, _v in points)


def parse_sysstat(text):
    """Parse one sysstat file; returns :class:`SysstatSeries`."""
    lines = text.splitlines()
    if not lines or not lines[0].startswith(HEADER_PREFIX):
        raise MonitoringError("not a sysstat file (missing header)")
    header = {}
    for token in lines[0].split()[2:]:
        if "=" not in token:
            raise MonitoringError(f"malformed header token {token!r}")
        key, value = token.split("=", 1)
        header[key] = value
    try:
        series = SysstatSeries(
            host=header["host"],
            interval=float(header["interval"]),
            metrics=tuple(header["metrics"].split(",")),
        )
    except KeyError as missing:
        raise MonitoringError(f"sysstat header missing {missing}")
    for line in lines[1:]:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise MonitoringError(f"malformed sample line: {line!r}")
        try:
            timestamp = float(parts[0])
            metric = parts[1]
            values = tuple(float(p) for p in parts[2:])
        except ValueError:
            raise MonitoringError(
                f"malformed sample line: {line!r}"
            ) from None
        series.samples.setdefault(metric, []).append((timestamp, values))
    return series


def collect_sysstat_files(control_host, results_dir, tracer=None,
                          faults=None):
    """Parse every ``*.sysstat.dat`` under *results_dir* on the control
    host; returns ``{host_name: SysstatSeries}``.

    *faults* is the trial's fault injector: a ``monitor-truncate``
    armed for this trial cuts a collected file mid-sample right before
    parsing, so the damage surfaces as a :class:`MonitoringError`
    rather than silently thinner series.
    """
    tracer = as_tracer(tracer)
    collected = {}
    files = 0
    with tracer.span("collect.parse", results_dir=results_dir):
        for path in control_host.fs.walk_files(results_dir):
            if not path.endswith(".sysstat.dat"):
                continue
            if faults is not None:
                faults.fire("collect.sysstat", control=control_host,
                            path=path)
            series = parse_sysstat(control_host.fs.read(path))
            collected[series.host] = series
            files += 1
        tracer.annotate(files=files, hosts=len(collected))
    return collected


def collected_bytes(control_host, results_dir):
    """Total bytes of performance data gathered for one trial —
    the Table 3 'collected perf. data size' accounting."""
    return sum(control_host.fs.size(path)
               for path in control_host.fs.walk_files(results_dir))
