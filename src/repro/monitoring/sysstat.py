"""sysstat-style system monitors driven by simulation telemetry.

The paper's experiments record CPU, memory, network and disk metrics
with the sysstat suite on every host (Sections II/III.A); the collected
files are "typically on the order of gigabytes for each set of
experiments" (Table 3).  Here, each deployed ``sar`` process gets an
emitter that samples its host's simulated resources every interval and
renders a sar-like text file into the host's filesystem, where the
generated ``collect.sh`` picks it up — the full monitoring pipeline of
the paper, end to end.

File format (one header, then one line per sample and metric)::

    #sysstat 6.0.2 host=node-3 interval=1.0 metrics=cpu,memory,disk,network
    1.0 cpu 62.41
    1.0 memory 214528
    1.0 disk 132.0
    1.0 network 210.5 198.2
"""

from __future__ import annotations

from repro.errors import MonitoringError

HEADER_PREFIX = "#sysstat"

#: Synthetic memory model: resident set grows with concurrent requests.
BASE_MEMORY_KB = 184_320          # ~180 MB of daemons and caches
PER_JOB_MEMORY_KB = 512

#: I/O models per request completed at the host.
DISK_IO_PER_DB_REQUEST = 4.0      # random reads + log write
DISK_IO_PER_OTHER_REQUEST = 0.2
NET_KB_PER_REQUEST = 6.0          # request + response payloads


class HostSampler:
    """Samples one host's simulated resources.

    *station* may be None (client/controller-only hosts); those report a
    small baseline utilization so their sar files are not empty.
    """

    def __init__(self, sim, station=None, is_database=False,
                 disk_station=None):
        self.sim = sim
        self.station = station
        self.is_database = is_database
        self.disk_station = disk_station
        self._last_reading = station.area_reading() if station else None
        self._last_completed = station.completed if station else 0
        self._last_disk_reading = disk_station.area_reading() \
            if disk_station else None
        self._last_disk_completed = disk_station.completed \
            if disk_station else 0

    def sample(self):
        if self.station is None:
            return {"cpu": (1.5,), "memory": (BASE_MEMORY_KB,),
                    "disk": (0.5, 0.1), "network": (2.0, 2.0)}
        t0, area0 = self._last_reading
        cpu = self.station.utilization_since(t0, area0) * 100.0
        self._last_reading = self.station.area_reading()
        dt = max(self._last_reading[0] - t0, 1e-9)
        completed = self.station.completed - self._last_completed
        self._last_completed = self.station.completed
        rate = completed / dt
        memory = BASE_MEMORY_KB + PER_JOB_MEMORY_KB * \
            self.station.resident_jobs
        return {
            "cpu": (round(cpu, 2),),
            "memory": (memory,),
            "disk": self._disk_sample(rate, dt),
            "network": (round(rate * NET_KB_PER_REQUEST, 2),
                        round(rate * NET_KB_PER_REQUEST, 2)),
        }

    def _disk_sample(self, request_rate, dt):
        """(tps, %util): measured from the disk station when the host
        has one (database backends), synthesized otherwise."""
        if self.disk_station is None:
            io_factor = DISK_IO_PER_DB_REQUEST if self.is_database \
                else DISK_IO_PER_OTHER_REQUEST
            tps = request_rate * io_factor
            return (round(tps, 2), round(min(tps * 0.2, 100.0), 2))
        t0, area0 = self._last_disk_reading
        util = self.disk_station.utilization_since(t0, area0) * 100.0
        self._last_disk_reading = self.disk_station.area_reading()
        operations = self.disk_station.completed - self._last_disk_completed
        self._last_disk_completed = self.disk_station.completed
        return (round(operations / dt, 2), round(util, 2))


class SysstatEmitter:
    """One deployed sar process: samples on schedule, renders its file."""

    def __init__(self, sim, monitor, sampler):
        self.sim = sim
        self.monitor = monitor            # deploy.state.MonitorProcess
        self.sampler = sampler
        self.lines = [
            f"{HEADER_PREFIX} 6.0.2 host={monitor.host.name} "
            f"interval={monitor.interval:g} "
            f"metrics={','.join(monitor.metrics)}"
        ]
        self._stopped = False

    def start(self):
        self.sim.schedule(self.monitor.interval, self._tick)
        return self

    def _tick(self):
        if self._stopped:
            return
        values = self.sampler.sample()
        timestamp = round(self.sim.now, 3)
        for metric in self.monitor.metrics:
            if metric not in values:
                raise MonitoringError(
                    f"sampler produced no value for metric {metric!r}"
                )
            rendered = " ".join(f"{v:g}" for v in values[metric])
            self.lines.append(f"{timestamp:g} {metric} {rendered}")
        self.sim.schedule(self.monitor.interval, self._tick)

    def stop(self):
        self._stopped = True

    def flush(self):
        """Write the collected samples to the host's output file."""
        content = "\n".join(self.lines) + "\n"
        self.monitor.host.fs.write(self.monitor.output_path, content)
        return len(content)


def attach_monitors(sim_harness):
    """Create one emitter per deployed sar process of a harness's system.

    Database hosts use the database I/O model; hosts without stations
    (the client) use the idle sampler.
    """
    system = sim_harness.system
    db_hosts = {backend.host.name for backend in system.db_backends}
    emitters = []
    for monitor in system.monitors:
        station = sim_harness.stations_by_host.get(monitor.host.name)
        disk = getattr(sim_harness, "disk_by_host", {}).get(
            monitor.host.name)
        sampler = HostSampler(sim_harness.sim, station=station,
                              is_database=monitor.host.name in db_hosts,
                              disk_station=disk)
        emitters.append(
            SysstatEmitter(sim_harness.sim, monitor, sampler).start()
        )
    return emitters
