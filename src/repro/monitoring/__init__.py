"""Monitoring: sysstat emitters, collectors and application metrics."""

from repro.monitoring.collector import (
    SysstatSeries,
    collect_sysstat_files,
    collected_bytes,
    parse_sysstat,
)
from repro.monitoring.metrics import (
    LoggedRequest,
    TrialMetrics,
    parse_request_log,
    render_request_log,
    summarize_by_state,
    summarize_log,
    summarize_log_by_state,
    summarize_records,
)
from repro.monitoring.sysstat import (
    HostSampler,
    SysstatEmitter,
    attach_monitors,
)

__all__ = [
    "SysstatSeries",
    "collect_sysstat_files",
    "collected_bytes",
    "parse_sysstat",
    "LoggedRequest",
    "TrialMetrics",
    "parse_request_log",
    "render_request_log",
    "summarize_by_state",
    "summarize_log",
    "summarize_log_by_state",
    "summarize_records",
    "HostSampler",
    "SysstatEmitter",
    "attach_monitors",
]
