"""Verifier/scorer: rank candidate patches, judge their shadow trials.

DiPerF's lesson is that evaluating a candidate fix is itself a
measurement campaign; this module is the *judgement* half of that
campaign.  The pipeline runs the shadow trials (analytic pre-screens,
DES confirmations) through the ordinary scheduler machinery; here live
the pure functions that turn those observations into a ranking and an
accept/reject decision — pure so a resumed heal, re-reading the same
stored trials, reaches byte-identical verdicts.

Scoring is expected improvement over trial cost:

- a tier promotion's gain is how far the analytically *predicted*
  supported load moves toward the heal target;
- a fault-strip or quarantine-release's gain is the whole gap between
  the measured baseline and the target (the fault, not capacity, is
  what's in the way);
- cost is 1 plus the servers a promotion adds plus the DES
  confirmation trials the candidate needs.

The verifier never trusts the analytic tier with the final word: a
candidate is *confirmed* only when its DES shadow trials complete
within the SLO and strictly improve on the measured baseline at the
diagnosed rung.
"""

from __future__ import annotations

from repro.core.bottleneck import slo_violated


def progression_supported(results, slo, target=None):
    """Largest workload supported by an *unbroken* passing ladder.

    Unlike ``PerformanceMap.supported_users`` (the max passing rung
    regardless of holes), healing cares about progression: a ladder
    that fails at u=100 but passes at u=400 is not "supporting 400
    users" — its low rungs are broken, which is exactly what heal must
    notice.  Returns the best such workload across all ``(topology,
    write_ratio)`` ladders in *results*, or 0 when even the first rung
    fails.
    """
    groups = {}
    for result in results:
        if target is not None and result.workload > target:
            continue
        key = (result.topology_label, result.write_ratio)
        groups.setdefault(key, []).append(result)
    best = 0
    for key in sorted(groups):
        ladder = sorted(groups[key], key=lambda r: (r.workload, r.seed))
        supported = 0
        for result in ladder:
            if slo_violated(result, slo):
                break
            supported = max(supported, result.workload)
        best = max(best, supported)
    return best


def improves(candidate_result, baseline_result, slo):
    """Did the shadow trial beat the measured baseline at this rung?

    The candidate must itself satisfy the SLO; given that, a missing
    or SLO-violating baseline is beaten by definition, and a passing
    baseline must be beaten on throughput.
    """
    if slo_violated(candidate_result, slo):
        return False
    if baseline_result is None or slo_violated(baseline_result, slo):
        return True
    return (candidate_result.metrics.throughput
            > baseline_result.metrics.throughput)


class Verdict:
    """One candidate's rank entry: gain, cost, score, confirmation."""

    def __init__(self, candidate, seq, *, gain, cost,
                 predicted_supported=None):
        self.candidate = candidate
        self.seq = seq
        self.gain = gain
        self.cost = cost
        self.score = round(gain / cost, 6) if cost else 0.0
        self.predicted_supported = predicted_supported
        self.confirmed = False
        self.confirm_detail = ""

    def to_dict(self):
        data = {
            "candidate": self.candidate.to_dict(),
            "gain": round(self.gain, 6),
            "cost": self.cost,
            "score": self.score,
            "confirmed": self.confirmed,
        }
        if self.predicted_supported is not None:
            data["predicted_supported"] = self.predicted_supported
        if self.confirm_detail:
            data["confirm_detail"] = self.confirm_detail
        return data


def score_candidates(candidates, *, baseline_supported, target,
                     predictions=None, confirm_points=1):
    """Rank *candidates* by expected improvement per unit trial cost.

    *predictions* maps a candidate's index to its analytically
    predicted supported workload (promotions only — host patches fix a
    fault the analytic tier cannot even see, since faults fire only at
    DES fire points).  Returns :class:`Verdict` objects sorted best
    first; ties break on proposal order, keeping the ranking a pure
    function of the candidate list.
    """
    predictions = predictions or {}
    span = max(target, 1)
    verdicts = []
    for seq, candidate in enumerate(candidates):
        predicted = predictions.get(seq)
        if predicted is not None:
            gain = max(predicted - baseline_supported, 0) / span
        else:
            gain = max(target - baseline_supported, 0) / span
        cost = 1 + candidate.added_servers + confirm_points
        verdicts.append(Verdict(candidate, seq, gain=gain, cost=cost,
                                predicted_supported=predicted))
    verdicts.sort(key=lambda v: (-v.score, v.seq))
    return verdicts
