"""The closed remediation loop: detect -> propose -> verify -> apply.

``heal_campaign`` reads a finished (possibly faulted) campaign
database, diagnoses it, and loops: propose candidate patches, verify
the best ones with shadow trials on cloned clusters, apply the winner,
re-measure, and diagnose again — until the ladder is healthy, nothing
more can be proposed, or the trial budget runs out.

Resumability is the planner plane's contract re-applied: every
decision is a pure function of recorded observations, the
``remediations`` log is cleared and rewritten wholesale on every run,
shadow trials already stored in the database are fed back instead of
re-run, and the budget counts *scheduled* DES trials (reused or not) —
so a killed ``repro heal`` resumed at any cut point, at any worker
count, converges on byte-identical ``remediations`` and trial tables.

Two fidelity rules keep the verification honest and cheap:

- injected faults fire only at DES fire points, so fault-removal
  patches are confirmed directly on DES — the analytic tier literally
  cannot observe the problem they fix;
- topology promotions get an analytic pre-screen (a free predicted
  supported-load ladder) that feeds the scorer, and only the ranked
  winner pays for DES confirmation.

Shadow runners disable quarantine (per-runner, order-dependent state)
so jobs=1 and jobs=N shadow trials are byte-identical.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from repro.core.campaign import CampaignState
from repro.core.capacity import CapacityPlanner
from repro.core.characterization import PerformanceMap
from repro.errors import AllocationError, RemedyError, ResultsError
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scheduler import THREAD, TrialScheduler, TrialTask
from repro.obs.tracer import as_tracer
from repro.remedy.diagnosis import Detector
from repro.remedy.propose import PROMOTE_TIER, Proposer, apply_patch
from repro.remedy.verify import (
    improves,
    progression_supported,
    score_candidates,
)
from repro.sim import ANALYTIC, DES
from repro.spec.topology import Topology
from repro.vcluster import VirtualCluster

#: campaign_meta keys a heal persists, so re-running ``repro heal``
#: on the same database replays with the same parameters.
META_HEAL_EXPERIMENT = "heal_experiment"
META_HEAL_TARGET = "heal_target"
META_HEAL_BUDGET = "heal_budget"
META_HEAL_ROUNDS = "heal_rounds"
META_HEAL_OUTCOME = "heal_outcome"
META_HEAL_PATCHES = "heal_patches"

DEFAULT_BUDGET = 32
DEFAULT_ROUNDS = 3

#: Terminal outcomes.
HEALTHY = "healthy"                  # nothing was wrong to begin with
HEALED = "healed"                    # applied patch(es); ladder now clean
NO_CANDIDATE = "no-candidate"        # diagnosed, but no rule applies
UNVERIFIED = "unverified"            # candidates failed DES confirmation
BUDGET_EXHAUSTED = "budget-exhausted"
ROUNDS_EXHAUSTED = "rounds-exhausted"

#: Quarantine is per-runner, order-dependent state; shadow runners get
#: a threshold no campaign reaches, so worker count never shows.
_NO_QUARANTINE = 10 ** 6


@dataclass
class HealReport:
    """What one ``repro heal`` run decided and measured."""

    outcome: str = None
    experiment: str = None
    rounds: int = 0
    diagnoses: int = 0
    candidates: int = 0
    #: CandidatePatch objects applied, in application order
    applied: list = field(default_factory=list)
    #: human-readable reasons nothing (more) could be done
    reasons: list = field(default_factory=list)
    trials: int = 0          # shadow trials executed this run
    reused: int = 0          # shadow trials fed back from the database
    budget: int = 0
    spent: int = 0           # DES shadow trials scheduled (incl. reused)
    target: int = 0
    baseline_supported: int = 0
    healed_supported: int = 0
    #: experiment name holding the final (possibly healed) ladder
    final_experiment: str = None
    database: object = None

    @property
    def healthy(self):
        return self.outcome in (HEALTHY, HEALED)

    def summary(self):
        text = (f"heal {self.outcome}: {self.rounds} round(s), "
                f"{len(self.applied)} patch(es) applied, "
                f"{self.trials} shadow trial(s) "
                f"({self.reused} reused), budget {self.spent}/{self.budget}")
        if self.applied:
            text += (f"; supported {self.baseline_supported} -> "
                     f"{self.healed_supported} of {self.target} users")
        return text

    def describe(self):
        lines = [self.summary()]
        for patch in self.applied:
            lines.append(f"  applied: {patch.describe()}")
        for reason in self.reasons:
            lines.append(f"  why not: {reason}")
        return "\n".join(lines)


def _capacity_reason(results, experiment, target):
    """The capacity planner's verdict on the heal target — the explicit
    "why nothing could be done" a no-candidate/unverified heal surfaces
    (:class:`~repro.core.capacity.InfeasiblePlan` reasons included)."""
    try:
        performance = PerformanceMap(results)
    except ResultsError:
        return "no observations to plan capacity from"
    plan = CapacityPlanner(
        performance, write_ratio=experiment.write_ratios[0],
    ).plan(target, experiment.slo)
    if plan.feasible:
        return (f"capacity planning still finds {target} users feasible "
                f"on {plan.topology}; the observations above disagree")
    return plan.describe()


def heal_campaign(database, *, jobs=1, budget=None, rounds=None,
                  target=None, experiment=None, tracer=None,
                  on_progress=None, on_trial=None):
    """Run the remediation loop over *database*; returns a
    :class:`HealReport`.

    *budget* caps DES shadow trials (default ``32``), *rounds* the
    apply/re-measure cycles (default ``3``), *target* the workload the
    heal aims to support (default: the ladder's top rung).  Omitted
    parameters are recovered from a previous heal's persisted meta, so
    resuming a killed heal replays it identically.  *on_progress*
    receives human-readable one-liners; *on_trial* every shadow
    :class:`TrialResult` actually executed (not reused).
    """
    tracer = as_tracer(tracer)
    state = CampaignState.from_database(database)
    if experiment is None:
        experiment = database.get_meta(META_HEAL_EXPERIMENT)
    exp = state.select_experiment(experiment)

    def resolved(value, key, fallback, floor):
        if value is None:
            stored = database.get_meta(key)
            value = int(stored) if stored is not None else fallback
        value = int(value)
        if value < floor:
            raise RemedyError(f"{key} must be at least {floor}, "
                              f"got {value}")
        database.set_meta(key, value)
        return value

    budget = resolved(budget, META_HEAL_BUDGET, DEFAULT_BUDGET, 1)
    rounds = resolved(rounds, META_HEAL_ROUNDS, DEFAULT_ROUNDS, 1)
    target = resolved(target, META_HEAL_TARGET, max(exp.workloads), 1)
    database.set_meta(META_HEAL_EXPERIMENT, exp.name)
    workloads = tuple(w for w in exp.workloads if w <= target)
    if not workloads:
        raise RemedyError(
            f"heal target {target} sits below the ladder's lowest rung "
            f"({min(exp.workloads)})")

    report = HealReport(experiment=exp.name, budget=budget, target=target,
                        database=database)
    topologies = tuple(exp.topologies)
    fault_plan = state.fault_plan
    retry_policy = state.retry_policy
    detector = Detector(exp.slo, target=target)

    # The log replays from scratch (decisions are pure functions of
    # observations), exactly like planner_decisions on `repro resume`.
    database.clear_remediations()
    seq_by_round = {}

    def record(round_no, stage, kind, target_name, detail, score=None,
               accepted=0):
        seq = seq_by_round.get(round_no, 0)
        seq_by_round[round_no] = seq + 1
        database.insert_remediations([
            (round_no, seq, stage, kind, target_name, exp.name,
             json.dumps(detail, sort_keys=True), score, accepted)])

    def progress(text):
        if on_progress is not None:
            on_progress(text)
        tracer.count("remedy.progress_lines", 1)

    done = {}
    for stored in database.query():
        done[(stored.experiment_name, stored.topology_label,
              stored.workload, stored.write_ratio, stored.seed,
              stored.fidelity, stored.scenario)] = stored

    def execute(tasks, plan, retry):
        """Run *tasks* under a candidate configuration, reusing stored
        trials; results return in task order, new ones stored as they
        arrive (the kill-anywhere checkpoint)."""
        missing = [t for t in tasks if t.key() not in done]
        report.reused += len(tasks) - len(missing)
        if retry is not None:
            retry = dataclasses.replace(retry,
                                        quarantine_after=_NO_QUARANTINE)

        def runner_factory():
            cluster = VirtualCluster(state.spec.platform,
                                     node_count=state.node_count)
            return ExperimentRunner(cluster=cluster,
                                    resource_model=state.resource_model,
                                    tracer=tracer, faults=plan,
                                    retry=retry)

        def store(result):
            database.insert(result, replace=True)
            done[(result.experiment_name, result.topology_label,
                  result.workload, result.write_ratio, result.seed,
                  result.fidelity, result.scenario)] = result
            report.trials += 1
            if on_trial is not None:
                on_trial(result)

        if missing:
            if jobs == 1:
                runner = runner_factory()
                for task in missing:
                    store(runner.run_task(task))
            else:
                # Thread backend explicitly: the factory closes over
                # this heal's candidate configuration and database.
                scheduler = TrialScheduler(runner_factory, jobs=jobs,
                                           backend=THREAD, tracer=tracer)
                scheduler.run(missing, on_result=store)
        return [done[task.key()] for task in tasks]

    def shadow_tasks(name, topology, points, fidelity):
        shadow = dataclasses.replace(exp, name=name)
        return [TrialTask(index, shadow, topology, workload, write_ratio,
                          fidelity=fidelity)
                for index, (workload, write_ratio) in enumerate(points)]

    # Promotions must fit the platform's *typed* node pool, not just
    # the machine count — probe against a throwaway cluster.
    probe = VirtualCluster(state.spec.platform,
                           node_count=state.node_count)
    tier_node_types = {}
    if exp.db_node_type is not None:
        tier_node_types["db"] = probe.platform.node_type(
            exp.db_node_type).name

    def allocatable(topology):
        try:
            probe.preview_allocation(topology,
                                     tier_node_types=tier_node_types)
            return None
        except AllocationError as error:
            return str(error)

    current_name = exp.name
    outcome = None
    round_no = 0
    while True:
        round_no += 1
        baseline = [r for r in database.query(experiment_name=current_name,
                                              fidelity=DES)
                    if r.workload <= target]
        if not baseline:
            raise RemedyError(
                f"no DES observations for experiment {current_name!r}; "
                f"run the campaign before healing it")
        baseline_supported = progression_supported(baseline, exp.slo,
                                                   target)
        if round_no == 1:
            report.baseline_supported = baseline_supported

        diagnoses = detector.diagnose(baseline)
        report.diagnoses += len(diagnoses)
        for diagnosis in diagnoses:
            record(round_no, "diagnosis", diagnosis.kind,
                   diagnosis.host or diagnosis.tier or diagnosis.topology,
                   diagnosis.to_dict())
            progress(f"round {round_no}: {diagnosis.describe()}")
        if not diagnoses:
            outcome = HEALED if report.applied else HEALTHY
            break
        if round_no > rounds:
            outcome = ROUNDS_EXHAUSTED
            report.reasons.append(
                f"{rounds} round(s) spent; "
                f"{len(diagnoses)} diagnosis(es) remain")
            break

        proposer = Proposer(exp, fault_plan, state.node_count,
                            allocatable=allocatable)
        candidates, rejections = proposer.propose(diagnoses)
        report.candidates += len(candidates)
        for candidate in candidates:
            record(round_no, "candidate", candidate.kind,
                   candidate.target, candidate.to_dict())
        for rejection in rejections:
            record(round_no, "infeasible", rejection.kind,
                   rejection.target, rejection.to_dict())
            report.reasons.append(rejection.reason)
        if not candidates:
            outcome = NO_CANDIDATE
            report.reasons.append(_capacity_reason(baseline, exp, target))
            break

        # Analytic pre-screen: predicted supported load per promotion.
        # Free (analytic trials cost no budget) and blind to faults —
        # which is fine, promotions address saturation, not faults.
        predictions = {}
        for seq, candidate in enumerate(candidates):
            if candidate.kind != PROMOTE_TIER:
                continue
            prescreened = execute(
                shadow_tasks(f"{exp.name}@r{round_no}.c{seq}",
                             Topology.parse(candidate.new_topology),
                             [(w, candidate.write_ratio)
                              for w in workloads],
                             ANALYTIC),
                fault_plan, retry_policy)
            predictions[seq] = progression_supported(prescreened,
                                                     exp.slo, target)
        verdicts = score_candidates(candidates,
                                    baseline_supported=baseline_supported,
                                    target=target, predictions=predictions)
        for verdict in verdicts:
            record(round_no, "verdict", verdict.candidate.kind,
                   verdict.candidate.target, verdict.to_dict(),
                   score=verdict.score)

        # DES confirmation, best-ranked first; the decision point the
        # analytic tier is never trusted with.
        winner = None
        budget_hit = False
        for verdict in verdicts:
            candidate = verdict.candidate
            workload = candidate.workload if candidate.workload is not None \
                else target
            confirm_topology = Topology.parse(
                candidate.new_topology or candidate.topology)
            cand_topos, cand_plan, cand_retry = apply_patch(
                candidate, topologies, fault_plan, retry_policy)
            tasks = shadow_tasks(
                f"{exp.name}@r{round_no}.c{verdict.seq}",
                confirm_topology, [(workload, candidate.write_ratio)],
                DES)
            if report.spent + len(tasks) > budget:
                budget_hit = True
                break
            report.spent += len(tasks)
            confirmed = execute(tasks, cand_plan, cand_retry)
            reference = next(
                (r for r in baseline
                 if r.topology_label == candidate.topology
                 and abs(r.write_ratio - candidate.write_ratio) < 1e-9
                 and r.workload == workload), None)
            verdict.confirmed = all(
                improves(result, reference, exp.slo)
                for result in confirmed)
            verdict.confirm_detail = (
                f"u={workload}: "
                + ", ".join(f"{r.status} {r.metrics.throughput:.1f} req/s"
                            for r in confirmed)
                + (f" vs baseline {reference.status} "
                   f"{reference.metrics.throughput:.1f} req/s"
                   if reference is not None else " vs no baseline"))
            record(round_no, "confirm", candidate.kind, candidate.target,
                   verdict.to_dict(), score=verdict.score,
                   accepted=1 if verdict.confirmed else 0)
            progress(f"round {round_no}: {candidate.describe()} -> "
                     + ("confirmed" if verdict.confirmed else "refuted")
                     + f" ({verdict.confirm_detail})")
            if verdict.confirmed:
                winner = verdict
                break
        if budget_hit:
            outcome = BUDGET_EXHAUSTED
            report.reasons.append(
                f"budget {budget} cannot fund another DES confirmation")
            break
        if winner is None:
            outcome = UNVERIFIED
            report.reasons.append(
                f"{len(verdicts)} candidate(s) failed DES confirmation")
            report.reasons.append(_capacity_reason(baseline, exp, target))
            break

        topologies, fault_plan, retry_policy = apply_patch(
            winner.candidate, topologies, fault_plan, retry_policy)
        report.applied.append(winner.candidate)
        record(round_no, "apply", winner.candidate.kind,
               winner.candidate.target, winner.to_dict(),
               score=winner.score, accepted=1)
        progress(f"round {round_no}: applying "
                 f"{winner.candidate.describe()}")

        healed_name = f"{exp.name}@healed.r{round_no}"
        points = [(w, wr) for wr in exp.write_ratios for w in workloads]
        remeasure = []
        for topology in topologies:
            remeasure.extend(shadow_tasks(healed_name, topology, points,
                                          DES))
        # Re-index across topologies so task identity stays unique.
        remeasure = [dataclasses.replace(task, index=index)
                     for index, task in enumerate(remeasure)]
        if report.spent + len(remeasure) > budget:
            outcome = BUDGET_EXHAUSTED
            report.reasons.append(
                f"budget {budget} cannot fund the {len(remeasure)}-trial "
                f"re-measurement")
            break
        report.spent += len(remeasure)
        measured = execute(remeasure, fault_plan, retry_policy)
        record(round_no, "remeasure", "ladder", healed_name,
               {"experiment": healed_name, "trials": len(remeasure),
                "supported": progression_supported(measured, exp.slo,
                                                   target)})
        current_name = healed_name

    report.outcome = outcome
    report.rounds = round_no
    report.final_experiment = current_name
    final = [r for r in database.query(experiment_name=current_name,
                                       fidelity=DES)
             if r.workload <= target]
    report.healed_supported = progression_supported(final, exp.slo,
                                                    target)
    record(round_no, "outcome", outcome, current_name, {
        "outcome": outcome,
        "applied": [patch.to_dict() for patch in report.applied],
        "baseline_supported": report.baseline_supported,
        "healed_supported": report.healed_supported,
        "target": target,
        "reasons": report.reasons,
    }, accepted=1 if report.healthy else 0)
    database.set_meta(META_HEAL_OUTCOME, outcome)
    database.set_meta(META_HEAL_PATCHES, json.dumps(
        [patch.to_dict() for patch in report.applied], sort_keys=True))
    tracer.count("remedy.heals_run", 1)
    return report
