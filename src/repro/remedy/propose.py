"""Proposer: turn diagnoses into candidate configuration patches.

Sage's observation-driven configuration argument, applied: instead of
a static rulebook mapping symptoms to fixed remedies, each rule here
produces a *candidate* patch that must still earn its application by
surviving the verifier's shadow trials.  The rules themselves are
deliberately small:

- a saturated tier gets more replicas (the paper's elementary
  scale-out move, ``Topology.scaled``), one and two steps out;
- a trial-killing injected fault gets its matching
  :class:`~repro.faults.FaultSpec` stripped from the plan — the model
  of "replace the faulty host" in a world where the fault plan *is*
  the hardware's failure behaviour;
- a quarantined host gets released on probation (the retry policy's
  ``probation_trials``), with any fault spec targeting it stripped.

Every rule either yields candidates or an explicit rejection reason —
``repro heal`` reports *why nothing could be done*, never a silent
no-op.
"""

from __future__ import annotations

from dataclasses import replace
from fnmatch import fnmatchcase

from repro.faults.plan import FaultPlan
from repro.remedy.diagnosis import (
    INJECTED_FAULT,
    QUARANTINE,
    SATURATION,
)
from repro.spec.topology import Topology

#: Add replicas to the diagnosed tier (new_topology carries the shape).
PROMOTE_TIER = "promote-tier"
#: Strip the fault spec(s) blamed for killing trials on a host.
REPLACE_HOST = "replace-host"
#: Release a quarantined host on probation (and strip its faults).
RELEASE_HOST = "release-host"

#: How many replica-count steps a saturation diagnosis explores.
PROMOTE_DELTAS = (1, 2)
#: Probation sentence a released host serves (successful trials before
#: the runner trusts it again) — see ``RetryPolicy.probation_trials``.
DEFAULT_PROBATION = 2


def _freeze(value):
    return tuple(value) if not isinstance(value, tuple) else value


class CandidatePatch:
    """One candidate configuration change, ready to verify.

    *kind* is one of :data:`PROMOTE_TIER`, :data:`REPLACE_HOST`,
    :data:`RELEASE_HOST`; *target* the tier or host it acts on;
    *topology* the topology label the diagnosis came from;
    *new_topology* the promoted shape (promote only); *drop_faults*
    the fault-plan spec indices the patch strips; *probation* the
    release sentence; *workload* the diagnosed rung the verifier
    should confirm at (None means "confirm at the heal target");
    *added_servers* feeds the scorer's cost side.
    """

    def __init__(self, kind, target, topology, *, write_ratio,
                 new_topology=None, drop_faults=(), probation=0,
                 workload=None, reason="", added_servers=0):
        self.kind = kind
        self.target = target
        self.topology = topology
        self.write_ratio = write_ratio
        self.new_topology = new_topology
        self.drop_faults = _freeze(drop_faults)
        self.probation = probation
        self.workload = workload
        self.reason = reason
        self.added_servers = added_servers

    def identity(self):
        """What makes two candidates the same patch (dedupe key)."""
        return (self.kind, self.target, self.topology,
                self.new_topology, self.drop_faults, self.probation)

    def to_dict(self):
        data = {
            "kind": self.kind,
            "target": self.target,
            "topology": self.topology,
            "write_ratio": self.write_ratio,
            "workload": self.workload,
            "reason": self.reason,
        }
        if self.new_topology is not None:
            data["new_topology"] = self.new_topology
            data["added_servers"] = self.added_servers
        if self.drop_faults:
            data["drop_faults"] = list(self.drop_faults)
        if self.probation:
            data["probation"] = self.probation
        return data

    def describe(self):
        if self.kind == PROMOTE_TIER:
            return (f"promote {self.target} tier: {self.topology} -> "
                    f"{self.new_topology}")
        if self.kind == REPLACE_HOST:
            return (f"replace host {self.target} (strip "
                    f"{len(self.drop_faults)} fault spec(s))")
        return (f"release host {self.target} on probation "
                f"({self.probation} trial(s))")


class Rejection:
    """Why a diagnosis produced no (or fewer) candidates."""

    def __init__(self, kind, target, reason):
        self.kind = kind
        self.target = target
        self.reason = reason

    def to_dict(self):
        return {"kind": self.kind, "target": self.target,
                "reason": self.reason}


class Proposer:
    """Rule-based candidate generation for one experiment.

    *experiment* supplies the ladder context, *fault_plan* the specs a
    host-level patch may strip (may be None), *node_count* the cluster
    size promotions must fit inside.  *allocatable*, when given, is a
    ``topology -> None | reason`` probe against the actual typed node
    pool (machine count alone cannot see that a platform has, say,
    only three high-end nodes for the db tier).
    """

    def __init__(self, experiment, fault_plan, node_count,
                 allocatable=None):
        self.experiment = experiment
        self.fault_plan = fault_plan
        self.node_count = node_count
        self.allocatable = allocatable

    def propose(self, diagnoses):
        """``(candidates, rejections)`` for *diagnoses*, in rule order."""
        candidates = []
        rejections = []
        for diagnosis in diagnoses:
            if diagnosis.kind == SATURATION:
                self._promote(diagnosis, candidates, rejections)
            elif diagnosis.kind == INJECTED_FAULT:
                self._replace(diagnosis, candidates, rejections)
            elif diagnosis.kind == QUARANTINE:
                self._release(diagnosis, candidates, rejections)
            else:
                rejections.append(Rejection(
                    diagnosis.kind, diagnosis.topology,
                    f"no remediation rule applies to "
                    f"{diagnosis.kind}: {diagnosis.evidence}"))
        unique = []
        seen = set()
        for candidate in candidates:
            key = candidate.identity()
            if key in seen:
                continue
            seen.add(key)
            unique.append(candidate)
        return unique, rejections

    def _promote(self, diagnosis, candidates, rejections):
        base = Topology.parse(diagnosis.topology)
        for delta in PROMOTE_DELTAS:
            promoted = base.scaled(diagnosis.tier, delta)
            if promoted.machine_count() > self.node_count:
                rejections.append(Rejection(
                    PROMOTE_TIER, diagnosis.tier,
                    f"{promoted.label()} needs "
                    f"{promoted.machine_count()} machines but the "
                    f"cluster has {self.node_count} nodes"))
                continue
            if self.allocatable is not None:
                reason = self.allocatable(promoted)
                if reason is not None:
                    rejections.append(Rejection(
                        PROMOTE_TIER, diagnosis.tier, reason))
                    continue
            candidates.append(CandidatePatch(
                PROMOTE_TIER, diagnosis.tier, diagnosis.topology,
                write_ratio=diagnosis.write_ratio,
                new_topology=promoted.label(),
                workload=diagnosis.workload,
                added_servers=delta,
                reason=diagnosis.evidence))

    def _matching_specs(self, host, fault_kind=None):
        """Fault-plan spec indices a host-level patch should strip."""
        if self.fault_plan is None or host is None:
            return ()
        return tuple(
            index for index, spec in enumerate(self.fault_plan.specs)
            if fnmatchcase(host, spec.target)
            and (fault_kind is None or spec.kind == fault_kind))

    def _replace(self, diagnosis, candidates, rejections):
        indices = self._matching_specs(diagnosis.host,
                                       diagnosis.fault_kind)
        if not indices:
            rejections.append(Rejection(
                REPLACE_HOST, diagnosis.host,
                f"{diagnosis.fault_kind or 'failure'} on "
                f"{diagnosis.host or 'unknown host'} is untraceable to "
                f"the fault plan; nothing to strip"))
            return
        candidates.append(CandidatePatch(
            REPLACE_HOST, diagnosis.host, diagnosis.topology,
            write_ratio=diagnosis.write_ratio,
            drop_faults=indices,
            workload=diagnosis.workload,
            reason=diagnosis.evidence))

    def _release(self, diagnosis, candidates, rejections):
        indices = self._matching_specs(diagnosis.host)
        candidates.append(CandidatePatch(
            RELEASE_HOST, diagnosis.host, diagnosis.topology,
            write_ratio=diagnosis.write_ratio,
            drop_faults=indices,
            probation=DEFAULT_PROBATION,
            workload=diagnosis.workload,
            reason=diagnosis.evidence))


def apply_patch(patch, topologies, fault_plan, retry_policy):
    """Apply *patch*: ``(topologies', fault_plan', retry_policy')``.

    Pure — the inputs are never mutated, so a verifier can build a
    shadow configuration and throw it away, and the scheduler can
    apply the winner to the campaign's real configuration with the
    same call.
    """
    if patch.kind == PROMOTE_TIER:
        topologies = tuple(
            Topology.parse(patch.new_topology)
            if topology.label() == patch.topology else topology
            for topology in topologies)
        return topologies, fault_plan, retry_policy
    if patch.drop_faults and fault_plan is not None:
        kept = tuple(spec for index, spec in enumerate(fault_plan.specs)
                     if index not in set(patch.drop_faults))
        fault_plan = FaultPlan(kept, seed=fault_plan.seed) if kept \
            else None
    if patch.kind == RELEASE_HOST and retry_policy is not None \
            and patch.probation:
        retry_policy = replace(retry_policy,
                               probation_trials=patch.probation)
    return topologies, fault_plan, retry_policy
