"""Detector: fold observations into typed diagnoses.

The paper's thesis is that the observed resource and application
metrics are enough to *locate* an n-tier system's bottleneck; this
module is that location step made explicit.  A :class:`Detector` reads
a slice of recorded trials — nothing live, nothing sampled — and folds
three observation planes into :class:`Diagnosis` records:

- CPU saturation from :func:`repro.core.bottleneck.detect_bottleneck`
  (the paper's "which tier ran out first" question),
- injected-fault blame riding on DNF trials' ``failures`` rows (the
  fault plane's attribution of *why* a trial could not complete),
- quarantine sentences the runner pronounced on repeatedly-blamed
  hosts (also from ``failures`` — the trial where the sentence fell).

Diagnoses are pure functions of the result rows passed in: same
observations, same diagnoses, in the same order — the property the
byte-identical ``repro heal`` resume contract is built on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bottleneck import (
    SATURATION_CPU_PERCENT,
    detect_bottleneck,
    slo_violated,
)
from repro.errors import RemedyError
from repro.experiments.trial import DNF
from repro.faults.retry import QUARANTINED

#: A tier's mean CPU crossed the saturation threshold at the first
#: SLO-violating rung — the paper's classic bottleneck.
SATURATION = "saturation"
#: The first SLO-violating rung is a DNF whose failures blame an
#: injected fault on a specific host.
INJECTED_FAULT = "injected-fault"
#: A host sits in quarantine — capacity the campaign lost.
QUARANTINE = "quarantine"
#: The SLO is violated but neither saturation nor a fault explains it.
SLO_VIOLATION = "slo-violation"


@dataclass(frozen=True)
class Diagnosis:
    """One observed problem, localized enough to act on.

    *kind* is one of :data:`SATURATION`, :data:`INJECTED_FAULT`,
    :data:`QUARANTINE`, :data:`SLO_VIOLATION`.  *topology*,
    *write_ratio* and *workload* pin the sweep point the evidence came
    from; *tier* names the saturated tier (saturation only); *host* and
    *fault_kind* carry fault attribution (injected-fault, quarantine).
    *evidence* is a human-readable one-liner of what was observed.
    """

    kind: str
    experiment: str
    topology: str
    write_ratio: float
    workload: int = None
    tier: str = None
    fault_kind: str = None
    host: str = None
    evidence: str = ""

    def to_dict(self):
        data = {
            "kind": self.kind,
            "experiment": self.experiment,
            "topology": self.topology,
            "write_ratio": self.write_ratio,
            "workload": self.workload,
            "evidence": self.evidence,
        }
        for key, value in (("tier", self.tier),
                           ("fault_kind", self.fault_kind),
                           ("host", self.host)):
            if value is not None:
                data[key] = value
        return data

    def describe(self):
        where = f"{self.topology} wr={self.write_ratio:.0%}"
        if self.workload is not None:
            where += f" u={self.workload}"
        return f"[{self.kind}] {where}: {self.evidence}"


class Detector:
    """Fold trial results into an ordered list of diagnoses.

    *slo* is the experiment's service-level objective; *threshold* the
    CPU saturation percentage; *target* caps the workloads considered
    (rungs above the heal target are not this loop's problem).
    """

    def __init__(self, slo, *, threshold=SATURATION_CPU_PERCENT,
                 target=None):
        self.slo = slo
        self.threshold = threshold
        self.target = target

    def diagnose(self, results):
        """Diagnoses for *results*, deterministically ordered.

        Per ``(topology, write_ratio)`` ladder the *first* violating
        rung is diagnosed — the knee is where the paper looks, and
        everything above it usually shares the same cause.  Quarantine
        diagnoses come from the ``failures`` riding on the results
        themselves (not from the database's historical quarantine
        record), so a healed re-measurement stops re-reporting hosts a
        previous round already dealt with.
        """
        if not results:
            raise RemedyError("no observations to diagnose")
        groups = {}
        for result in results:
            if self.target is not None and result.workload > self.target:
                continue
            key = (result.topology_label, result.write_ratio)
            groups.setdefault(key, []).append(result)
        diagnoses = []
        for key in sorted(groups):
            ladder = sorted(groups[key],
                            key=lambda r: (r.workload, r.seed))
            first_bad = next(
                (r for r in ladder if slo_violated(r, self.slo)), None)
            if first_bad is not None:
                diagnoses.append(self._classify(first_bad))
        diagnoses.extend(self._quarantine_diagnoses(groups))
        return diagnoses

    def _classify(self, result):
        """Why did this rung violate the SLO?"""
        blamed = next((f for f in result.failures if f.fault_kind), None)
        if result.status == DNF and blamed is not None:
            return Diagnosis(
                kind=INJECTED_FAULT,
                experiment=result.experiment_name,
                topology=result.topology_label,
                write_ratio=result.write_ratio,
                workload=result.workload,
                fault_kind=blamed.fault_kind,
                host=blamed.host,
                evidence=(f"DNF after {result.attempts} attempt(s); "
                          f"{blamed.fault_kind} blamed on "
                          f"{blamed.host or 'an unknown host'}"),
            )
        tier = detect_bottleneck(result, self.threshold)
        if tier is not None:
            utilization = max(
                cpu for host, cpu in result.host_cpu.items()
                if result.tier_of_host.get(host) == tier)
            return Diagnosis(
                kind=SATURATION,
                experiment=result.experiment_name,
                topology=result.topology_label,
                write_ratio=result.write_ratio,
                workload=result.workload,
                tier=tier,
                evidence=(f"{tier} tier saturated at "
                          f"{utilization:.0f}% CPU"),
            )
        return Diagnosis(
            kind=SLO_VIOLATION,
            experiment=result.experiment_name,
            topology=result.topology_label,
            write_ratio=result.write_ratio,
            workload=result.workload,
            evidence=(f"SLO violated ({result.status}, mean response "
                      f"{result.metrics.mean_response_s * 1000:.0f} ms, "
                      f"error ratio {result.metrics.error_ratio:.3f}) "
                      f"with no saturated tier"),
        )

    def _quarantine_diagnoses(self, groups):
        """One diagnosis per host the observed trials quarantined."""
        sentenced = {}
        for key in sorted(groups):
            for result in sorted(groups[key],
                                 key=lambda r: (r.workload, r.seed)):
                for failure in result.failures:
                    if failure.resolution != QUARANTINED:
                        continue
                    sentenced.setdefault(failure.host, (result, failure))
        diagnoses = []
        for host in sorted(sentenced):
            result, failure = sentenced[host]
            cause = failure.cause or "repeatedly blamed"
            prefix = f"host {host} quarantined: "
            if cause.startswith(prefix):      # sentence text repeats it
                cause = cause[len(prefix):]
            diagnoses.append(Diagnosis(
                kind=QUARANTINE,
                experiment=result.experiment_name,
                topology=result.topology_label,
                write_ratio=result.write_ratio,
                workload=result.workload,
                fault_kind=failure.fault_kind,
                host=host,
                evidence=f"host {host} quarantined: {cause}",
            ))
        return diagnoses
