"""Closed-loop auto-remediation: detect -> propose -> verify -> apply.

The paper diagnoses bottlenecks from observations; this package acts
on the diagnosis.  See :func:`heal_campaign` (the ``repro heal``
engine) and DESIGN.md §3h for the pipeline architecture.
"""

from repro.remedy.diagnosis import (
    INJECTED_FAULT,
    QUARANTINE,
    SATURATION,
    SLO_VIOLATION,
    Detector,
    Diagnosis,
)
from repro.remedy.pipeline import (
    BUDGET_EXHAUSTED,
    DEFAULT_BUDGET,
    DEFAULT_ROUNDS,
    HEALED,
    HEALTHY,
    NO_CANDIDATE,
    ROUNDS_EXHAUSTED,
    UNVERIFIED,
    HealReport,
    heal_campaign,
)
from repro.remedy.propose import (
    PROMOTE_TIER,
    RELEASE_HOST,
    REPLACE_HOST,
    CandidatePatch,
    Proposer,
    Rejection,
    apply_patch,
)
from repro.remedy.verify import (
    Verdict,
    improves,
    progression_supported,
    score_candidates,
)

__all__ = [
    "BUDGET_EXHAUSTED",
    "CandidatePatch",
    "DEFAULT_BUDGET",
    "DEFAULT_ROUNDS",
    "Detector",
    "Diagnosis",
    "HEALED",
    "HEALTHY",
    "HealReport",
    "INJECTED_FAULT",
    "NO_CANDIDATE",
    "PROMOTE_TIER",
    "Proposer",
    "QUARANTINE",
    "RELEASE_HOST",
    "REPLACE_HOST",
    "ROUNDS_EXHAUSTED",
    "Rejection",
    "SATURATION",
    "SLO_VIOLATION",
    "UNVERIFIED",
    "Verdict",
    "apply_patch",
    "heal_campaign",
    "improves",
    "progression_supported",
    "score_candidates",
]
