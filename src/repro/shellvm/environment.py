"""Execution environment for the shell interpreter."""

from __future__ import annotations

from repro.errors import ShellError


class ExitScript(Exception):
    """Raised by the ``exit`` builtin to unwind the current script."""

    def __init__(self, status):
        super().__init__(f"exit {status}")
        self.status = status


class ShellEnvironment:
    """Variables, positional parameters, cwd and host for one script."""

    __slots__ = ("host", "variables", "positional", "cwd", "script",
                 "errexit")

    def __init__(self, host, variables=None, positional=(), cwd="/",
                 script="<script>"):
        self.host = host
        self.variables = dict(variables) if variables else {}
        self.positional = tuple(positional)
        self.cwd = cwd
        self.script = script
        self.errexit = False

    def get(self, name):
        if name.isdigit():
            index = int(name)
            if index == 0:
                return self.script
            if 1 <= index <= len(self.positional):
                return self.positional[index - 1]
            return ""
        if name == "#":
            return str(len(self.positional))
        return self.variables.get(name, "")

    def set(self, name, value):
        if not name or name[0].isdigit():
            raise ShellError(f"cannot assign to {name!r}")
        self.variables[name] = value

    def child(self, script, positional=()):
        """Environment for a sub-script invocation (``bash x.sh a b``).

        The child inherits a *copy* of the variables (mutations do not
        leak back) but shares the host and starts at the same cwd.
        """
        child = ShellEnvironment(
            host=self.host,
            variables=dict(self.variables),
            positional=positional,
            cwd=self.cwd,
            script=script,
        )
        child.errexit = self.errexit
        return child


def errexit_failure(status, line, env):
    """The :class:`ShellError` a ``set -e`` abort raises.

    Shared by the tree-walking interpreter and the closure compiler so
    both engines report errexit failures identically: the *executing*
    script path (``env.script``) plus the failing statement's line.
    """
    return ShellError(
        f"command failed with status {status} under set -e",
        line=line, script=env.script,
    )


def expand_word(parts, env):
    """Expand one word into a list of argv fragments.

    Unquoted variable expansions undergo field splitting (so
    ``for H in $DB_HOSTS`` iterates); quoted expansions stay one field.
    An unquoted variable expanding to nothing yields zero fields.
    """
    fields = [""]
    any_quoted = False
    for kind, value, quoted in parts:
        if kind == "lit":
            fields[-1] += value
            any_quoted = any_quoted or quoted
            continue
        expansion = env.get(value)
        if quoted:
            fields[-1] += expansion
            any_quoted = True
            continue
        pieces = expansion.split()
        if not pieces:
            continue
        fields[-1] += pieces[0]
        for piece in pieces[1:]:
            fields.append(piece)
    if fields == [""] and not any_quoted:
        # A word made solely of empty unquoted expansions vanishes.
        if all(kind == "var" for kind, _v, _q in parts):
            return []
    return fields


def expand_single(parts, env, what="operand"):
    """Expand a word that must produce exactly one field."""
    fields = expand_word(parts, env)
    if len(fields) != 1:
        raise ShellError(
            f"{what} must expand to a single field, got {fields!r}"
        )
    return fields[0]
