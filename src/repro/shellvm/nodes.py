"""AST nodes for the restricted shell dialect."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Redirect:
    """Output redirection: ``>`` (truncate) or ``>>`` (append)."""

    target: tuple          # word parts
    append: bool
    line: int


@dataclass(frozen=True)
class SimpleCommand:
    """``name arg arg > file`` — possibly prefixed by assignments."""

    assignments: tuple     # of (name, word_parts)
    words: tuple           # of word parts tuples
    redirect: Redirect = None
    background: bool = False
    line: int = 0


@dataclass(frozen=True)
class AndOrList:
    """``a && b || c`` — left-associative chain."""

    first: object
    rest: tuple            # of (operator, command) pairs
    line: int = 0


@dataclass(frozen=True)
class IfClause:
    condition: object      # an AndOrList
    then_body: tuple       # of statements
    else_body: tuple = ()
    line: int = 0


@dataclass(frozen=True)
class ForClause:
    variable: str
    items: tuple           # of word parts tuples
    body: tuple            # of statements
    line: int = 0


@dataclass(frozen=True)
class Script:
    statements: tuple
    source: str = "<script>"
    text: str = ""

    def line_count(self):
        if not self.text:
            return 0
        return self.text.count("\n") + (0 if self.text.endswith("\n") else 1)
