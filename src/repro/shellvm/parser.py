"""Parser for the restricted shell dialect.

Grammar::

    script    := line*
    line      := statement? (";" statement?)* NEWLINE
    statement := and_or ["&"]
    and_or    := command (("&&" | "||") command)*
    command   := if_clause | for_clause | simple
    simple    := assignment* word+ redirect?
               | assignment+
    if_clause := "if" and_or sep "then" body ("else" body)? "fi"
    for_clause:= "for" NAME "in" word* sep "do" body "done"
    body      := statement (sep statement)*
    sep       := ";" | NEWLINE (one or more)

Keywords are only recognized at command position, matching shell rules
closely enough for generated scripts.
"""

from __future__ import annotations

import re

from repro import hotpath
from repro.errors import ShellError
from repro.shellvm.lexer import tokenize
from repro.shellvm.nodes import (
    AndOrList,
    ForClause,
    IfClause,
    Redirect,
    Script,
    SimpleCommand,
)

_KEYWORDS = frozenset({"if", "then", "else", "fi", "for", "in", "do", "done"})
_ASSIGNMENT_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)=(.*)$", re.DOTALL)


class _Parser:
    def __init__(self, tokens, script):
        self.tokens = tokens
        self.script = script
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def error(self, message, token=None):
        line = token.line if token is not None else self._current_line()
        raise ShellError(message, line=line, script=self.script)

    def _current_line(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index].line
        return self.tokens[-1].line if self.tokens else None

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self):
        token = self.peek()
        if token is None:
            self.error("unexpected end of script")
        self.index += 1
        return token

    def at_op(self, value):
        token = self.peek()
        return token is not None and token.kind == "op" and \
            token.value == value

    def at_keyword(self, word):
        token = self.peek()
        return (token is not None and token.kind == "word"
                and _word_is_literal(token.value, word))

    def at_end(self):
        return self.index >= len(self.tokens)

    def skip_separators(self):
        while self.at_op("\n") or self.at_op(";"):
            self.next()

    # -- grammar ----------------------------------------------------------

    def parse_script(self):
        statements = []
        self.skip_separators()
        while not self.at_end():
            statements.append(self.parse_statement())
            self.skip_separators()
        return statements

    def parse_statement(self):
        and_or = self.parse_and_or()
        background = False
        if self.at_op("&"):
            self.next()
            background = True
        if background:
            and_or = _mark_background(and_or, self)
        return and_or

    def parse_and_or(self):
        first = self.parse_command()
        rest = []
        while self.at_op("&&") or self.at_op("||"):
            operator = self.next().value
            # Allow the continuation on the next line.
            while self.at_op("\n"):
                self.next()
            rest.append((operator, self.parse_command()))
        if not rest:
            return first
        return AndOrList(first=first, rest=tuple(rest), line=first.line)

    def parse_command(self):
        if self.at_keyword("if"):
            return self.parse_if()
        if self.at_keyword("for"):
            return self.parse_for()
        return self.parse_simple()

    def parse_if(self):
        line = self.next().line          # 'if'
        condition = self.parse_and_or()
        self.skip_separators()
        self._expect_keyword("then")
        then_body = self._parse_body(("else", "fi"))
        else_body = ()
        if self.at_keyword("else"):
            self.next()
            else_body = self._parse_body(("fi",))
        self._expect_keyword("fi")
        return IfClause(condition=condition, then_body=then_body,
                        else_body=else_body, line=line)

    def parse_for(self):
        line = self.next().line          # 'for'
        variable_token = self.next()
        if variable_token.kind != "word":
            self.error("expected a variable name after 'for'",
                       variable_token)
        variable = _literal_text(variable_token.value)
        if variable is None:
            self.error("for-loop variable must be a plain name",
                       variable_token)
        self._expect_keyword("in")
        items = []
        while self.peek() is not None and self.peek().kind == "word":
            items.append(self.next().value)
        self.skip_separators()
        self._expect_keyword("do")
        body = self._parse_body(("done",))
        self._expect_keyword("done")
        return ForClause(variable=variable, items=tuple(items),
                         body=body, line=line)

    def _parse_body(self, terminators):
        statements = []
        self.skip_separators()
        while not any(self.at_keyword(word) for word in terminators):
            if self.at_end():
                self.error(
                    f"unterminated block (expected one of {terminators})"
                )
            statements.append(self.parse_statement())
            self.skip_separators()
        return tuple(statements)

    def _expect_keyword(self, word):
        if not self.at_keyword(word):
            token = self.peek()
            shown = token.value if token else "end of script"
            self.error(f"expected {word!r}, got {shown!r}", token)
        self.next()

    def parse_simple(self):
        assignments = []
        words = []
        redirect = None
        line = self._current_line()
        while True:
            token = self.peek()
            if token is None or token.kind != "word":
                break
            if not words:
                assignment = _as_assignment(token.value)
                if assignment is not None:
                    assignments.append(assignment)
                    self.next()
                    continue
            if _word_is_literal(token.value, *_KEYWORDS) and not words \
                    and not assignments:
                break
            words.append(self.next().value)
        if self.at_op(">") or self.at_op(">>"):
            op_token = self.next()
            target = self.next()
            if target.kind != "word":
                self.error("redirection needs a target", target)
            redirect = Redirect(target=target.value,
                                append=op_token.value == ">>",
                                line=op_token.line)
        if not words and not assignments:
            token = self.peek()
            shown = token.value if token else "end of script"
            self.error(f"expected a command, got {shown!r}", token)
        return SimpleCommand(assignments=tuple(assignments),
                             words=tuple(words), redirect=redirect,
                             line=line)


def _mark_background(node, parser):
    if isinstance(node, SimpleCommand):
        return SimpleCommand(assignments=node.assignments, words=node.words,
                             redirect=node.redirect, background=True,
                             line=node.line)
    parser.error("only simple commands can run in the background")


def _word_is_literal(parts, *candidates):
    text = _literal_text(parts)
    return text is not None and text in candidates


def _literal_text(parts):
    """The literal text of a word, or None if it expands variables or
    carries quoting (quoted keywords are not keywords, as in shell)."""
    if any(kind != "lit" or quoted for kind, _value, quoted in parts):
        return None
    return "".join(value for _kind, value, _quoted in parts)


def _as_assignment(parts):
    """Detect ``NAME=...`` at command position; returns (name, value_parts)."""
    if not parts:
        return None
    kind, value, quoted = parts[0]
    if kind != "lit" or quoted:
        return None
    match = _ASSIGNMENT_RE.match(value)
    if match is None:
        return None
    name, remainder = match.groups()
    value_parts = []
    if remainder:
        value_parts.append(("lit", remainder, False))
    value_parts.extend(parts[1:])
    return name, tuple(value_parts)


# Interned parse results: generated scripts are executed far more often
# than they are distinct (every repetition replays the same text, and
# the inline `ssh host cmd` bodies repeat across every trial of a
# campaign), so each unique (script, text) pair is lexed and parsed
# once.  Safe to share across scheduler workers: the AST is frozen
# dataclasses over tuples and the interpreter never mutates it.
_PARSE_CACHE = hotpath.MemoCache("shellvm.parse", capacity=8192)


def parse(text, script="<script>"):
    """Parse shell *text* into a :class:`Script`."""
    return _PARSE_CACHE.get((script, text),
                            lambda: _parse_fresh(text, script))


def _parse_fresh(text, script):
    tokens = tokenize(text, script=script)
    statements = _Parser(tokens, script).parse_script()
    return Script(statements=tuple(statements), source=script, text=text)
