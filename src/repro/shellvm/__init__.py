"""Restricted POSIX-shell interpreter used to execute generated scripts."""

from repro.shellvm.environment import ExitScript, ShellEnvironment
from repro.shellvm.interpreter import LogEntry, ShellInterpreter
from repro.shellvm.lexer import tokenize
from repro.shellvm.parser import parse

__all__ = [
    "ExitScript",
    "ShellEnvironment",
    "LogEntry",
    "ShellInterpreter",
    "tokenize",
    "parse",
]
