"""Interpreter for the restricted shell dialect.

This is the virtual cluster's ``bash``: the deployment engine feeds it
the exact scripts Mulini generated, and every ``ssh``/``scp``/``tar``
they contain mutates virtual hosts.  Nothing in the pipeline bypasses
the generated text — if Mulini generates a broken script, deployment
fails, exactly as on a physical cluster.
"""

from __future__ import annotations

import os
from typing import NamedTuple

from repro.errors import ClusterError, CommandError, ShellError
from repro.faults.injector import NULL_INJECTOR
from repro.obs.tracer import as_tracer
from repro.shellvm.builtins import REGISTRY
from repro.shellvm.environment import (
    ExitScript,
    ShellEnvironment,
    errexit_failure,
    expand_single,
    expand_word,
)
from repro.shellvm.nodes import (
    AndOrList,
    ForClause,
    IfClause,
    SimpleCommand,
)
from repro.shellvm.parser import parse
from repro.vcluster.filesystem import normalize

_MAX_SCRIPT_DEPTH = 32


class LogEntry(NamedTuple):
    """One executed command, for verification and audit.

    A named tuple rather than a dataclass: one is appended per command
    executed, which makes construction cost part of every script's
    critical path under either engine.
    """

    host: str
    command: str
    status: int


# Imported below LogEntry on purpose: the compiler needs LogEntry (its
# compiled commands append to the same audit log), so the circular
# import resolves as long as the class exists before compiler loads.
from repro.shellvm.compiler import compile_text  # noqa: E402


def engine_mode():
    """Which execution engine ``REPRO_SHELLVM`` selects.

    ``interp`` (or ``interpreter``) keeps the original tree-walker as
    the oracle; anything else — including unset — takes the compiled
    closure form.  Read at interpreter construction, so flipping the
    variable affects the next trial, never a script mid-flight.
    """
    value = os.environ.get("REPRO_SHELLVM", "compiled").strip().lower()
    return "interp" if value in ("interp", "interpreter") else "compiled"


class ShellInterpreter:
    """Executes parsed scripts against virtual hosts on one network."""

    def __init__(self, network, *, tracer=None, faults=None):
        self.network = network
        self.tracer = as_tracer(tracer)
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.log = []
        self.slept_seconds = 0.0
        self._depth = 0
        self.engine = engine_mode()

    # -- public entry points ----------------------------------------------

    def run_script_file(self, host, path, args=(), parent_env=None):
        """Run the script stored at *path* on *host*; returns (status, out).

        Each script execution — including nested invocations from a
        parent script — is one tracing span carrying the script path,
        host and exit status, which is where per-script wall time in
        the trace report comes from.
        """
        full = normalize(path, parent_env.cwd if parent_env else "/")
        try:
            text = host.fs.read(full)
        except ClusterError:
            raise ShellError(f"no such script: {full}", script=full) \
                from None
        if parent_env is not None:
            env = parent_env.child(script=full, positional=tuple(args))
            env.host = host
        else:
            env = ShellEnvironment(host=host, positional=tuple(args),
                                   script=full)
        # Fault point: a ``daemon-kill`` armed for this trial strikes
        # between scripts — the first script that starts while a
        # matching daemon is alive somewhere on the network sees it
        # die mid-deployment.  (Guarded: fault-free campaigns run one
        # script per generated line, and even building the context
        # kwargs for a no-op injector was visible at that rate.)
        if self.faults is not NULL_INJECTOR:
            self.faults.fire("shell.script", network=self.network,
                             host=host, path=full)
        with self.tracer.span("script", path=full, host=host.name,
                              depth=self._depth) as span:
            if self.engine == "compiled":
                status, output = self._run_compiled(
                    compile_text(text, full), env)
            else:
                status, output = self._run_parsed(
                    parse(text, script=full), env)
            span.annotate(status=status)
        return status, output

    def run_text_on(self, host, text, script="<inline>", variables=None):
        """Run inline shell *text* on *host*; returns (status, output)."""
        env = ShellEnvironment(host=host, variables=variables, script=script)
        if self.engine == "compiled":
            return self._run_compiled(compile_text(text, script), env)
        return self._run_parsed(parse(text, script=script), env)

    # -- execution core ----------------------------------------------------

    def _run_compiled(self, program, env):
        """Run a compiled *program* (one closure per script) under the
        same depth accounting and ``exit`` semantics as the tree-walk."""
        if self._depth >= _MAX_SCRIPT_DEPTH:
            raise ShellError(
                f"script nesting deeper than {_MAX_SCRIPT_DEPTH} "
                f"(recursive generation bug?)", script=env.script
            )
        self._depth += 1
        output = []
        status = 0
        try:
            status = program(self, env, output)
        except ExitScript as exit_request:
            status = exit_request.status
        finally:
            self._depth -= 1
        return status, "".join(output)

    def _run_parsed(self, script, env):
        if self._depth >= _MAX_SCRIPT_DEPTH:
            raise ShellError(
                f"script nesting deeper than {_MAX_SCRIPT_DEPTH} "
                f"(recursive generation bug?)", script=script.source
            )
        self._depth += 1
        output = []
        status = 0
        try:
            for statement in script.statements:
                status = self._execute(statement, env, output)
                if env.errexit and status != 0:
                    raise errexit_failure(
                        status, getattr(statement, "line", None), env)
        except ExitScript as exit_request:
            status = exit_request.status
        finally:
            self._depth -= 1
        return status, "".join(output)

    def _execute(self, node, env, output):
        if isinstance(node, SimpleCommand):
            return self._execute_simple(node, env, output)
        if isinstance(node, AndOrList):
            return self._execute_and_or(node, env, output)
        if isinstance(node, IfClause):
            return self._execute_if(node, env, output)
        if isinstance(node, ForClause):
            return self._execute_for(node, env, output)
        raise ShellError(f"unknown AST node {type(node).__name__}")

    def _execute_and_or(self, node, env, output):
        # Non-final members of && / || chains do not trip errexit.
        saved_errexit = env.errexit
        env.errexit = False
        try:
            status = self._execute(node.first, env, output)
            for operator, command in node.rest:
                if operator == "&&" and status != 0:
                    continue
                if operator == "||" and status == 0:
                    continue
                status = self._execute(command, env, output)
        finally:
            env.errexit = saved_errexit
        return status

    def _execute_if(self, node, env, output):
        saved_errexit = env.errexit
        env.errexit = False
        try:
            condition_status = self._execute(node.condition, env, output)
        finally:
            env.errexit = saved_errexit
        body = node.then_body if condition_status == 0 else node.else_body
        status = 0
        for statement in body:
            status = self._execute(statement, env, output)
            if env.errexit and status != 0:
                raise errexit_failure(
                    status, getattr(statement, "line", None), env)
        return status

    def _execute_for(self, node, env, output):
        items = []
        for word in node.items:
            items.extend(expand_word(word, env))
        status = 0
        for item in items:
            env.set(node.variable, item)
            for statement in node.body:
                status = self._execute(statement, env, output)
                if env.errexit and status != 0:
                    raise errexit_failure(
                        status, getattr(statement, "line", None), env)
        return status

    def _execute_simple(self, node, env, output):
        for name, value_parts in node.assignments:
            env.set(name, "".join(expand_word(value_parts, env)) if
                    value_parts else "")
        argv = []
        for word in node.words:
            argv.extend(expand_word(word, env))
        if not argv:
            return 0
        diagnostic = None
        try:
            status, command_output = self._dispatch(argv, env, node)
        except CommandError as error:
            # Dispatch failures model stderr: the diagnostic belongs to
            # the captured output stream, never to a ``>``-redirected
            # file (which is still created/truncated, as bash performs
            # the redirect before command lookup).
            status, command_output = 127, ""
            diagnostic = f"{error}\n"
        self.log.append(LogEntry(env.host.name, " ".join(argv), status))
        if node.redirect is not None:
            target = expand_single(node.redirect.target, env,
                                   what="redirect target")
            env.host.fs.write(normalize(target, env.cwd), command_output,
                              append=node.redirect.append)
        else:
            output.append(command_output)
        if diagnostic is not None:
            output.append(diagnostic)
        return status

    def _dispatch(self, argv, env, node):
        name = argv[0]
        handler = REGISTRY.get(name)
        if handler is not None:
            if node.background:
                # Background builtins (monitors started with &) become
                # processes so teardown can find and kill them.
                env.host.spawn(argv, background=True)
                return 0, ""
            return handler(self, env, argv)
        if "/" in name:
            return self._execute_program(argv, env, node)
        raise CommandError(f"command not found: {name}")

    def _execute_program(self, argv, env, node):
        path = normalize(argv[0], env.cwd)
        if not env.host.fs.is_file(path):
            return 127, f"{argv[0]}: no such file\n"
        if node.background:
            env.host.spawn([path] + list(argv[1:]), background=True)
            return 0, ""
        if path.endswith(".sh"):
            # Directly-invoked shell scripts are interpreted in place.
            return self.run_script_file(env.host, path, args=argv[1:],
                                        parent_env=env)
        # A foreground binary runs to completion; model as a transient
        # process that has already exited successfully.
        process = env.host.spawn([path] + list(argv[1:]), background=False)
        process.alive = False
        return 0, ""

    # -- audit helpers ------------------------------------------------------

    def commands_on(self, host_name):
        return [entry for entry in self.log if entry.host == host_name]

    def failed_commands(self):
        return [entry for entry in self.log if entry.status != 0]
