"""Builtin commands for the shell interpreter.

Each builtin has signature ``fn(interp, env, argv) -> (status, output)``.
They operate on the virtual host/filesystem/network, which is how the
generated deployment scripts actually take effect on the cluster.
"""

from __future__ import annotations

from repro.errors import ClusterError, CommandError
from repro.shellvm.environment import ExitScript
from repro.vcluster.archives import extraction_plan
from repro.vcluster.filesystem import normalize

REGISTRY = {}


def builtin(name):
    def register(fn):
        REGISTRY[name] = fn
        return fn
    return register


def _flags(argv, known):
    """Split leading ``-x`` flags from operands; unknown flags error."""
    flags = set()
    operands = []
    for arg in argv[1:]:
        if arg.startswith("-") and len(arg) > 1 and not operands \
                and not arg.lstrip("-").isdigit():
            for char in arg[1:]:
                if char not in known:
                    raise CommandError(
                        f"{argv[0]}: unknown flag -{char}"
                    )
                flags.add(char)
        else:
            operands.append(arg)
    return flags, operands


@builtin("echo")
def _echo(interp, env, argv):
    args = argv[1:]
    newline = "\n"
    if args and args[0] == "-n":
        newline = ""
        args = args[1:]
    return 0, " ".join(args) + newline


@builtin("true")
def _true(interp, env, argv):
    return 0, ""


@builtin("false")
def _false(interp, env, argv):
    return 1, ""


@builtin(":")
def _colon(interp, env, argv):
    return 0, ""


@builtin("exit")
def _exit(interp, env, argv):
    status = 0
    if len(argv) > 1:
        try:
            status = int(argv[1])
        except ValueError:
            raise CommandError(f"exit: bad status {argv[1]!r}")
    raise ExitScript(status)


@builtin("set")
def _set(interp, env, argv):
    for arg in argv[1:]:
        if arg == "-e":
            env.errexit = True
        elif arg == "+e":
            env.errexit = False
        else:
            raise CommandError(f"set: unsupported option {arg!r}")
    return 0, ""


@builtin("export")
def _export(interp, env, argv):
    for arg in argv[1:]:
        if "=" in arg:
            name, value = arg.split("=", 1)
            env.set(name, value)
        # `export NAME` without value is a no-op for us.
    return 0, ""


@builtin("cd")
def _cd(interp, env, argv):
    target = argv[1] if len(argv) > 1 else "/"
    path = normalize(target, env.cwd)
    if not env.host.fs.is_dir(path):
        return 1, f"cd: no such directory: {target}\n"
    env.cwd = path
    return 0, ""


@builtin("pwd")
def _pwd(interp, env, argv):
    return 0, env.cwd + "\n"


@builtin("hostname")
def _hostname(interp, env, argv):
    return 0, env.host.name + "\n"


@builtin("sleep")
def _sleep(interp, env, argv):
    if len(argv) != 2:
        raise CommandError("sleep: expected one duration argument")
    try:
        seconds = float(argv[1])
    except ValueError:
        raise CommandError(f"sleep: bad duration {argv[1]!r}")
    interp.slept_seconds += seconds
    return 0, ""


@builtin("wait")
def _wait(interp, env, argv):
    return 0, ""


@builtin("chmod")
def _chmod(interp, env, argv):
    # Permission bits are not modelled; succeed if targets exist.
    _mode_flags, operands = _flags(argv, "R")
    for path in operands[1:]:
        if not env.host.fs.exists(normalize(path, env.cwd)):
            return 1, f"chmod: no such file: {path}\n"
    return 0, ""


@builtin("mkdir")
def _mkdir(interp, env, argv):
    flags, operands = _flags(argv, "p")
    if not operands:
        raise CommandError("mkdir: missing operand")
    for path in operands:
        try:
            env.host.fs.mkdir(normalize(path, env.cwd),
                              parents="p" in flags)
        except ClusterError as error:
            return 1, f"mkdir: {error}\n"
    return 0, ""


@builtin("rm")
def _rm(interp, env, argv):
    flags, operands = _flags(argv, "rf")
    if not operands:
        raise CommandError("rm: missing operand")
    for path in operands:
        full = normalize(path, env.cwd)
        if not env.host.fs.exists(full):
            if "f" in flags:
                continue
            return 1, f"rm: no such file or directory: {path}\n"
        env.host.fs.remove(full, recursive="r" in flags)
    return 0, ""


@builtin("cp")
def _cp(interp, env, argv):
    flags, operands = _flags(argv, "r")
    if len(operands) != 2:
        raise CommandError("cp: expected source and destination")
    src = normalize(operands[0], env.cwd)
    dst = normalize(operands[1], env.cwd)
    if env.host.fs.is_dir(src) and "r" not in flags:
        return 1, f"cp: -r required for directory {operands[0]}\n"
    try:
        env.host.fs.copy(src, dst)
    except ClusterError as error:
        return 1, f"cp: {error}\n"
    return 0, ""


@builtin("cat")
def _cat(interp, env, argv):
    if len(argv) < 2:
        raise CommandError("cat: missing operand")
    chunks = []
    for path in argv[1:]:
        full = normalize(path, env.cwd)
        if not env.host.fs.is_file(full):
            return 1, f"cat: no such file: {path}\n"
        chunks.append(env.host.fs.read(full))
    return 0, "".join(chunks)


@builtin("tar")
def _tar(interp, env, argv):
    """Supports extraction: ``tar -xzf archive.tar.gz -C /dest``."""
    args = argv[1:]
    mode = None
    archive = None
    dest = env.cwd
    index = 0
    while index < len(args):
        arg = args[index]
        if arg.startswith("-") and "f" in arg:
            mode = "x" if "x" in arg else ("c" if "c" in arg else None)
            index += 1
            if index >= len(args):
                raise CommandError("tar: -f needs an archive name")
            archive = args[index]
        elif arg == "-C":
            index += 1
            if index >= len(args):
                raise CommandError("tar: -C needs a directory")
            dest = normalize(args[index], env.cwd)
        else:
            raise CommandError(f"tar: unsupported argument {arg!r}")
        index += 1
    if mode != "x" or archive is None:
        raise CommandError("tar: only extraction (-xzf) is supported")
    archive_path = normalize(archive, env.cwd)
    if not env.host.fs.is_file(archive_path):
        return 1, f"tar: no such archive: {archive}\n"
    try:
        plan = extraction_plan(env.host.fs.read(archive_path), dest)
    except ClusterError as error:
        return 1, f"tar: {error}\n"
    env.host.fs.mkdir(dest, parents=True)
    env.host.fs.write_many(plan)
    return 0, ""


@builtin("scp")
def _scp(interp, env, argv):
    flags, operands = _flags(argv, "r")
    if len(operands) != 2:
        raise CommandError("scp: expected source and destination")
    src_host, src_path = _split_remote(interp, env, operands[0])
    dst_host, dst_path = _split_remote(interp, env, operands[1])
    if env.host.fs.is_dir(src_path) and src_host is env.host \
            and "r" not in flags:
        return 1, f"scp: -r required for directory {operands[0]}\n"
    try:
        interp.network.transfer(src_host, src_path, dst_host, dst_path)
    except ClusterError as error:
        return 1, f"scp: {error}\n"
    return 0, ""


def _split_remote(interp, env, spec):
    if ":" in spec and not spec.startswith("/"):
        host_name, path = spec.split(":", 1)
        host = interp.network.host(host_name)
        return host, normalize(path, "/")
    return env.host, normalize(spec, env.cwd)


@builtin("ssh")
def _ssh(interp, env, argv):
    args = argv[1:]
    # Tolerate the usual non-interactive options.
    while args and args[0] in ("-q", "-n", "-T"):
        args = args[1:]
    if not args:
        raise CommandError("ssh: missing host")
    host_name = args[0]
    remote_argv = args[1:]
    if not remote_argv:
        raise CommandError("ssh: missing remote command")
    host = interp.network.host(host_name)
    if getattr(host, "crashed", False):
        # A dark host refuses the connection; under ``set -e`` the
        # surrounding deployment script aborts, exactly like a real
        # crashed node mid-deploy.
        return 255, (f"ssh: connect to host {host_name}: "
                     f"connection refused ({host.crash_reason})\n")
    command_text = " ".join(remote_argv)
    return interp.run_text_on(host, command_text,
                              script=f"ssh:{host_name}")


@builtin("bash")
def _bash(interp, env, argv):
    return _run_script_builtin(interp, env, argv)


@builtin("sh")
def _sh(interp, env, argv):
    return _run_script_builtin(interp, env, argv)


def _run_script_builtin(interp, env, argv):
    if len(argv) < 2:
        raise CommandError(f"{argv[0]}: missing script operand")
    path = normalize(argv[1], env.cwd)
    return interp.run_script_file(env.host, path, args=argv[2:],
                                  parent_env=env)


@builtin("killall")
def _killall(interp, env, argv):
    if len(argv) != 2:
        raise CommandError("killall: expected one process name")
    killed = env.host.kill_by_name(argv[1])
    if not killed:
        return 1, f"killall: no process found: {argv[1]}\n"
    return 0, ""


@builtin("test")
def _test(interp, env, argv):
    return (0 if _evaluate_test(argv[1:], argv[0], env) else 1), ""


@builtin("[")
def _bracket(interp, env, argv):
    if not argv or argv[-1] != "]":
        raise CommandError("[: missing closing ]")
    return (0 if _evaluate_test(argv[1:-1], "[", env) else 1), ""


def _evaluate_test(args, name, env):
    if not args:
        return False
    if args[0] == "!":
        return not _evaluate_test(args[1:], name, env)
    if len(args) == 2:
        flag, operand = args
        path = normalize(operand, env.cwd) if flag in ("-f", "-d", "-e") \
            else operand
        if flag == "-f":
            return env.host.fs.is_file(path)
        if flag == "-d":
            return env.host.fs.is_dir(path)
        if flag == "-e":
            return env.host.fs.exists(path)
        if flag == "-n":
            return operand != ""
        if flag == "-z":
            return operand == ""
        raise CommandError(f"{name}: unknown test {flag!r}")
    if len(args) == 3:
        left, operator, right = args
        if operator == "=":
            return left == right
        if operator == "!=":
            return left != right
        numeric = {"-eq": "==", "-ne": "!=", "-gt": ">",
                   "-ge": ">=", "-lt": "<", "-le": "<="}
        if operator in numeric:
            try:
                lhs, rhs = int(left), int(right)
            except ValueError:
                raise CommandError(
                    f"{name}: integer expected: {left!r} {right!r}"
                )
            return {
                "-eq": lhs == rhs, "-ne": lhs != rhs, "-gt": lhs > rhs,
                "-ge": lhs >= rhs, "-lt": lhs < rhs, "-le": lhs <= rhs,
            }[operator]
        raise CommandError(f"{name}: unknown operator {operator!r}")
    if len(args) == 1:
        return args[0] != ""
    raise CommandError(f"{name}: cannot evaluate {args!r}")
