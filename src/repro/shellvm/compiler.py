"""Closure compiler for the restricted shell dialect.

The tree-walking interpreter re-discovers the same facts on every
execution of a script: node types, which words are pure literals, which
command names resolve to which builtins, how their flags parse, where
redirects point.  For the generated deployment chassis those facts are
*point-invariant* — the scripts are shared across every sweep point
through the interned parse cache, and only driver/ignition content
changes between points.

``compile_script`` walks a frozen AST exactly once and partially
evaluates everything the AST alone determines:

* all-literal words collapse to constant argv fragments,
* constant command names pre-resolve their builtin handler out of
  ``REGISTRY`` (no per-execution dict probe or ``isinstance`` ladder),
* the hottest builtins specialize further: ``ssh`` pre-compiles its
  remote command text, ``scp``/``tar``/``mkdir``/``rm``/``test`` parse
  flags and pre-normalize absolute operand paths at compile time,
  ``echo`` folds to its output string,
* constant absolute redirect targets pre-normalize their path,
* errexit checks compile to per-statement closures carrying their line.

What remains at run time is exactly the per-point work: binding
driver/ignition variables, expanding the words that mention them, and
the builtins' real effects on the virtual hosts.  A specializer that
cannot prove it reproduces the builtin's behaviour declines, and the
command falls back to the pre-resolved handler — failure modes
(unknown flags, bad operands) always take the generic path so their
diagnostics stay byte-identical to the interpreter's.

Compiled programs are closures ``fn(interp, env, output) -> status``
sharing the audit log, tracer spans, fault points and builtins with
the interpreter, so a campaign stores a byte-identical database under
either engine (``benchmarks/test_bench_shellvm.py`` enforces this);
the tree-walker stays available as the oracle via
``REPRO_SHELLVM=interp``.

The compile cache registers in the :mod:`repro.hotpath` plane beside
the parse cache, keyed the same way — compiled once per unique script
text, shared across trials, tenants and threads.
"""

from __future__ import annotations

from repro import hotpath
from repro.errors import ClusterError, CommandError, ReproError, ShellError
from repro.shellvm.builtins import REGISTRY, _flags
from repro.shellvm.environment import (
    ShellEnvironment,
    errexit_failure,
    expand_single,
    expand_word,
)
from repro.shellvm.nodes import (
    AndOrList,
    ForClause,
    IfClause,
    SimpleCommand,
)
from repro.shellvm.parser import parse
from repro.vcluster.archives import extraction_plan
from repro.vcluster.filesystem import normalize

_COMPILE_CACHE = hotpath.MemoCache("shellvm.compile", capacity=8192)


def compile_script(script):
    """The compiled form of *script*: ``fn(interp, env, output) -> status``.

    Cached beside the parse cache under the same key, so every trial of
    a sweep reuses one compiled program per unique script text.
    """
    return _COMPILE_CACHE.get((script.source, script.text),
                              lambda: compile_fresh(script))


#: Pointer-identity fast path in front of the compile memo.  Script
#: texts reaching the engine are themselves cached objects (bundle
#: install plans, archive extraction plans, const ssh fragments), so
#: the *same str object* arrives at every execution; an ``id()`` probe
#: skips hashing kilobytes of script text per run.  Entries hold the
#: text, pinning its id for the lifetime of the entry.
_IDENTITY_LIMIT = 4096
_IDENTITY = {}      # id(text) -> (text, script_label, program)


def compile_text(text, script="<script>"):
    """Compile shell *text* directly, parsing only on a cache miss.

    The key matches :func:`compile_script`'s ``(source, text)``, so the
    two entry points share entries; on a hit the parse step (and its
    own cache probe) is skipped entirely.
    """
    if hotpath.enabled():
        entry = _IDENTITY.get(id(text))
        if entry is not None and entry[0] is text and entry[1] == script:
            return entry[2]
        program = _COMPILE_CACHE.get(
            (script, text),
            lambda: compile_fresh(parse(text, script=script)))
        if len(_IDENTITY) >= _IDENTITY_LIMIT:
            del _IDENTITY[next(iter(_IDENTITY))]
        _IDENTITY[id(text)] = (text, script, program)
        return program
    return _COMPILE_CACHE.get((script, text),
                              lambda: compile_fresh(parse(text,
                                                          script=script)))


def compile_fresh(script):
    """Compile *script* unconditionally (no cache)."""
    return _compile_body(script.statements)


# -- words --------------------------------------------------------------

def _is_literal(parts):
    return all(kind == "lit" for kind, _value, _quoted in parts)


def _compile_word(parts):
    """``(const_fields, fn)`` — exactly one of the two is set.

    Literal words expand identically in every environment, so they are
    expanded once here; variable-bearing words compile to a per-
    execution expander.
    """
    if _is_literal(parts):
        return tuple(expand_word(parts, None)), None
    return None, lambda env: expand_word(parts, env)


def _compile_assignment(name, parts):
    """``(name, const_value, fn)`` mirroring the interpreter's
    ``"".join(expand_word(parts, env)) if parts else ""``."""
    if not parts:
        return name, "", None
    if _is_literal(parts):
        return name, "".join(expand_word(parts, None)), None
    return name, None, lambda env: "".join(expand_word(parts, env))


# -- statements ---------------------------------------------------------

def _compile_statement(node):
    if isinstance(node, SimpleCommand):
        return _compile_simple(node)
    if isinstance(node, AndOrList):
        return _compile_and_or(node)
    if isinstance(node, IfClause):
        return _compile_if(node)
    if isinstance(node, ForClause):
        return _compile_for(node)
    raise ShellError(f"unknown AST node {type(node).__name__}")


def _compile_body(statements):
    """A statement sequence with interpreter-identical errexit checks."""
    steps = tuple((getattr(node, "line", None), _compile_statement(node))
                  for node in statements)

    def run_body(interp, env, output):
        status = 0
        for line, step in steps:
            status = step(interp, env, output)
            if env.errexit and status != 0:
                raise errexit_failure(status, line, env)
        return status

    return run_body


def _compile_and_or(node):
    first = _compile_statement(node.first)
    rest = tuple((operator, _compile_statement(command))
                 for operator, command in node.rest)

    def run_and_or(interp, env, output):
        # Non-final members of && / || chains do not trip errexit.
        saved_errexit = env.errexit
        env.errexit = False
        try:
            status = first(interp, env, output)
            for operator, step in rest:
                if operator == "&&" and status != 0:
                    continue
                if operator == "||" and status == 0:
                    continue
                status = step(interp, env, output)
        finally:
            env.errexit = saved_errexit
        return status

    return run_and_or


def _compile_if(node):
    condition = _compile_statement(node.condition)
    then_body = _compile_body(node.then_body)
    else_body = _compile_body(node.else_body)

    def run_if(interp, env, output):
        saved_errexit = env.errexit
        env.errexit = False
        try:
            condition_status = condition(interp, env, output)
        finally:
            env.errexit = saved_errexit
        body = then_body if condition_status == 0 else else_body
        return body(interp, env, output)

    return run_if


def _compile_for(node):
    variable = node.variable
    item_words = tuple(_compile_word(word) for word in node.items)
    const_items = None
    if all(const is not None for const, _fn in item_words):
        const_items = tuple(field for const, _fn in item_words
                            for field in const)
    body = _compile_body(node.body)

    def run_for(interp, env, output):
        if const_items is not None:
            items = const_items
        else:
            items = []
            for const, expander in item_words:
                items.extend(const if const is not None else expander(env))
        status = 0
        for item in items:
            env.set(variable, item)
            status = body(interp, env, output)
        return status

    return run_for


# -- simple commands ----------------------------------------------------

def _compile_simple(node):
    assignments = tuple(_compile_assignment(name, parts)
                        for name, parts in node.assignments)
    words = tuple(_compile_word(parts) for parts in node.words)
    const_argv = None
    if all(const is not None for const, _fn in words):
        const_argv = tuple(field for const, _fn in words for field in const)

    # The dominant chassis shape — constant argv, no assignment prefix —
    # dispatches through a pre-resolved (and usually specialized)
    # invoker with a pre-joined audit line.
    if const_argv and not node.assignments:
        name = const_argv[0]
        handler = REGISTRY.get(name)
        if handler is not None:
            if not node.background:
                return _compile_const_builtin(node, const_argv, handler)
            # Backgrounded builtins become processes (monitors started
            # with &), exactly as _dispatch does before handler lookup.
            def invoke_background(interp, env):
                env.host.spawn(const_argv, background=True)
                return 0, ""
            return _wrap_invoke(node, const_argv, invoke_background)
        if name.startswith("/"):
            program = _compile_const_program(node, const_argv)
            if program is not None:
                return program

    return _compile_generic_simple(node, assignments, words, const_argv)


def _compile_const_program(node, const_argv):
    """Specialize execution of a constant absolute program path —
    ignition binaries, monitors started with ``&``, phase scripts run
    by path — mirroring ``_execute_program`` with the path pre-normalized
    and the spawn argv pre-built."""
    path = normalize(const_argv[0], "/")
    missing = f"{const_argv[0]}: no such file\n"
    if node.background:
        spawn_argv = (path,) + const_argv[1:]

        def invoke(interp, env):
            if not env.host.fs.is_file(path):
                return 127, missing
            env.host.spawn(spawn_argv, background=True)
            return 0, ""
    elif path.endswith(".sh"):
        script_args = const_argv[1:]

        def invoke(interp, env):
            if not env.host.fs.is_file(path):
                return 127, missing
            return interp.run_script_file(env.host, path, args=script_args,
                                          parent_env=env)
    else:
        spawn_argv = (path,) + const_argv[1:]

        def invoke(interp, env):
            if not env.host.fs.is_file(path):
                return 127, missing
            process = env.host.spawn(spawn_argv, background=False)
            process.alive = False
            return 0, ""
    return _wrap_invoke(node, const_argv, invoke)


def _compile_redirect(redirect):
    """``(pre_path, const_target, target_fn, append)`` for a redirect.

    A literal target always expands to exactly one field; when it is
    absolute its normalized path is also environment-independent.
    """
    if redirect is None:
        return None
    if _is_literal(redirect.target):
        target = expand_single(redirect.target, None, what="redirect target")
        if target.startswith("/"):
            return normalize(target, "/"), None, None, redirect.append
        return None, target, None, redirect.append
    expander = (lambda env: expand_single(redirect.target, env,
                                          what="redirect target"))
    return None, None, expander, redirect.append


def _deliver(env, output, redirect, command_output, diagnostic):
    """Route command output per the (compiled) redirect, diagnostics to
    the captured stream — identical to the interpreter's fixed
    semantics: a dispatch failure never lands in a redirected file."""
    if redirect is None:
        output.append(command_output)
    else:
        pre_path, const_target, target_fn, append = redirect
        if pre_path is None:
            target = const_target if target_fn is None else target_fn(env)
            pre_path = normalize(target, env.cwd)
        env.host.fs.write(pre_path, command_output, append=append)
    if diagnostic is not None:
        output.append(diagnostic)


def _const_invoke(const_argv, handler):
    """The specialized invoke for *const_argv*, or a thin handler call."""
    specializer = _SPECIALIZERS.get(const_argv[0])
    if specializer is not None:
        try:
            invoke = specializer(const_argv)
        except ReproError:
            # Anything the specializer trips over at compile time, the
            # generic handler must trip over at run time — fall back so
            # the diagnostic (and its timing) match the interpreter.
            invoke = None
        if invoke is not None:
            return invoke

    def invoke(interp, env):
        return handler(interp, env, const_argv)
    return invoke


def _compile_const_builtin(node, const_argv, handler):
    return _wrap_invoke(node, const_argv,
                        _const_invoke(const_argv, handler))


def _wrap_invoke(node, const_argv, invoke):
    """The full statement closure around an ``(interp, env) ->
    (status, output)`` invoke: audit-log append, dispatch-failure
    diagnostics, redirect routing."""
    command = " ".join(const_argv)
    redirect = _compile_redirect(node.redirect)
    from repro.shellvm.interpreter import LogEntry

    if redirect is None:
        def run_simple(interp, env, output):
            try:
                status, command_output = invoke(interp, env)
            except CommandError as error:
                status, command_output = 127, f"{error}\n"
            interp.log.append(LogEntry(env.host.name, command, status))
            output.append(command_output)
            return status
        return run_simple

    def run_simple_redirected(interp, env, output):
        diagnostic = None
        try:
            status, command_output = invoke(interp, env)
        except CommandError as error:
            status, command_output = 127, ""
            diagnostic = f"{error}\n"
        interp.log.append(LogEntry(env.host.name, command, status))
        _deliver(env, output, redirect, command_output, diagnostic)
        return status

    return run_simple_redirected


def _compile_generic_simple(node, assignments, words, const_argv):
    redirect = _compile_redirect(node.redirect)
    from repro.shellvm.interpreter import LogEntry

    def run_simple(interp, env, output):
        for name, const_value, value_fn in assignments:
            env.set(name, const_value if value_fn is None else value_fn(env))
        if const_argv is not None:
            argv = const_argv
        else:
            argv = []
            for const, expander in words:
                argv.extend(const if const is not None else expander(env))
        if not argv:
            return 0
        diagnostic = None
        try:
            status, command_output = interp._dispatch(argv, env, node)
        except CommandError as error:
            status, command_output = 127, ""
            diagnostic = f"{error}\n"
        interp.log.append(LogEntry(env.host.name, " ".join(argv), status))
        _deliver(env, output, redirect, command_output, diagnostic)
        return status

    return run_simple


# -- builtin specializers -----------------------------------------------
#
# Each specializer receives a constant argv and returns either a closure
# ``fn(interp, env) -> (status, output)`` that reproduces the builtin's
# behaviour exactly for that argv, or ``None`` to decline.  Decline on
# anything uncertain: error paths must come from the real builtin so
# diagnostics stay identical.  Raising a ReproError here also counts as
# declining (the caller catches it).

_SPECIALIZERS = {}


def _specializer(name):
    def register(fn):
        _SPECIALIZERS[name] = fn
        return fn
    return register


def _const_result(status, output):
    def run(interp, env):
        return status, output
    return run


def _abs_paths(operands):
    """Pre-normalized paths for all-absolute *operands*, else None."""
    paths = []
    for operand in operands:
        if not operand.startswith("/"):
            return None
        paths.append(normalize(operand, "/"))
    return paths


@_specializer("echo")
def _spec_echo(argv):
    args = argv[1:]
    newline = "\n"
    if args and args[0] == "-n":
        newline = ""
        args = args[1:]
    return _const_result(0, " ".join(args) + newline)


@_specializer("true")
def _spec_true(argv):
    return _const_result(0, "")


@_specializer("false")
def _spec_false(argv):
    return _const_result(1, "")


@_specializer(":")
def _spec_colon(argv):
    return _const_result(0, "")


@_specializer("wait")
def _spec_wait(argv):
    return _const_result(0, "")


@_specializer("set")
def _spec_set(argv):
    if any(arg not in ("-e", "+e") for arg in argv[1:]):
        return None
    # The last -e/+e wins; replay just the final state.
    errexit = None
    for arg in argv[1:]:
        errexit = arg == "-e"
    if errexit is None:
        return _const_result(0, "")

    def run_set(interp, env):
        env.errexit = errexit
        return 0, ""
    return run_set


@_specializer("sleep")
def _spec_sleep(argv):
    if len(argv) != 2:
        return None
    try:
        seconds = float(argv[1])
    except ValueError:
        return None

    def run_sleep(interp, env):
        interp.slept_seconds += seconds
        return 0, ""
    return run_sleep


@_specializer("killall")
def _spec_killall(argv):
    if len(argv) != 2:
        return None
    name = argv[1]
    failure = f"killall: no process found: {name}\n"

    def run_killall(interp, env):
        if not env.host.kill_by_name(name):
            return 1, failure
        return 0, ""
    return run_killall


@_specializer("test")
def _spec_test(argv):
    return _compile_test(argv[1:])


@_specializer("[")
def _spec_bracket(argv):
    if not argv or argv[-1] != "]":
        return None
    return _compile_test(argv[1:-1])


def _compile_test(args):
    """A closure for the constant shapes of ``test``; None otherwise."""
    if args and args[0] == "!":
        inner = _compile_test(args[1:])
        if inner is None:
            return None

        def run_not(interp, env):
            status, _out = inner(interp, env)
            return (1 if status == 0 else 0), ""
        return run_not
    if len(args) == 2:
        flag, operand = args
        if flag in ("-f", "-d", "-e"):
            if not operand.startswith("/"):
                return None
            path = normalize(operand, "/")
            probe = {"-f": "is_file", "-d": "is_dir", "-e": "exists"}[flag]

            def run_probe(interp, env):
                return (0 if getattr(env.host.fs, probe)(path) else 1), ""
            return run_probe
        if flag == "-n":
            return _const_result(0 if operand != "" else 1, "")
        if flag == "-z":
            return _const_result(0 if operand == "" else 1, "")
        return None
    if len(args) == 3:
        left, operator, right = args
        if operator == "=":
            return _const_result(0 if left == right else 1, "")
        if operator == "!=":
            return _const_result(0 if left != right else 1, "")
        return None  # numeric comparisons are rare; keep the oracle path
    if len(args) == 1:
        return _const_result(0 if args[0] != "" else 1, "")
    return None


@_specializer("mkdir")
def _spec_mkdir(argv):
    flags, operands = _flags(argv, "p")
    if not operands:
        return None
    paths = _abs_paths(operands)
    if paths is None:
        return None
    parents = "p" in flags

    def run_mkdir(interp, env):
        for path in paths:
            try:
                env.host.fs.mkdir(path, parents=parents)
            except ClusterError as error:
                return 1, f"mkdir: {error}\n"
        return 0, ""
    return run_mkdir


@_specializer("rm")
def _spec_rm(argv):
    flags, operands = _flags(argv, "rf")
    if not operands:
        return None
    pairs = _abs_paths(operands)
    if pairs is None:
        return None
    force = "f" in flags
    recursive = "r" in flags
    targets = tuple(zip(operands, pairs))

    def run_rm(interp, env):
        fs = env.host.fs
        for operand, path in targets:
            if not fs.exists(path):
                if force:
                    continue
                return 1, f"rm: no such file or directory: {operand}\n"
            fs.remove(path, recursive=recursive)
        return 0, ""
    return run_rm


@_specializer("cat")
def _spec_cat(argv):
    if len(argv) < 2:
        return None
    paths = _abs_paths(argv[1:])
    if paths is None:
        return None
    targets = tuple(zip(argv[1:], paths))

    def run_cat(interp, env):
        fs = env.host.fs
        chunks = []
        for operand, path in targets:
            if not fs.is_file(path):
                return 1, f"cat: no such file: {operand}\n"
            chunks.append(fs.read(path))
        return 0, "".join(chunks)
    return run_cat


@_specializer("tar")
def _spec_tar(argv):
    """Pre-parse ``tar -xzf archive -C dest`` (the only supported form)."""
    args = argv[1:]
    mode = None
    archive = None
    dest = None
    index = 0
    while index < len(args):
        arg = args[index]
        if arg.startswith("-") and "f" in arg:
            mode = "x" if "x" in arg else ("c" if "c" in arg else None)
            index += 1
            if index >= len(args):
                return None
            archive = args[index]
        elif arg == "-C":
            index += 1
            if index >= len(args):
                return None
            if not args[index].startswith("/"):
                return None
            dest = normalize(args[index], "/")
        else:
            return None
        index += 1
    if mode != "x" or archive is None or dest is None:
        return None
    if not archive.startswith("/"):
        return None
    archive_path = normalize(archive, "/")
    missing = f"tar: no such archive: {archive}\n"

    def run_tar(interp, env):
        fs = env.host.fs
        if not fs.is_file(archive_path):
            return 1, missing
        try:
            plan = extraction_plan(fs.read(archive_path), dest)
        except ClusterError as error:
            return 1, f"tar: {error}\n"
        fs.mkdir(dest, parents=True)
        fs.write_many(plan)
        return 0, ""
    return run_tar


@_specializer("scp")
def _spec_scp(argv):
    flags, operands = _flags(argv, "r")
    if len(operands) != 2:
        return None

    def pre(spec):
        # Mirrors _split_remote: (remote host name | None, path); the
        # local relative case needs env.cwd, so decline it.
        if ":" in spec and not spec.startswith("/"):
            host_name, path = spec.split(":", 1)
            return host_name, normalize(path, "/")
        if not spec.startswith("/"):
            raise CommandError("scp: relative local path")
        return None, normalize(spec, "/")

    src_host_name, src_path = pre(operands[0])
    dst_host_name, dst_path = pre(operands[1])
    need_r = "r" not in flags
    dir_error = f"scp: -r required for directory {operands[0]}\n"

    def run_scp(interp, env):
        network = interp.network
        src_host = (env.host if src_host_name is None
                    else network.host(src_host_name))
        dst_host = (env.host if dst_host_name is None
                    else network.host(dst_host_name))
        if need_r and src_host is env.host \
                and env.host.fs.is_dir(src_path):
            return 1, dir_error
        try:
            network.transfer(src_host, src_path, dst_host, dst_path)
        except ClusterError as error:
            return 1, f"scp: {error}\n"
        return 0, ""
    return run_scp


class _RemoteEnv:
    """Just enough environment for a fused single-command ssh remote.

    Const-specialized invokes touch only ``env.host`` (and ``errexit``
    for ``set``); a full :class:`ShellEnvironment` per remote command
    would be the single largest cost of a fused ssh call.
    """

    __slots__ = ("host", "errexit")

    def __init__(self, host):
        self.host = host
        self.errexit = False


def _fused_remote(command_text, script_label):
    """``(invoke, command_str)`` when the remote text is one foreground
    constant simple command with a specialized invoke; None otherwise.

    Such a remote runs without the full script ceremony (fresh
    environment, depth bookkeeping, output buffer): a single
    non-nesting command cannot observe any of it.  ``bash``/``sh``/
    ``ssh`` remotes are excluded — they re-enter script execution,
    where depth and tracing spans are observable.
    """
    script = parse(command_text, script_label)
    if len(script.statements) != 1:
        return None
    node = script.statements[0]
    if not isinstance(node, SimpleCommand) or node.assignments \
            or node.background or node.redirect is not None:
        return None
    if not all(_is_literal(parts) for parts in node.words):
        return None
    const_argv = tuple(field for parts in node.words
                       for field in expand_word(parts, None))
    if not const_argv or const_argv[0] in ("bash", "sh", "ssh"):
        return None
    specializer = _SPECIALIZERS.get(const_argv[0])
    if specializer is None or const_argv[0] not in REGISTRY:
        return None
    try:
        invoke = specializer(const_argv)
    except ReproError:
        return None
    if invoke is None:
        return None
    return invoke, " ".join(const_argv)


@_specializer("ssh")
def _spec_ssh(argv):
    args = argv[1:]
    while args and args[0] in ("-q", "-n", "-T"):
        args = args[1:]
    if len(args) < 2:
        return None
    host_name = args[0]
    command_text = " ".join(args[1:])
    script_label = f"ssh:{host_name}"
    refused_prefix = f"ssh: connect to host {host_name}: connection refused"

    try:
        fused = _fused_remote(command_text, script_label)
    except ShellError:
        # The remote text does not parse; the interpreter surfaces that
        # only when (and if) the ssh line actually executes — delegate.
        return None

    if fused is not None:
        inner_invoke, inner_command = fused
        from repro.shellvm.interpreter import LogEntry

        def run_ssh_fused(interp, env):
            host = interp.network.host(host_name)
            if host.crashed:
                return 255, f"{refused_prefix} ({host.crash_reason})\n"
            try:
                status, out = inner_invoke(interp, _RemoteEnv(host))
            except CommandError as error:
                status, out = 127, f"{error}\n"
            interp.log.append(LogEntry(host_name, inner_command, status))
            return status, out
        return run_ssh_fused

    program = compile_text(command_text, script_label)

    def run_ssh(interp, env):
        host = interp.network.host(host_name)
        if host.crashed:
            return 255, f"{refused_prefix} ({host.crash_reason})\n"
        remote_env = ShellEnvironment(host=host, script=script_label)
        return interp._run_compiled(program, remote_env)
    return run_ssh


@_specializer("bash")
def _spec_bash(argv):
    return _spec_run_script(argv)


@_specializer("sh")
def _spec_sh(argv):
    return _spec_run_script(argv)


def _spec_run_script(argv):
    if len(argv) < 2 or not argv[1].startswith("/"):
        return None
    path = normalize(argv[1], "/")
    script_args = argv[2:]

    def run_script(interp, env):
        return interp.run_script_file(env.host, path, args=script_args,
                                      parent_env=env)
    return run_script
