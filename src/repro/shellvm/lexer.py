"""Lexer for the restricted POSIX-shell dialect Mulini generates.

The dialect is the intersection of what real deployment scripts need and
what can be interpreted deterministically: words with single/double
quoting, ``$VAR``/``${VAR}`` expansion, the ``&&``/``||``/``;``/``&``
operators, ``>``/``>>`` redirection, comments and newlines.  Pipes,
subshells and command substitution are deliberately outside the dialect;
the generator never emits them.

Words are tokenized into *parts* so the evaluator can expand variables
with correct quoting semantics: each part is ``(kind, value, quoted)``
where kind is ``lit`` or ``var``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShellError

OPERATORS = ("&&", "||", ">>", ";", "&", ">", "\n")

_WORD_BREAK = set(" \t;&>\n#")


@dataclass(frozen=True)
class ShellToken:
    kind: str          # "word" | "op"
    value: object      # tuple of parts for words, operator text for ops
    line: int


def tokenize(text, script="<script>"):
    """Tokenize shell *text* into a list of :class:`ShellToken`."""
    tokens = []
    pos = 0
    line = 1
    length = len(text)

    def error(message):
        raise ShellError(message, line=line, script=script)

    while pos < length:
        char = text[pos]
        if char in " \t":
            pos += 1
            continue
        if char == "\\" and pos + 1 < length and text[pos + 1] == "\n":
            pos += 2
            line += 1
            continue
        if char == "#":
            while pos < length and text[pos] != "\n":
                pos += 1
            continue
        if char == "\n":
            tokens.append(ShellToken("op", "\n", line))
            pos += 1
            line += 1
            continue
        matched_op = None
        for op in OPERATORS:
            if op != "\n" and text.startswith(op, pos):
                matched_op = op
                break
        if matched_op:
            tokens.append(ShellToken("op", matched_op, line))
            pos += len(matched_op)
            continue
        parts, pos, line = _scan_word(text, pos, line, error)
        tokens.append(ShellToken("word", tuple(parts), line))
    tokens.append(ShellToken("op", "\n", line))
    return tokens


def _scan_word(text, pos, line, error):
    """Scan one word into quoting-aware parts."""
    parts = []
    literal = []
    literal_quoted = False

    def flush(quoted):
        if literal:
            parts.append(("lit", "".join(literal), quoted))
            literal.clear()

    length = len(text)
    while pos < length:
        char = text[pos]
        if char in _WORD_BREAK:
            break
        if char == "'":
            flush(literal_quoted)
            end = text.find("'", pos + 1)
            if end == -1:
                error("unterminated single quote")
            parts.append(("lit", text[pos + 1:end], True))
            pos = end + 1
            continue
        if char == '"':
            flush(literal_quoted)
            pos += 1
            buffer = []
            while pos < length and text[pos] != '"':
                inner = text[pos]
                if inner == "\n":
                    error("unterminated double quote")
                if inner == "\\" and pos + 1 < length and \
                        text[pos + 1] in ('"', "\\", "$"):
                    buffer.append(text[pos + 1])
                    pos += 2
                    continue
                if inner == "$":
                    if buffer:
                        parts.append(("lit", "".join(buffer), True))
                        buffer = []
                    name, pos = _scan_var(text, pos, error)
                    parts.append(("var", name, True))
                    continue
                buffer.append(inner)
                pos += 1
            if pos >= length:
                error("unterminated double quote")
            if buffer:
                parts.append(("lit", "".join(buffer), True))
            pos += 1
            continue
        if char == "$":
            flush(literal_quoted)
            name, pos = _scan_var(text, pos, error)
            parts.append(("var", name, False))
            continue
        if char == "\\" and pos + 1 < length:
            literal.append(text[pos + 1])
            pos += 2
            continue
        literal.append(char)
        pos += 1
    flush(literal_quoted)
    if not parts:
        error("empty word")
    return parts, pos, line


def _scan_var(text, pos, error):
    """Scan ``$NAME``, ``${NAME}`` or ``$N``; *pos* points at ``$``."""
    pos += 1
    if pos < len(text) and text[pos] == "{":
        end = text.find("}", pos)
        if end == -1:
            error("unterminated ${...}")
        name = text[pos + 1:end]
        if not name:
            error("empty ${} expansion")
        return name, end + 1
    start = pos
    if pos < len(text) and text[pos] in "0123456789":
        return text[pos], pos + 1
    while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
        pos += 1
    if pos == start:
        error("lone $ is not allowed")
    return text[start:pos], pos
