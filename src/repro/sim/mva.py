"""Exact Mean Value Analysis for closed product-form networks.

The paper positions observation *against* queueing-theoretic models
(Sections I/VI).  This module implements that analytical baseline —
exact MVA for a closed network of queueing stations plus a think-time
delay center — so the comparison is a runnable experiment: the ablation
bench contrasts MVA predictions with simulated observations, and the
test suite cross-validates the simulator against MVA in the regime
where both are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class MvaStation:
    """One queueing station: a name and a total service demand (V * S).

    ``servers`` > 1 approximates a multi-core station by demand scaling,
    the standard (optimistic) MVA treatment; the simulator is the
    authority for multi-core behaviour.
    """

    name: str
    demand: float
    servers: int = 1

    def effective_demand(self):
        return self.demand / self.servers


@dataclass(frozen=True)
class MvaResult:
    users: int
    throughput: float
    response_time: float
    station_queue: dict
    station_utilization: dict
    station_residence: dict

    def bottleneck(self):
        return max(self.station_utilization,
                   key=lambda name: self.station_utilization[name])


def solve(stations, think_time, users):
    """Exact MVA for *users* customers; returns :class:`MvaResult`."""
    if users < 0:
        raise SimulationError(f"users must be non-negative: {users}")
    if think_time < 0:
        raise SimulationError(f"think time must be non-negative: {think_time}")
    if not stations:
        raise SimulationError("need at least one station")
    names = [s.name for s in stations]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate station names: {names}")
    demands = [s.effective_demand() for s in stations]
    for station, demand in zip(stations, demands):
        if demand < 0:
            raise SimulationError(
                f"station {station.name} has negative demand"
            )
    queue = [0.0] * len(stations)
    throughput = 0.0
    residence = [0.0] * len(stations)
    for n in range(1, users + 1):
        residence = [d * (1.0 + q) for d, q in zip(demands, queue)]
        total_residence = sum(residence)
        throughput = n / (total_residence + think_time)
        queue = [throughput * r for r in residence]
    total_residence = sum(residence) if users > 0 else sum(demands)
    return MvaResult(
        users=users,
        throughput=throughput,
        response_time=total_residence,
        station_queue=dict(zip(names, queue)),
        station_utilization={
            name: throughput * demand
            for name, demand in zip(names, demands)
        },
        station_residence=dict(zip(names, residence)),
    )


def sweep(stations, think_time, workloads):
    """Solve MVA for each workload; returns {users: MvaResult}."""
    return {users: solve(stations, think_time, users)
            for users in workloads}


def saturation_users(stations, think_time):
    """The asymptotic knee N* = (sum(D) + Z) / D_max.

    Classic operational bound: below N* the network is latency-bound,
    above it the bottleneck station is saturated and response time grows
    linearly.  Used by tests to check the simulator's knees land where
    the calibration says they must.
    """
    demands = [s.effective_demand() for s in stations]
    d_max = max(demands)
    if d_max <= 0:
        raise SimulationError("all stations have zero demand")
    return (sum(demands) + think_time) / d_max


def asymptotic_response(stations, think_time, users):
    """High-load bound: R(N) ~= N * D_max - Z."""
    d_max = max(s.effective_demand() for s in stations)
    return max(sum(s.effective_demand() for s in stations),
               users * d_max - think_time)
