"""Approximate MVA fast path: fluid/steady-state analytic fidelity tier.

Exact MVA (:mod:`repro.sim.mva`) recurses over the population one
customer at a time — O(N * M) work that is fine at the paper's 2700-user
sweeps and hopeless at a million users.  This module solves the same
closed network with the Schweitzer/Bard fixed point instead: per-station
queues are estimated self-consistently, so cost is O(iterations * M)
and *independent of N*.  A 4-16-8 topology at 1,000,000 users solves in
microseconds, which is what lets the tiered planner explore analytically
and spend discrete-event time only on knee confirmation.

Beyond plain AMVA the model carries the three n-tier mechanisms the
simulator implements (same station abstractions, same calibration):

* **RAIDb-1 write fan-out** — writes execute on every database backend
  but the controller waits for the *slowest* replica, not the sum; the
  summed residences overcount write work by k/H_k, so the solver
  subtracts the difference (longest-parallel-path latency composition).
* **Thread-pool concurrency limits** — stations carry the deployed
  worker-pool + accept-queue capacity; estimated queue mass above that
  capacity converts into a rejection ratio, mirroring the simulator's
  worker-pool rejections.
* **Client abandonment** — with an exponential response-time
  approximation, the fraction of requests beyond the driver timeout is
  ``exp(-timeout/R)``; completed-request statistics use the truncated
  mean, which is what the DES measurement window reports.

Per-operation costs combine linearly over the workload mix (the
calibration's ``app_mean``/``db_backend_mean`` morphing), so one model
per (topology, write ratio) covers the whole workload ladder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import AnalyticUnsupported, SimulationError
from repro.sim.ntier import DEFAULT_HOP_LATENCY
from repro.spec.catalog import stack_for
from repro.workloads.calibration import (
    DB_DISK_READ_S,
    DB_DISK_WRITE_S,
    REFERENCE_GHZ,
    disk_speed_factor,
    get_calibration,
)

#: Schweitzer fixed-point controls.  The tolerance scales with the
#: population (queue lengths are O(N)); damping 0.5 keeps the iteration
#: contractive near saturation where the undamped map oscillates.
MAX_ITERATIONS = 10_000
TOLERANCE = 1e-9
DAMPING = 0.5


@dataclass(frozen=True)
class AnalyticStation:
    """One queueing station of the analytic model.

    ``demand`` is the visit-weighted service demand (V * S, seconds);
    ``write_demand`` is the portion of it that is replicated write work
    (subject to the fork-join correction); ``capacity`` is the resident
    cap (worker pool + accept queue) past which jobs are rejected.
    """

    name: str
    demand: float
    servers: int = 1
    write_demand: float = 0.0
    capacity: float = math.inf
    tier: str = "station"

    def effective_demand(self):
        return self.demand / self.servers


@dataclass(frozen=True)
class AnalyticModel:
    """A closed network plus the n-tier semantics the solver applies."""

    stations: tuple
    think_time: float
    delay: float = 0.0            # pure latency (network hops), seconds
    timeout: float = None         # client abandonment threshold, seconds
    replicas: int = 1             # RAIDb-1 database backend count
    write_ratio: float = 0.0


@dataclass(frozen=True)
class AnalyticResult:
    """Mirror of :class:`repro.sim.mva.MvaResult` plus fluid extras."""

    users: int
    throughput: float
    response_time: float
    station_queue: dict
    station_utilization: dict
    station_residence: dict
    iterations: int = 0
    converged: bool = True
    timeout_ratio: float = 0.0
    rejection_ratio: float = 0.0
    goodput: float = 0.0
    completed_response_time: float = 0.0
    #: Open-loop only: arrivals/second the system cannot absorb (queue
    #: growth rate).  Zero for stable operating points and all closed
    #: solves; the runner multiplies by the run window to project the
    #: DES backlog count.
    backlog_rate: float = 0.0
    bottleneck_name: str = field(default="", repr=False)

    def bottleneck(self):
        if self.bottleneck_name:
            return self.bottleneck_name
        return max(self.station_utilization,
                   key=lambda name: self.station_utilization[name])


def _harmonic(k):
    return sum(1.0 / i for i in range(1, k + 1))


def _validate(stations, think_time, users):
    if users < 0:
        raise SimulationError(f"users must be non-negative: {users}")
    if think_time < 0:
        raise SimulationError(
            f"think time must be non-negative: {think_time}")
    if not stations:
        raise SimulationError("need at least one station")
    names = [s.name for s in stations]
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate station names: {names}")
    for station in stations:
        if station.effective_demand() < 0:
            raise SimulationError(
                f"station {station.name} has negative demand")


def solve_model(model, users):
    """Schweitzer AMVA for *users* customers; returns AnalyticResult.

    The fixed point: guess per-station queues, compute residences with
    the arrival-theorem approximation ``q_arrival ~= (N-1)/N * q``,
    derive throughput from the response time, feed Little's law back
    into the queues.  The RAIDb-1 correction is applied to the summed
    response time only — per-station queues keep their full (replicated)
    residences, because every backend really does hold the write job.
    """
    stations = tuple(model.stations)
    _validate(stations, model.think_time, users)
    if model.replicas < 1:
        raise SimulationError(
            f"replicas must be >= 1, got {model.replicas}")
    names = [s.name for s in stations]
    effective = [s.effective_demand() for s in stations]
    write_effective = [s.write_demand / s.servers for s in stations]
    h_k = _harmonic(model.replicas)
    # Fraction of the summed write residence that is overcounted: the
    # k replicated copies cost max-of-k ~= H_k of one copy, not k.
    overcount = (model.replicas - h_k) / model.replicas
    if users == 0:
        residence = list(effective)
        response = (sum(residence)
                    - overcount * sum(write_effective)
                    + model.delay)
        return AnalyticResult(
            users=0, throughput=0.0, response_time=response,
            station_queue=dict.fromkeys(names, 0.0),
            station_utilization=dict.fromkeys(names, 0.0),
            station_residence=dict(zip(names, residence)),
            iterations=0, converged=True, goodput=0.0,
            completed_response_time=response,
        )
    count = len(stations)
    alpha = (users - 1) / users
    queue = [users / count] * count
    residence = list(effective)
    throughput = 0.0
    tolerance = TOLERANCE * max(1.0, float(users))
    iterations = 0
    converged = False
    for iterations in range(1, MAX_ITERATIONS + 1):
        residence = [d * (1.0 + alpha * q)
                     for d, q in zip(effective, queue)]
        correction = overcount * sum(
            w * (1.0 + alpha * q)
            for w, q in zip(write_effective, queue))
        response = sum(residence) - correction + model.delay
        throughput = users / (response + model.think_time)
        updated = [throughput * r for r in residence]
        drift = max(abs(new - old)
                    for new, old in zip(updated, queue))
        queue = [DAMPING * old + (1.0 - DAMPING) * new
                 for old, new in zip(queue, updated)]
        if drift < tolerance:
            converged = True
            break
    correction = overcount * sum(
        w * (1.0 + alpha * q)
        for w, q in zip(write_effective, queue))
    response = sum(residence) - correction + model.delay
    throughput = users / (response + model.think_time)
    utilization = [min(throughput * d, 1.0) for d in effective]

    # Client abandonment: exponential response-time approximation.
    timeout_ratio = 0.0
    completed_response = response
    if model.timeout is not None and model.timeout > 0 and response > 0:
        timeout_ratio = math.exp(-model.timeout / response)
        if 1.0 - timeout_ratio < 1e-12:
            completed_response = model.timeout / 2.0
        else:
            completed_response = (
                response
                - model.timeout * timeout_ratio / (1.0 - timeout_ratio))

    # Worker-pool rejection: queue mass above the deployed capacity is
    # load the simulator's pools would have refused.
    overflow = sum(max(0.0, q - s.capacity)
                   for q, s in zip(queue, stations)
                   if math.isfinite(s.capacity))
    in_system = max(throughput * response, 1e-12)
    rejection_ratio = min(0.95, max(0.0, overflow / in_system))

    goodput = throughput * max(0.0, 1.0 - timeout_ratio - rejection_ratio)
    return AnalyticResult(
        users=users,
        throughput=throughput,
        response_time=response,
        station_queue=dict(zip(names, queue)),
        station_utilization=dict(zip(names, utilization)),
        station_residence=dict(zip(names, residence)),
        iterations=iterations,
        converged=converged,
        timeout_ratio=timeout_ratio,
        rejection_ratio=rejection_ratio,
        goodput=goodput,
        completed_response_time=completed_response,
    )


def require_analytic_support(arrival):
    """Typed "DES-only" rejection for time-varying arrival processes.

    ``fidelity=auto`` catches :class:`~repro.errors.AnalyticUnsupported`
    and degrades to the DES tier; ``fidelity=analytic`` surfaces it to
    the caller as an explicit refusal rather than a silently-wrong
    steady-state answer.
    """
    from repro.workloads.arrivals import analytic_supported

    if not analytic_supported(arrival):
        raise AnalyticUnsupported(
            f"arrival kind {arrival.kind!r} is time-varying; the "
            f"analytic tier only solves constant-rate open loops — "
            f"this trial is DES-only"
        )


#: Open-loop utilization clamp: an unstable operating point (rho >= 1)
#: is reported at this utilization so response times stay finite and
#: deterministic while the surplus arrival rate lands in backlog_rate.
OPEN_RHO_CAP = 0.999


def solve_open(model, rate):
    """Operating-point solve for a constant-rate open-loop arrival flow.

    Each station is treated as an M/M/c-ish queue at offered load
    ``rho_k = rate * D_k``: residence ``D_k / (1 - rho_k)`` while
    stable.  When the offered rate exceeds the bottleneck's capacity
    the queue grows without bound; the solve reports throughput capped
    at the bottleneck rate, the surplus as ``backlog_rate``, and the
    response time at the :data:`OPEN_RHO_CAP` clamp (finite, huge, and
    the same for every caller — determinism over realism).

    Only constant-rate arrivals are analytically tractable here; the
    time-varying kinds (diurnal, bursty, flash) must raise
    :class:`~repro.errors.AnalyticUnsupported` *before* reaching this
    function — see :func:`repro.workloads.arrivals.analytic_supported`.
    """
    stations = tuple(model.stations)
    _validate(stations, model.think_time, users=0)
    if rate <= 0:
        raise SimulationError(f"arrival rate must be positive: {rate}")
    if model.replicas < 1:
        raise SimulationError(
            f"replicas must be >= 1, got {model.replicas}")
    names = [s.name for s in stations]
    effective = [s.effective_demand() for s in stations]
    write_effective = [s.write_demand / s.servers for s in stations]
    h_k = _harmonic(model.replicas)
    overcount = (model.replicas - h_k) / model.replicas
    d_max = max(effective)
    if d_max <= 0:
        raise SimulationError("all stations have zero demand")
    capacity_rate = 1.0 / d_max
    served = min(rate, capacity_rate)
    backlog_rate = max(0.0, rate - capacity_rate)
    offered = [rate * d for d in effective]
    rho = [min(r, OPEN_RHO_CAP) for r in offered]
    residence = [d / (1.0 - r) for d, r in zip(effective, rho)]
    correction = overcount * sum(
        w / (1.0 - r) for w, r in zip(write_effective, rho))
    response = sum(residence) - correction + model.delay
    queue = [r / (1.0 - r) for r in rho]
    utilization = [min(r, 1.0) for r in offered]

    timeout_ratio = 0.0
    completed_response = response
    if model.timeout is not None and model.timeout > 0 and response > 0:
        timeout_ratio = math.exp(-model.timeout / response)
        if 1.0 - timeout_ratio < 1e-12:
            completed_response = model.timeout / 2.0
        else:
            completed_response = (
                response
                - model.timeout * timeout_ratio / (1.0 - timeout_ratio))

    overflow = sum(max(0.0, q - s.capacity)
                   for q, s in zip(queue, stations)
                   if math.isfinite(s.capacity))
    in_system = max(served * response, 1e-12)
    rejection_ratio = min(0.95, max(0.0, overflow / in_system))
    if rate > 0:
        # Arrivals beyond capacity are load the system refuses or
        # abandons; fold the surplus into the rejection channel so the
        # error ratio reflects the overload.
        rejection_ratio = min(
            0.95, max(rejection_ratio, backlog_rate / rate))

    goodput = served * max(0.0, 1.0 - timeout_ratio - rejection_ratio)
    return AnalyticResult(
        users=0,
        throughput=served,
        response_time=response,
        station_queue=dict(zip(names, queue)),
        station_utilization=dict(zip(names, utilization)),
        station_residence=dict(zip(names, residence)),
        iterations=1,
        converged=backlog_rate == 0.0,
        timeout_ratio=timeout_ratio,
        rejection_ratio=rejection_ratio,
        goodput=goodput,
        completed_response_time=completed_response,
        backlog_rate=backlog_rate,
    )


def solve_stations(stations, think_time, users):
    """AMVA over plain station sequences (the ``mva.solve`` shape).

    Accepts :class:`AnalyticStation` or :class:`~repro.sim.mva.MvaStation`
    instances — anything with ``name``/``demand``/``servers``.
    """
    adapted = tuple(
        s if isinstance(s, AnalyticStation) else AnalyticStation(
            name=s.name, demand=s.demand, servers=s.servers)
        for s in stations
    )
    model = AnalyticModel(stations=adapted, think_time=think_time)
    return solve_model(model, users)


def sweep(model, workloads):
    """Solve the model for each workload; {users: AnalyticResult}."""
    return {users: solve_model(model, users) for users in workloads}


def saturation_users(model):
    """Operational-law knee N* = (sum(D) + delay + Z) / D_max."""
    demands = [s.effective_demand() for s in model.stations]
    d_max = max(demands)
    if d_max <= 0:
        raise SimulationError("all stations have zero demand")
    return (sum(demands) + model.delay + model.think_time) / d_max


def ntier_model(benchmark, tier_hosts, write_ratio, *, think_time=None,
                timeout=None, app_server=None,
                hop_latency=DEFAULT_HOP_LATENCY, colocation=None):
    """Build the analytic model for one deployed n-tier configuration.

    *tier_hosts* maps tier -> ``[(host_name, NodeType), ...]`` — the
    allocation preview (:meth:`VirtualCluster.preview_allocation`), so
    station names match the host names the simulator would report and
    the analytic host-CPU channel lines up with the DES one.

    *colocation* maps host name -> :class:`repro.vcluster.host.Colocation`
    (from :func:`~repro.vcluster.host.plan_colocation` over the same
    preview names, in allocation order) — consolidated hosts lose CPU to
    steal and stretch disk service times exactly as the DES stations do.
    """
    colocation = colocation or {}
    calibration = get_calibration(benchmark)
    stack = stack_for(benchmark, app_server=app_server)
    webs = list(tier_hosts.get("web") or ())
    apps = list(tier_hosts.get("app") or ())
    dbs = list(tier_hosts.get("db") or ())
    if not apps:
        raise SimulationError("analytic model needs an app tier")
    if not dbs:
        raise SimulationError("analytic model needs a db tier")
    web_pkg = stack["web"][0]
    app_pkg = stack["app"][-1]
    db_pkg = stack["db"][0]
    replicas = len(dbs)
    stations = []
    def steal(name):
        placed = colocation.get(name)
        return 1.0 - placed.cpu_steal if placed is not None else 1.0

    for name, node in webs:
        speed = node.speed_factor(REFERENCE_GHZ) / web_pkg.efficiency
        speed *= steal(name)
        stations.append(AnalyticStation(
            name=name,
            demand=(calibration.web_s / speed) / len(webs),
            servers=node.cpu_count,
            capacity=2 * web_pkg.worker_pool,
            tier="web",
        ))
    for name, node in apps:
        speed = node.speed_factor(REFERENCE_GHZ) / app_pkg.efficiency
        speed *= steal(name)
        stations.append(AnalyticStation(
            name=name,
            demand=(calibration.app_mean(write_ratio) / speed) / len(apps),
            servers=node.cpu_count,
            capacity=2 * app_pkg.worker_pool,
            tier="app",
        ))
    for name, node in dbs:
        speed = node.speed_factor(REFERENCE_GHZ) / db_pkg.efficiency
        speed *= steal(name)
        disk_speed = disk_speed_factor(node)
        placed = colocation.get(name)
        if placed is not None:
            disk_speed /= placed.disk_contention
        stations.append(AnalyticStation(
            name=name,
            demand=calibration.db_backend_mean(write_ratio,
                                               replicas) / speed,
            servers=node.cpu_count,
            write_demand=write_ratio * calibration.db_write_s / speed,
            capacity=5 * db_pkg.worker_pool,
            tier="db",
        ))
        stations.append(AnalyticStation(
            name=f"{name}:disk",
            demand=((1.0 - write_ratio) * DB_DISK_READ_S / replicas
                    + write_ratio * DB_DISK_WRITE_S) / disk_speed,
            servers=1,
            write_demand=write_ratio * DB_DISK_WRITE_S / disk_speed,
            tier="db-disk",
        ))
    # Request path hops: client->web->app->db forward plus the return
    # path (the simulator charges 3 forward + 3 return with a web tier,
    # 2 + 2 without).
    hops = 6 if webs else 4
    return AnalyticModel(
        stations=tuple(stations),
        think_time=(calibration.think_time_s
                    if think_time is None else think_time),
        delay=hop_latency * hops,
        timeout=timeout,
        replicas=replicas,
        write_ratio=write_ratio,
    )
