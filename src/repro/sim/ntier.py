"""N-tier simulation over a deployed system: closed- or open-loop.

Builds one processor-sharing station per deployed server host (speed
from the node's hardware, worker pools from the deployed config files),
then drives it with the workload the Mulini-generated driver.properties
describes.  Closed loop (the paper's regime): N users in think/request
cycles walking the benchmark's Markov chain.  Open loop (the scenario
plane): sessions arrive from a seeded arrival process — constant,
diurnal, bursty or flash-crowd — each walking the same Markov chain for
a fixed number of interactions, whether or not the system keeps up.

Hosts consolidated onto shared physical machines carry a
``Colocation`` stamp; their stations run at ``speed * (1 - cpu_steal)``
and their disks at ``speed / disk_contention``, which is how
virtualized-server interference shifts the knee.

Request path (RUBiS): client -> web (Apache) -> app (Tomcat+EJB) ->
database.  Reads visit one C-JDBC backend (round-robin); writes execute
on *every* backend (RAIDb-1), which is what caps 2-replica scaling near
2900 users.  Two error paths mirror the testbed: client-side timeout
(abandonment) and worker-pool rejection; both feed the DNF accounting
behind Table 7's missing squares.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.deprecation import absorb_positional
from repro.errors import SimulationError
from repro.obs.tracer import as_tracer
from repro.sim.engine import Simulator
from repro.sim.resources import ProcessorSharingStation
from repro.sim.rng import RandomStreams
from repro.workloads import build_model
from repro.workloads.calibration import (
    DB_DISK_READ_S,
    DB_DISK_WRITE_S,
    REFERENCE_GHZ,
    disk_speed_factor,
)

#: One-way LAN hop latency (seconds); Gbps switching, Section III.A.
DEFAULT_HOP_LATENCY = 0.0002

OK = "ok"
TIMEOUT = "timeout"
REJECTED = "rejected"


@dataclass
class RequestRecord:
    """One client request, as the driver would log it."""

    __slots__ = ("user", "state", "issued_at", "finished_at", "status",
                 "is_write")

    user: int
    state: str
    issued_at: float
    finished_at: float
    status: str
    is_write: bool

    def response_time(self):
        return self.finished_at - self.issued_at


class DbBackendStations:
    """One database backend's resources: a CPU and a disk spindle.

    The CPU does query processing (worker-pool limited); the spindle
    serves buffer-pool misses and log flushes and never rejects (the
    DBMS queues I/O internally).
    """

    __slots__ = ("cpu", "disk")

    def __init__(self, cpu, disk):
        self.cpu = cpu
        self.disk = disk

    @property
    def resident_jobs(self):
        return self.cpu.resident_jobs + self.disk.resident_jobs


class _TierBalancer:
    """Server selection over a tier's stations.

    ``rr`` is mod_jk's default round-robin; ``least`` picks the station
    with the fewest resident jobs (mod_jk's busyness method), used by
    the balancer-policy ablation.
    """

    def __init__(self, stations, policy="rr"):
        if not stations:
            raise SimulationError("balancer needs at least one station")
        if policy not in ("rr", "least"):
            raise SimulationError(f"unknown balancer policy {policy!r}")
        self.stations = stations
        self.policy = policy
        self._next = 0

    def pick(self):
        if self.policy == "least":
            return min(self.stations, key=lambda s: s.resident_jobs)
        station = self.stations[self._next]
        self._next = (self._next + 1) % len(self.stations)
        return station


class NTierSimulation:
    """The simulation harness for one deployed experiment point."""

    def __init__(self, system, *args, hop_latency=DEFAULT_HOP_LATENCY,
                 model=None, balancer_policy="rr", tracer=None):
        merged = absorb_positional(
            "NTierSimulation", ("hop_latency", "model"), args,
            {"hop_latency": hop_latency, "model": model})
        hop_latency = merged["hop_latency"]
        model = merged["model"]
        self.system = system
        self.driver = system.driver
        self.hop_latency = hop_latency
        self.balancer_policy = balancer_policy
        self.tracer = as_tracer(tracer)
        self.sim = Simulator()
        self.rng = RandomStreams(self.driver.seed)
        self.model = model if model is not None else build_model(
            self.driver.benchmark, self.driver.write_ratio,
            mix=self.driver.mix,
        )
        self.records = []
        self.stations_by_host = {}
        self._build_stations()
        self._user_states = {}
        self._started = False
        #: Open-loop state; populated by start() when the deployed
        #: driver carries an arrival spec.
        self.arrival = getattr(self.driver, "arrival", None)
        self._arrivals = None
        self._session_counter = itertools.count()
        self._session_remaining = {}
        self._horizon = (self.driver.warmup + self.driver.run
                         + self.driver.cooldown)

    # -- station construction ------------------------------------------------

    def _station_for(self, host, concurrency, queue_limit, efficiency=1.0):
        node = host.node_type
        speed = node.speed_factor(REFERENCE_GHZ) / efficiency
        colocation = getattr(host, "colocation", None)
        if colocation is not None:
            speed *= (1.0 - colocation.cpu_steal)
        station = ProcessorSharingStation(
            self.sim, name=host.name, cores=node.cpu_count, speed=speed,
            concurrency_limit=concurrency, queue_limit=queue_limit,
        )
        self.stations_by_host[host.name] = station
        return station

    def _build_stations(self):
        web_stations = [
            self._station_for(web.host, web.max_clients, web.max_clients)
            for web in self.system.web_servers
        ]
        app_stations = [
            self._station_for(app.host, app.worker_pool, app.worker_pool,
                              efficiency=app.efficiency)
            for app in self.system.app_servers
        ]
        self.disk_by_host = {}
        db_backends = []
        for backend in self.system.db_backends:
            cpu = self._station_for(backend.host, backend.max_connections,
                                    backend.max_connections * 4)
            disk_speed = disk_speed_factor(backend.host.node_type)
            colocation = getattr(backend.host, "colocation", None)
            if colocation is not None:
                disk_speed /= colocation.disk_contention
            disk = ProcessorSharingStation(
                self.sim, name=f"{backend.host.name}:disk", cores=1,
                speed=disk_speed,
            )
            self.disk_by_host[backend.host.name] = disk
            db_backends.append(DbBackendStations(cpu=cpu, disk=disk))
        policy = self.balancer_policy
        self.web_balancer = _TierBalancer(web_stations, policy) \
            if web_stations else None
        self.app_balancer = _TierBalancer(app_stations, policy)
        self.db_balancer = _TierBalancer(db_backends, policy)
        self.db_backends = db_backends

    # -- client population -----------------------------------------------------

    def start(self):
        """Release the workload: a closed-loop population, or an
        open-loop arrival process when the driver carries one."""
        if self._started:
            raise SimulationError("simulation already started")
        self._started = True
        if self.arrival is not None:
            self._start_open_loop()
            return
        users = self.driver.users
        for user in range(users):
            self._user_states[user] = self.model.initial_state
            # Staggered ramp-up: real drivers start threads over an
            # interval, not all in the same instant.
            offset = self.rng.uniform("rampup", 0.0, self.driver.think_time)
            self.sim.schedule(offset, self._make_issuer(user))

    def _start_open_loop(self):
        """Schedule the first session arrival; each arrival schedules
        the next, so the whole trace is consumed in event order from
        the dedicated arrival streams."""
        from repro.workloads.arrivals import ArrivalProcess, request_rate

        base = request_rate(self.arrival, self.driver.users,
                            self.driver.think_time)
        # Pattern timing (flash onset, diurnal phase) spans the
        # measured portion of the trial; arrivals keep coming through
        # cooldown so the backlog observation is honest.
        span = self.driver.warmup + self.driver.run
        self._arrivals = ArrivalProcess(self.arrival, base_rate=base,
                                        streams=self.rng, span=span)
        first = self._arrivals.next_after(0.0)
        if first < self._horizon:
            self.sim.schedule_at(first, self._arrive)

    def _arrive(self):
        """One session arrives: issue its first interaction and book
        the next arrival."""
        user = next(self._session_counter)
        self._user_states[user] = self.model.initial_state
        self._session_remaining[user] = self.arrival.session_length
        self._make_issuer(user)()
        upcoming = self._arrivals.next_after(self.sim.now)
        if upcoming < self._horizon:
            self.sim.schedule_at(upcoming, self._arrive)

    def run(self, duration=None):
        """Run the trial; returns the request records."""
        if not self._started:
            self.start()
        if duration is None:
            duration = (self.driver.warmup + self.driver.run
                        + self.driver.cooldown)
        with self.tracer.span("sim.run", users=self.driver.users,
                              sim_duration_s=duration):
            self.sim.run_until(duration)
            self.tracer.annotate(events=self.sim.events_processed,
                                 requests=len(self.records))
        return self.records

    # -- request lifecycle -------------------------------------------------------

    def _make_issuer(self, user):
        def issue():
            state = self._advance_chain(user)
            demand = self.model.demand(state)
            record = RequestRecord(
                user=user, state=state, issued_at=self.sim.now,
                finished_at=float("nan"), status=OK,
                is_write=demand.is_write,
            )
            self.records.append(record)
            context = _RequestContext(self, user, record, demand)
            context.begin()
        return issue

    def _advance_chain(self, user):
        draw = self.rng.stream(f"chain").random()
        state = self.model.matrix.next_state(self._user_states[user], draw)
        self._user_states[user] = state
        return state

    def _think_then_reissue(self, user):
        if self.arrival is not None:
            remaining = self._session_remaining.get(user, 0) - 1
            if remaining <= 0:
                # Session over: open-loop users leave instead of
                # cycling forever.
                self._session_remaining.pop(user, None)
                self._user_states.pop(user, None)
                return
            self._session_remaining[user] = remaining
        think = self.rng.exponential("think", self.driver.think_time)
        self.sim.schedule(think, self._make_issuer(user))

    def draw_demand(self, stream, mean):
        """Per-visit demand draw; exponential service-time variability."""
        if mean <= 0:
            return 0.0
        return self.rng.exponential(stream, mean)

    # -- telemetry ------------------------------------------------------------------

    def station_of(self, host_name):
        try:
            return self.stations_by_host[host_name]
        except KeyError:
            raise SimulationError(f"no station on host {host_name!r}")


class _RequestContext:
    """Drives one request through the tiers with timeout handling."""

    __slots__ = ("harness", "user", "record", "demand", "timeout_event",
                 "pending_writes", "timed_out")

    def __init__(self, harness, user, record, demand):
        self.harness = harness
        self.user = user
        self.record = record
        self.demand = demand
        self.timeout_event = None
        self.pending_writes = 0
        self.timed_out = False

    # -- plumbing -------------------------------------------------------------

    def begin(self):
        self.timeout_event = self.harness.sim.schedule(
            self.harness.driver.timeout, self._on_timeout
        )
        self._hop(self._enter_web)

    def _hop(self, next_stage):
        self.harness.sim.schedule(self.harness.hop_latency, next_stage)

    def _on_timeout(self):
        # Client abandons; the in-flight work keeps consuming capacity
        # (the server does not know the client left).
        self.timed_out = True
        self.record.status = TIMEOUT
        self.record.finished_at = self.harness.sim.now
        self.harness._think_then_reissue(self.user)

    def _fail(self, status):
        if self.timed_out:
            return
        if self.timeout_event is not None:
            self.timeout_event.cancel()
        self.record.status = status
        self.record.finished_at = self.harness.sim.now
        self.harness._think_then_reissue(self.user)

    # -- stages ---------------------------------------------------------------

    def _enter_web(self):
        balancer = self.harness.web_balancer
        if balancer is None:
            self._enter_app()
            return
        station = balancer.pick()
        demand = self.harness.draw_demand("web", self.demand.web_s)
        if not station.submit(demand, self._hop_to_app):
            self._fail(REJECTED)

    def _hop_to_app(self):
        self._hop(self._enter_app)

    def _enter_app(self):
        station = self.harness.app_balancer.pick()
        demand = self.harness.draw_demand("app", self.demand.app_s)
        if not station.submit(demand, self._hop_to_db):
            self._fail(REJECTED)

    def _hop_to_db(self):
        self._hop(self._enter_db)

    def _enter_db(self):
        if self.demand.is_write:
            # RAIDb-1: the write executes on every backend; the
            # controller acknowledges when all replicas are done.
            backends = self.harness.db_backends
            self.pending_writes = len(backends)
            accepted_any = False
            for backend in backends:
                if self._submit_db_op(backend, self._write_done):
                    accepted_any = True
                else:
                    self.pending_writes -= 1
            if not accepted_any and self.pending_writes == 0:
                self._fail(REJECTED)
            return
        backend = self.harness.db_balancer.pick()
        if not self._submit_db_op(backend, self._db_done):
            self._fail(REJECTED)

    def _submit_db_op(self, backend, on_done):
        """Query processing on the backend CPU, then the I/O flush.

        The spindle never rejects (the DBMS queues I/O internally), so
        only the CPU worker pool can refuse the operation.
        """
        cpu_demand = self.harness.draw_demand("db", self.demand.db_s)
        disk_mean = DB_DISK_WRITE_S if self.demand.is_write \
            else DB_DISK_READ_S

        def after_cpu():
            disk_demand = self.harness.draw_demand("db-disk", disk_mean)
            backend.disk.submit(disk_demand, on_done)

        return backend.cpu.submit(cpu_demand, after_cpu)

    def _write_done(self):
        self.pending_writes -= 1
        if self.pending_writes == 0:
            self._db_done()

    def _db_done(self):
        # Response unwinds back through the tiers; model the return path
        # as pure network latency (response rendering was charged on the
        # way in).
        hops = 2 if self.harness.web_balancer is None else 3
        self.harness.sim.schedule(self.harness.hop_latency * hops,
                                  self._complete)

    def _complete(self):
        if self.timed_out:
            return       # client already gave up; drop the response
        self.timeout_event.cancel()
        self.record.status = OK
        self.record.finished_at = self.harness.sim.now
        self.harness._think_then_reissue(self.user)
