"""Simulation substrate: DES engine, exact MVA, and the analytic tier.

Three solvers share one calling convention — :func:`solve` dispatches on
the model's type and the requested *fidelity*:

* ``"des"`` — the discrete-event :class:`NTierSimulation` (per-request
  fidelity; the observation authority).
* ``"analytic"`` — the Schweitzer AMVA fluid tier
  (:mod:`repro.sim.analytic`); population-independent cost, built for
  million-user characterizations.
* ``"auto"`` — whatever the model supports (analytic for models,
  DES for harnesses).

``fidelity="mva"`` additionally selects the exact-MVA recursion for
plain station sequences; it is an engine name local to this dispatcher,
not part of the public fidelity trio.
"""

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim import analytic, mva
from repro.sim.analytic import AnalyticModel, AnalyticResult, AnalyticStation
from repro.sim.engine import Event, Simulator
from repro.sim.ntier import (
    DEFAULT_HOP_LATENCY,
    OK,
    REJECTED,
    TIMEOUT,
    NTierSimulation,
    RequestRecord,
)
from repro.sim.resources import ProcessorSharingStation
from repro.sim.rng import RandomStreams

#: The public fidelity tiers every entry point accepts.
DES = "des"
ANALYTIC = "analytic"
AUTO = "auto"
FIDELITIES = (DES, ANALYTIC, AUTO)


def check_fidelity(fidelity, owner="fidelity"):
    """Validate a user-supplied fidelity name; returns it unchanged."""
    if fidelity not in FIDELITIES:
        raise SimulationError(
            f"{owner}: unknown fidelity {fidelity!r}; "
            f"choose one of {', '.join(FIDELITIES)}"
        )
    return fidelity


@dataclass(frozen=True)
class DesResult:
    """DES observations in the shared solver result schema."""

    users: int
    throughput: float
    response_time: float
    station_queue: dict
    station_utilization: dict
    station_residence: dict
    metrics: object = field(default=None, repr=False)

    def bottleneck(self):
        return max(self.station_utilization,
                   key=lambda name: self.station_utilization[name])


def _solve_des(harness, duration=None):
    records = harness.run(duration)
    driver = harness.driver
    # Import here: monitoring sits above sim in the layer order.
    from repro.monitoring import summarize_records
    metrics = summarize_records(
        records, (driver.warmup, driver.warmup + driver.run))
    elapsed = max(harness.sim.now, 1e-12)
    utilization = {}
    for name, station in harness.stations_by_host.items():
        utilization[name] = station.area_reading()[1] / elapsed
    for host, disk in harness.disk_by_host.items():
        utilization[f"{host}:disk"] = disk.area_reading()[1] / elapsed
    return DesResult(
        users=driver.users,
        throughput=metrics.throughput,
        response_time=metrics.mean_response_s,
        station_queue={},
        station_utilization=utilization,
        station_residence={},
        metrics=metrics,
    )


def solve(model, *, fidelity=AUTO, users=None, think_time=None,
          duration=None):
    """One entry point over every solver tier.

    *model* may be an :class:`NTierSimulation` harness (DES), an
    :class:`AnalyticModel`, or a plain sequence of stations
    (``MvaStation`` / ``AnalyticStation``; pass *users* and
    *think_time*).  Results share the core schema: ``users``,
    ``throughput``, ``response_time``, ``station_queue``,
    ``station_utilization``, ``station_residence``, ``bottleneck()``.
    """
    if fidelity not in FIDELITIES and fidelity != "mva":
        raise SimulationError(
            f"unknown fidelity {fidelity!r}; choose one of "
            f"{', '.join(FIDELITIES + ('mva',))}"
        )
    if isinstance(model, NTierSimulation):
        if fidelity not in (DES, AUTO):
            raise SimulationError(
                f"a discrete-event harness only solves at fidelity "
                f"'des', not {fidelity!r}"
            )
        return _solve_des(model, duration)
    if isinstance(model, AnalyticModel):
        if fidelity == DES:
            raise SimulationError(
                "an analytic model cannot run at fidelity 'des'; "
                "build an NTierSimulation for discrete-event results"
            )
        if users is None:
            raise SimulationError(
                "solving an analytic model needs users=")
        return analytic.solve_model(model, users)
    try:
        stations = tuple(model)
    except TypeError:
        raise SimulationError(
            f"cannot solve {type(model).__name__}: expected an "
            f"NTierSimulation, an AnalyticModel, or a station sequence"
        )
    if users is None or think_time is None:
        raise SimulationError(
            "solving a station sequence needs users= and think_time=")
    if fidelity == DES:
        raise SimulationError(
            "a station sequence cannot run at fidelity 'des'; "
            "build an NTierSimulation for discrete-event results"
        )
    if fidelity == "mva":
        return mva.solve(stations, think_time, users)
    return analytic.solve_stations(stations, think_time, users)


__all__ = [
    "mva",
    "analytic",
    "AnalyticModel",
    "AnalyticResult",
    "AnalyticStation",
    "ANALYTIC",
    "AUTO",
    "DES",
    "DesResult",
    "FIDELITIES",
    "check_fidelity",
    "solve",
    "Event",
    "Simulator",
    "DEFAULT_HOP_LATENCY",
    "OK",
    "REJECTED",
    "TIMEOUT",
    "NTierSimulation",
    "RequestRecord",
    "ProcessorSharingStation",
    "RandomStreams",
]
