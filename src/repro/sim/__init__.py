"""Discrete-event simulation substrate and the MVA analytical baseline."""

from repro.sim import mva
from repro.sim.engine import Event, Simulator
from repro.sim.ntier import (
    DEFAULT_HOP_LATENCY,
    OK,
    REJECTED,
    TIMEOUT,
    NTierSimulation,
    RequestRecord,
)
from repro.sim.resources import ProcessorSharingStation
from repro.sim.rng import RandomStreams

__all__ = [
    "mva",
    "Event",
    "Simulator",
    "DEFAULT_HOP_LATENCY",
    "OK",
    "REJECTED",
    "TIMEOUT",
    "NTierSimulation",
    "RequestRecord",
    "ProcessorSharingStation",
    "RandomStreams",
]
