"""Simulated resources: multi-core processor-sharing CPU stations.

Servers under benchmark load are modelled as egalitarian processor
sharing across ``cores`` CPUs: with *n* resident jobs each receives
service at rate ``speed * min(1, cores/n)`` reference-seconds per
second.  The implementation advances a per-job *virtual time* so only
the next departure is ever scheduled — O(log n) per arrival/departure,
which keeps 2700-user experiments fast in pure Python.

Worker-pool semantics mirror real servers: admissions beyond the
concurrency limit wait in an accept queue; beyond the queue limit they
are rejected (connection refused), which is one of the two error paths
behind the paper's incomplete high-load trials (Table 7).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque

from repro.errors import SimulationError


class Job:
    """One request's service episode at a station."""

    __slots__ = ("demand", "on_done", "finish_v", "seq", "submitted_at")

    def __init__(self, demand, on_done, submitted_at):
        self.demand = demand
        self.on_done = on_done
        self.finish_v = None
        self.seq = None
        self.submitted_at = submitted_at


class ProcessorSharingStation:
    """A PS multi-core CPU with an optional worker pool and accept queue."""

    def __init__(self, sim, name, cores=1, speed=1.0,
                 concurrency_limit=None, queue_limit=None):
        if cores < 1:
            raise SimulationError(f"{name}: cores must be >= 1")
        if speed <= 0:
            raise SimulationError(f"{name}: speed must be positive")
        self.sim = sim
        self.name = name
        self.cores = cores
        self.speed = speed
        self.concurrency_limit = concurrency_limit
        self.queue_limit = queue_limit
        self._active = []            # heap of (finish_v, seq, job)
        self._n_active = 0
        self._virtual = 0.0
        self._last_update = sim.now
        self._departure_event = None
        self._waiting = deque()
        self._seq = itertools.count()
        # Accounting.
        self.busy_area = 0.0         # integral of utilization over time
        self.completed = 0
        self.rejected = 0
        self.total_service = 0.0

    # -- rates ---------------------------------------------------------------

    def _per_job_rate(self):
        if self._n_active == 0:
            return 0.0
        return self.speed * min(1.0, self.cores / self._n_active)

    def current_utilization(self):
        """Instantaneous utilization (busy cores / cores)."""
        if self._n_active == 0:
            return 0.0
        return min(self._n_active, self.cores) / self.cores

    def _advance_clock(self):
        now = self.sim.now
        dt = now - self._last_update
        if dt < 0:
            raise SimulationError(f"{self.name}: clock moved backwards")
        if dt > 0:
            self.busy_area += self.current_utilization() * dt
            self._virtual += self._per_job_rate() * dt
            self._last_update = now

    # -- job lifecycle ---------------------------------------------------------

    def submit(self, demand, on_done):
        """Offer a job; returns False when the accept queue rejects it."""
        if demand < 0:
            raise SimulationError(f"{self.name}: negative demand {demand}")
        self._advance_clock()
        job = Job(demand, on_done, self.sim.now)
        if (self.concurrency_limit is not None
                and self._n_active >= self.concurrency_limit):
            if (self.queue_limit is not None
                    and len(self._waiting) >= self.queue_limit):
                self.rejected += 1
                return False
            self._waiting.append(job)
            return True
        self._start(job)
        return True

    def _start(self, job):
        job.seq = next(self._seq)
        job.finish_v = self._virtual + job.demand
        heapq.heappush(self._active, (job.finish_v, job.seq, job))
        self._n_active += 1
        self._reschedule()

    def _reschedule(self):
        if self._departure_event is not None:
            self._departure_event.cancel()
            self._departure_event = None
        if self._n_active == 0:
            return
        finish_v = self._active[0][0]
        rate = self._per_job_rate()
        remaining_v = max(0.0, finish_v - self._virtual)
        delay = remaining_v / rate
        self._departure_event = self.sim.schedule(delay, self._depart)

    def _depart(self):
        self._departure_event = None
        self._advance_clock()
        finished = []
        while self._active and self._active[0][0] <= self._virtual + 1e-12:
            _fv, _seq, job = heapq.heappop(self._active)
            self._n_active -= 1
            finished.append(job)
        if not finished:
            # Numerical slack: the head job is not quite done yet.
            self._reschedule()
            return
        while self._waiting and (
                self.concurrency_limit is None
                or self._n_active < self.concurrency_limit):
            self._start(self._waiting.popleft())
        self._reschedule()
        for job in finished:
            self.completed += 1
            self.total_service += job.demand
            job.on_done()

    # -- introspection --------------------------------------------------------

    @property
    def resident_jobs(self):
        return self._n_active + len(self._waiting)

    def utilization_since(self, t0, area0):
        """Mean utilization over [t0, now] given the area reading at t0."""
        self._advance_clock()
        dt = self.sim.now - t0
        if dt <= 0:
            return 0.0
        return (self.busy_area - area0) / dt

    def area_reading(self):
        self._advance_clock()
        return self.sim.now, self.busy_area
