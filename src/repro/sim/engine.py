"""Discrete-event simulation engine.

A minimal, fast event loop: a binary heap of timestamped callbacks with
stable FIFO ordering for simultaneous events and O(log n) cancellation
via tombstones.  Everything in the performance substrate (processor
sharing stations, client think times, monitor sampling) is built on it.
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import SimulationError


class Event:
    """A scheduled callback; cancel() makes the heap entry a tombstone."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time, seq, fn):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """The event loop; owns simulated time."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, delay, fn):
        """Schedule *fn* to run *delay* seconds from now; returns Event."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        event = Event(self.now + delay, next(self._seq), fn)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time, fn):
        """Schedule *fn* at absolute simulated *time*."""
        return self.schedule(time - self.now, fn)

    def peek_time(self):
        """Time of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self):
        """Run the next event; returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now - 1e-12:
                raise SimulationError(
                    f"time went backwards: {event.time} < {self.now}"
                )
            self.now = max(self.now, event.time)
            self.events_processed += 1
            event.fn()
            return True
        return False

    def run_until(self, end_time):
        """Process events with time <= *end_time*; clock ends at end_time."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
        self.now = max(self.now, end_time)

    def run_all(self, max_events=10_000_000):
        """Drain the heap entirely (bounded against runaway schedules)."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events"
                )
        return count
