"""Deterministic, named random streams.

Every stochastic component (think times, demand draws, per-user Markov
chains) pulls from its own named stream so that adding a component or
reordering event processing never perturbs the others — experiments
replay bit-identically for a given TBL seed, which is what makes the
observation database reproducible.
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, seed):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """The stream for *name* (created on first use, then cached)."""
        if name not in self._streams:
            mixed = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 0x9E3779B1)
            self._streams[name] = random.Random(mixed & 0xFFFFFFFF)
        return self._streams[name]

    def exponential(self, name, mean):
        """One draw from Exp(mean) on the named stream."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive: {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name, low, high):
        return self.stream(name).uniform(low, high)

    def choice_weighted(self, name, items, weights):
        """Weighted choice without numpy (stdlib only, deterministic)."""
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        point = self.stream(name).random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if point < cumulative:
                return item
        return items[-1]
