"""JOnAS vs Weblogic, the paper's Section IV.B comparison.

Two campaigns with identical TBL sweeps, differing only in the
``app_server`` header (and the hardware platform, as in the paper:
JOnAS on Emulab's single-CPU nodes, Weblogic on Warp's dual-CPU
blades).  The observed result — Weblogic's configuration sustains about
twice the users — comes out of the observations, not a model.

Run:  python examples/appserver_comparison.py
"""

from repro import PerformanceMap, run_campaign

TBL_TEMPLATE = """
benchmark rubis;
platform {platform};
app_server {app_server};

experiment "baseline" {{
    topology 1-1-1;
    workload 100 to 600 step 100;
    write_ratio 15%;
    trial {{ warmup 15s; run 45s; cooldown 5s; }}
    slo {{ response_time 2000ms; error_ratio 10%; }}
}}
"""


def run(platform, app_server):
    report = run_campaign(
        TBL_TEMPLATE.format(platform=platform, app_server=app_server),
        node_count=10,
    )
    return PerformanceMap.from_database(report.database)


def main():
    print("Observing JOnAS on Emulab and Weblogic 8.1 on Warp...")
    jonas = run("emulab", "jonas")
    weblogic = run("warp", "weblogic")

    print(f"\n{'users':>7} {'JOnAS rt (ms)':>15} {'Weblogic rt (ms)':>18}")
    for users in (100, 200, 300, 400, 500, 600):
        rt_j = jonas.response_time("1-1-1", users) * 1000
        rt_w = weblogic.response_time("1-1-1", users) * 1000
        print(f"{users:>7} {rt_j:>15.1f} {rt_w:>18.1f}")

    knee_j = jonas.knee("1-1-1")
    knee_w = weblogic.knee("1-1-1")
    print(f"\nObserved knees: JOnAS ~{knee_j} users, "
          f"Weblogic ~{knee_w} users")
    print("Paper IV.B: 'the Weblogic configuration is shown to support a "
          "higher number\nof users than JOnAS (about twice as many users "
          "at saturation point)'.")


if __name__ == "__main__":
    main()
