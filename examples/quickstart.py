"""Quickstart: one observation campaign through the repro.api facade.

Runs the RUBiS baseline sweep (reduced trial periods) on a virtual
Emulab cluster with the lifecycle flight recorder on, queries the
resulting performance map, and prints the trace report — the package's
whole pipeline in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import PerformanceMap, Tracer, run_campaign, trace_report

TBL = """
# RUBiS baseline: one server per tier, workload and write-ratio sweep.
benchmark rubis;
platform emulab;

experiment "baseline" {
    topology 1-1-1;
    workload 50 to 250 step 50;
    write_ratio 0%, 15%, 50%;
    think_time 7s;
    trial { warmup 15s; run 60s; cooldown 5s; }
    slo { response_time 2000ms; error_ratio 10%; }
    monitor { interval 1s; metrics cpu, memory, disk, network; }
}
"""


def main():
    print("Running the baseline campaign (15 trials)...")
    report = run_campaign(
        TBL, node_count=10, tracer=Tracer(),
        on_result=lambda r: print(
            f"  {r.topology_label} users={r.workload:<4} "
            f"wr={r.write_ratio:.0%} -> {r.status:<9} "
            f"rt={r.response_time_ms():7.1f} ms  "
            f"x={r.throughput():6.1f}/s  app-cpu={r.tier_cpu('app'):3.0f}%"
        )
    )
    print(f"\n{report.summary()}")

    pmap = PerformanceMap.from_database(report.database)
    print("\nObservation-based characterization queries:")
    for users in (100, 200, 250):
        rt = pmap.response_time("1-1-1", users, write_ratio=0.15)
        print(f"  expected RT at {users} users (wr=15%): {rt * 1000:7.1f} ms")
    knee = pmap.knee("1-1-1", write_ratio=0.0)
    print(f"  observed saturation knee at wr=0%: ~{knee} users "
          f"(paper: bottleneck past ~250 users for wr < 30%)")

    print("\nWhere the time went (lifecycle flight recorder):")
    print(trace_report(report.database, limit=3))


if __name__ == "__main__":
    main()
