"""The paper's bottleneck-driven scale-out strategy (Section V.A).

Starting from 1-1-1, the strategy raises the workload until the SLO
breaks, reads the sysstat observations to find the saturated tier, adds
one server there, and repeats — reproducing the exploration that led
the paper from 1-1-1 to 1-12-2.  Every decision is printed with the
observation that prompted it.

Run:  python examples/scaleout_strategy.py
"""

from repro import ScaleOutStrategy
from repro.experiments.figures import make_runner
from repro.spec.tbl import ServiceLevelObjective


def main():
    runner = make_runner("emulab", "rubis", node_count=20)
    strategy = ScaleOutStrategy(runner, "rubis", "emulab", scale=0.1)
    slo = ServiceLevelObjective(response_time=1.0, error_ratio=0.10)

    print("Exploring RUBiS configurations (SLO: RT <= 1 s, wr = 15%)...\n")
    outcome = strategy.explore(
        slo,
        workload_start=200, workload_step=200, max_workload=2000,
        max_app=8, max_db=3, max_trials=30,
    )

    for step in outcome.steps:
        marker = {"workload+": " ", "stop": "x"}.get(step.action, ">")
        observed = ""
        if step.result is not None:
            observed = (f"  [rt={step.result.response_time_ms():7.1f} ms, "
                        f"app={step.result.tier_cpu('app'):3.0f}%, "
                        f"db={step.result.tier_cpu('db'):3.0f}%]")
        print(f" {marker} {step.topology:>7} @ {step.workload:>5} users: "
              f"{step.action:<10} {step.reason}{observed}")

    print(f"\nFinal configuration: {outcome.final_topology()}")
    print(f"Max workload observed within SLO: "
          f"{outcome.max_supported_workload(slo)} users")
    print(f"Trials spent: {len(outcome.results)} "
          f"(the strategy explores, it does not enumerate)")


if __name__ == "__main__":
    main()
