"""TPC-App: the benchmark the paper anticipated adding (Section I).

"Our experiments show promising results for two representative
benchmarks (RUBiS and RUBBoS) and potentially rapid inclusion of new
benchmarks such as TPC-App when a mature implementation is released."

This example is that inclusion running end to end: the same TBL/MOF
front ends, the same generated scripts, the same virtual-cluster
deployment — only the benchmark name changed.  TPC-App's SOAP-heavy
standard mix is app-server bound, so the scale-out story mirrors
RUBiS's.

Run:  python examples/tpcapp_campaign.py
"""

from repro import PerformanceMap, run_campaign
from repro.workloads.tpcapp import CALIBRATION, STANDARD_WRITE_RATIO

TBL = """
benchmark tpcapp;
platform rohan;

experiment "tpcapp-scaleout" {
    topology 1-1-1, 1-2-1, 1-3-1;
    workload 200 to 1400 step 300;
    write_ratio 75%;               # the standard order-capture mix
    trial { warmup 15s; run 40s; cooldown 5s; }
    slo { response_time 2000ms; error_ratio 10%; }
}
"""


def main():
    knee = CALIBRATION.saturation_users(
        CALIBRATION.app_mean(STANDARD_WRITE_RATIO))
    print(f"TPC-App standard mix: {STANDARD_WRITE_RATIO:.0%} writes; "
          f"calibrated app knee ~{knee:.0f} users per core "
          f"(~{2 * knee:.0f} on a dual-CPU Rohan blade).\n")

    report = run_campaign(TBL, node_count=12, on_result=lambda r: print(
        f"  {r.topology_label} users={r.workload:<5} -> {r.status:<9} "
        f"rt={r.response_time_ms():7.1f} ms  app-cpu={r.tier_cpu('app'):3.0f}%"
    ))

    pmap = PerformanceMap.from_database(report.database)
    print("\nObserved knees (3x RT of lightest load):")
    for topology in ("1-1-1", "1-2-1", "1-3-1"):
        knee_users = pmap.knee(topology, write_ratio=0.75)
        shown = f"~{knee_users} users" if knee_users is not None \
            else "beyond the measured range"
        print(f"  {topology}: {shown}")
    print("\nSame pipeline, third benchmark — the paper's rapid-inclusion "
          "claim, demonstrated.")


if __name__ == "__main__":
    main()
