"""Capacity planning from observations (the paper's Section V.C use case).

"Given a concrete set of service level objectives and workload levels,
one can use the numbers in Figure 5 through Figure 8 to choose the
appropriate system resource level."  This example runs a reduced
scale-out sweep, then asks the planner for minimal configurations at
several workload targets — including the paper's headline answers
(1 DB suffices to ~1700 users; 2 DBs + 12 app servers carry ~2700).

Run:  python examples/capacity_planning.py   (a few minutes)
"""

from repro import CapacityPlanner, PerformanceMap, run_campaign
from repro.spec.tbl import ServiceLevelObjective

TBL = """
benchmark rubis;
platform emulab;

experiment "scaleout" {
    # The app-tier ladder plus the DB-tier moves around the 1700-user knee.
    topology 1-1-1, 1-2-1, 1-3-1, 1-4-1, 1-6-1, 1-8-1, 1-8-2, 1-12-2;
    workload 200 to 2800 step 400;
    write_ratio 15%;
    trial { warmup 15s; run 30s; cooldown 5s; }
    slo { response_time 2000ms; error_ratio 10%; }
}
"""


def main():
    print("Observing the scale-out experiment points (this is the")
    print("expensive, automated part the paper built Mulini for)...")
    done = [0]

    def progress(result):
        done[0] += 1
        if done[0] % 8 == 0:
            print(f"  {done[0]} trials done")

    report = run_campaign(TBL, node_count=36, on_result=progress)

    pmap = PerformanceMap.from_database(report.database)
    planner = CapacityPlanner(pmap, write_ratio=0.15)
    slo = ServiceLevelObjective(response_time=2.0, error_ratio=0.10)
    print("\nMinimal observed configurations per workload target "
          "(SLO: mean RT <= 2 s, errors <= 10%):")
    for users in (200, 600, 1000, 1400, 1800, 2600):
        plan = planner.plan_range([users], slo)[users]
        print(f"  {plan.describe()}")

    waste = planner.over_provisioning(600, slo, "1-8-2")
    print(f"\nRunning 1-8-2 for a 600-user workload over-provisions by "
          f"{waste} servers (the paper's argument against static "
          f"worst-case sizing).")


if __name__ == "__main__":
    main()
